//! sack-trace consumers: per-hook latency histograms and the flight
//! recorder, attached to a [`TraceHub`] as dynamically registered
//! callbacks.
//!
//! The kernel layer (`sack_kernel::trace`) only *emits*; everything
//! stateful lives here:
//!
//! * [`SackTracing`] — the metrics recorder. Subscribes to every
//!   tracepoint, maintains one lock-free [`LatencyHistogram`] per
//!   (hook, verdict, cache-hit/miss) key, and feeds the flight recorder.
//! * [`FlightRecorder`] — a bounded MPSC ring of the last N control-plane
//!   events (SSM transitions, policy publishes, epoch bumps, recompiles,
//!   denials), so a denial can be replayed against the situation history
//!   that led to it. Producers claim slots with a single `fetch_add`;
//!   entries carry both a global and a per-producer sequence number, and an
//!   overflow counter says exactly how many records were overwritten.
//!
//! Correlating cache events with hook latency: `cache_hit`/`cache_miss`
//! fire *inside* the hook dispatch that `hook_exit` closes, on the same
//! thread, so the recorder notes the last cache event in a thread-local and
//! resolves it when the enclosing `hook_exit` arrives. No cross-thread
//! state, no allocation on the hot path.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use sack_kernel::trace::{TraceEvent, TraceHandle, TraceHook, TraceHub, TraceVerdict, Tracepoint};

use crate::stats::{HistogramSnapshot, LatencyHistogram};

/// Default flight-recorder capacity (records retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Whether a hook decision was served by the decision cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheFlag {
    /// Served from the decision cache.
    Hit,
    /// Looked up but evaluated cold.
    Miss,
    /// No cache lookup happened (cache disabled, or a hook that never
    /// consults it).
    Uncached,
}

impl CacheFlag {
    /// Every flag, in dense-index order.
    pub const ALL: [CacheFlag; 3] = [CacheFlag::Hit, CacheFlag::Miss, CacheFlag::Uncached];

    /// Dense index into [`CacheFlag::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            CacheFlag::Hit => "hit",
            CacheFlag::Miss => "miss",
            CacheFlag::Uncached => "uncached",
        }
    }
}

impl fmt::Display for CacheFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One retained flight-recorder record.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Global sequence number: the claim index, dense across all producers.
    pub seq: u64,
    /// Stable id of the producing thread.
    pub producer: u64,
    /// Per-(producer, recorder) sequence number, dense per producer; a gap
    /// in a producer's surviving numbers proves records were overwritten.
    pub producer_seq: u64,
    /// The recorded event.
    pub event: TraceEvent,
}

struct FlightSlot {
    // The mutex stands in for the per-slot seqlock a real kernel ring would
    // use: it is uncontended except when a producer laps a stalled one, and
    // it makes torn reads unrepresentable in safe Rust.
    entry: Mutex<Option<FlightEntry>>,
}

/// Monotonic id source for flight recorders (keys the per-thread
/// producer-sequence map, so one thread writing to two recorders keeps two
/// independent dense sequences).
static NEXT_RECORDER: AtomicU64 = AtomicU64::new(1);

/// Monotonic id source for producer (thread) ids.
static NEXT_PRODUCER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static PRODUCER_ID: u64 = NEXT_PRODUCER.fetch_add(1, Ordering::Relaxed);
    static PRODUCER_SEQS: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
    /// Last cache event seen on this thread: (recorder id, encoded flag).
    static LAST_CACHE: Cell<(u64, u8)> = const { Cell::new((0, 0)) };
}

/// Bounded MPSC ring of the last N trace events.
///
/// Producers are wait-free up to the slot write: claiming is one
/// `fetch_add`, and the claimed global sequence *is* the record's identity.
/// Readers snapshot without stopping producers; the overflow counter and
/// the per-producer sequence numbers let them say precisely what they
/// missed.
pub struct FlightRecorder {
    id: u64,
    slots: Box<[FlightSlot]>,
    claimed: AtomicU64,
    overwritten: AtomicU64,
    // Per-producer loss ledger. Only touched on the overflow path (a ring
    // that never wraps never takes this lock), so a plain mutex is fine.
    dropped_by: Mutex<BTreeMap<u64, u64>>,
}

impl FlightRecorder {
    /// Creates a ring retaining the last `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight capacity must be non-zero");
        FlightRecorder {
            id: NEXT_RECORDER.fetch_add(1, Ordering::Relaxed),
            slots: (0..capacity)
                .map(|_| FlightSlot {
                    entry: Mutex::new(None),
                })
                .collect(),
            claimed: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            dropped_by: Mutex::new(BTreeMap::new()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records an event; returns its global sequence number.
    pub fn record(&self, event: TraceEvent) -> u64 {
        let seq = self.claimed.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        if seq >= cap {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        let producer = PRODUCER_ID.try_with(|p| *p).unwrap_or(0);
        let producer_seq = PRODUCER_SEQS
            .try_with(|seqs| {
                let mut seqs = seqs.borrow_mut();
                let next = seqs.entry(self.id).or_insert(0);
                let current = *next;
                *next += 1;
                current
            })
            .unwrap_or(0);
        let entry = FlightEntry {
            seq,
            producer,
            producer_seq,
            event,
        };
        let mut slot = self.slots[(seq % cap) as usize].entry.lock();
        // A producer that claimed an older sequence but got here after being
        // lapped must not clobber the newer record.
        match slot.as_ref() {
            None => *slot = Some(entry),
            Some(existing) if existing.seq < seq => {
                // Evicting a retained record: the loss belongs to the
                // producer whose record is being overwritten.
                let evicted = existing.producer;
                *slot = Some(entry);
                drop(slot);
                *self.dropped_by.lock().entry(evicted).or_insert(0) += 1;
            }
            Some(_) => {
                // Lapped: the incoming (older) record is the one discarded.
                drop(slot);
                *self.dropped_by.lock().entry(producer).or_insert(0) += 1;
            }
        }
        seq
    }

    /// Total records ever claimed.
    pub fn total(&self) -> u64 {
        self.claimed.load(Ordering::Relaxed)
    }

    /// Records overwritten before a reader could see them.
    pub fn dropped(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Per-producer loss counts: how many of each producer's records were
    /// evicted (or lap-discarded) before a reader saw them. The values sum
    /// to [`FlightRecorder::dropped`] once all in-flight writes land, which
    /// is what lets a ring-overflow detector localize the lossy producer
    /// instead of only reporting a global count.
    pub fn dropped_by_producer(&self) -> BTreeMap<u64, u64> {
        self.dropped_by.lock().clone()
    }

    /// Snapshot of the retained records, oldest first (global-seq order).
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = self
            .slots
            .iter()
            .filter_map(|slot| slot.entry.lock().clone())
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// Renders the ring as the `tracing/flight` node's text:
    /// a `# flight capacity=<C> total=<N> dropped=<D>` header, then one
    /// `seq=<s> producer=<p> pseq=<q> <event>` line per retained record.
    pub fn render(&self) -> String {
        let entries = self.snapshot();
        let mut out = format!(
            "# flight capacity={} total={} dropped={}\n",
            self.capacity(),
            self.total(),
            self.dropped()
        );
        for e in &entries {
            out.push_str(&format!(
                "seq={} producer={} pseq={} {}\n",
                e.seq, e.producer, e.producer_seq, e.event
            ));
        }
        out
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("total", &self.total())
            .field("dropped", &self.dropped())
            .finish()
    }
}

const VERDICTS: usize = 2;
const FLAGS: usize = 3;
const HIST_KEYS: usize = TraceHook::ALL.len() * VERDICTS * FLAGS;

struct RecorderState {
    id: u64,
    hists: Vec<LatencyHistogram>,
    flight: FlightRecorder,
}

impl RecorderState {
    fn hist(&self, hook: TraceHook, verdict: TraceVerdict, flag: CacheFlag) -> &LatencyHistogram {
        &self.hists[(hook.index() * VERDICTS + verdict.index()) * FLAGS + flag.index()]
    }

    fn on_event(&self, event: &TraceEvent) {
        match event {
            TraceEvent::HookEnter { .. } => {
                // New dispatch on this thread: forget any stale cache event.
                let _ = LAST_CACHE.try_with(|c| c.set((self.id, 0)));
            }
            TraceEvent::CacheHit => {
                let _ = LAST_CACHE.try_with(|c| c.set((self.id, 1)));
            }
            TraceEvent::CacheMiss => {
                let _ = LAST_CACHE.try_with(|c| c.set((self.id, 2)));
            }
            TraceEvent::HookExit {
                hook,
                verdict,
                latency_ns,
            } => {
                let flag = LAST_CACHE
                    .try_with(|c| {
                        let (id, encoded) = c.replace((self.id, 0));
                        match (id == self.id, encoded) {
                            (true, 1) => CacheFlag::Hit,
                            (true, 2) => CacheFlag::Miss,
                            _ => CacheFlag::Uncached,
                        }
                    })
                    .unwrap_or(CacheFlag::Uncached);
                self.hist(*hook, *verdict, flag).record(*latency_ns);
                if *verdict == TraceVerdict::Deny {
                    self.flight.record(event.clone());
                }
            }
            TraceEvent::CacheInvalidate { .. }
            | TraceEvent::SsmTransition { .. }
            | TraceEvent::PolicyPublish { .. }
            | TraceEvent::RcuEpochBump { .. }
            | TraceEvent::ProfileRecompile { .. }
            | TraceEvent::AuditEmit { .. }
            | TraceEvent::SdsDrain { .. }
            | TraceEvent::SdsCoalesce { .. }
            | TraceEvent::SdsBackpressure { .. }
            | TraceEvent::FleetRolloutBegin { .. }
            | TraceEvent::FleetRolloutPush { .. }
            | TraceEvent::FleetRolloutPromote { .. }
            | TraceEvent::FleetRolloutRollback { .. }
            | TraceEvent::FleetRolloutComplete { .. } => {
                self.flight.record(event.clone());
            }
            // Per-frame hot path: counted by the hub, never flight-recorded
            // (at sensor rates it would flush the whole ring between any two
            // control-plane records).
            TraceEvent::SdsEnqueue { .. } => {}
        }
    }
}

/// The sack-trace metrics recorder: histograms + flight recorder behind a
/// registered hub callback. Dropping it unregisters from the hub.
pub struct SackTracing {
    hub: Arc<TraceHub>,
    state: Arc<RecorderState>,
    handle: TraceHandle,
    /// Fleet instance id of the kernel this recorder is attached to
    /// (`0` = unset, e.g. a free-standing recorder in a bench).
    instance: AtomicU64,
    /// Monotonic generation stamped onto each telemetry capture, so deltas
    /// can name exactly which capture they are relative to.
    generation: AtomicU64,
}

impl SackTracing {
    /// Attaches a recorder with the default flight capacity.
    pub fn attach(hub: Arc<TraceHub>) -> Arc<SackTracing> {
        SackTracing::attach_with_flight_capacity(hub, DEFAULT_FLIGHT_CAPACITY)
    }

    /// Attaches a recorder with an explicit flight-recorder capacity.
    pub fn attach_with_flight_capacity(hub: Arc<TraceHub>, capacity: usize) -> Arc<SackTracing> {
        let state = Arc::new(RecorderState {
            id: NEXT_RECORDER.fetch_add(1, Ordering::Relaxed),
            hists: (0..HIST_KEYS).map(|_| LatencyHistogram::new()).collect(),
            flight: FlightRecorder::new(capacity),
        });
        let cb_state = Arc::clone(&state);
        let handle = hub.register_all(Arc::new(move |ev| cb_state.on_event(ev)));
        Arc::new(SackTracing {
            hub,
            state,
            handle,
            instance: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        })
    }

    /// Stamps the fleet instance id of the kernel this recorder belongs to.
    /// Called by `Sack::attach`; telemetry captured before attachment
    /// carries instance 0 ("unset").
    pub fn set_instance(&self, instance: u64) {
        self.instance.store(instance, Ordering::Relaxed);
    }

    /// The stamped fleet instance id (0 when never attached).
    pub fn instance(&self) -> u64 {
        self.instance.load(Ordering::Relaxed)
    }

    /// Allocates the next telemetry generation. Each capture gets a fresh,
    /// strictly increasing generation so delta replay can order captures.
    pub fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The hub this recorder listens on.
    pub fn hub(&self) -> &Arc<TraceHub> {
        &self.hub
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.state.flight
    }

    /// Snapshot of one (hook, verdict, cache) histogram.
    pub fn histogram(
        &self,
        hook: TraceHook,
        verdict: TraceVerdict,
        flag: CacheFlag,
    ) -> HistogramSnapshot {
        self.state.hist(hook, verdict, flag).snapshot()
    }

    /// Merged latency distribution for a hook across verdicts and cache
    /// outcomes.
    pub fn hook_histogram(&self, hook: TraceHook) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for verdict in [TraceVerdict::Allow, TraceVerdict::Deny] {
            for flag in CacheFlag::ALL {
                merged.merge(&self.histogram(hook, verdict, flag));
            }
        }
        merged
    }

    /// Every non-empty (hook, verdict, cache) histogram, in dense key
    /// order — the raw material for the `metrics` node.
    pub fn histogram_snapshots(
        &self,
    ) -> Vec<(TraceHook, TraceVerdict, CacheFlag, HistogramSnapshot)> {
        let mut out = Vec::new();
        for hook in TraceHook::ALL {
            for verdict in [TraceVerdict::Allow, TraceVerdict::Deny] {
                for flag in CacheFlag::ALL {
                    let snap = self.histogram(hook, verdict, flag);
                    if !snap.is_empty() {
                        out.push((hook, verdict, flag, snap));
                    }
                }
            }
        }
        out
    }

    /// Renders the `tracing/events` node: one line per tracepoint with its
    /// enabled state and fired count.
    pub fn render_events(&self) -> String {
        let mut out = format!(
            "# tracepoints enabled={}\n",
            if self.hub.enabled() { 1 } else { 0 }
        );
        for point in Tracepoint::ALL {
            out.push_str(&format!("{} {}\n", point.name(), self.hub.fired(point)));
        }
        out
    }
}

impl fmt::Debug for SackTracing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SackTracing")
            .field("enabled", &self.hub.enabled())
            .field("flight", &self.state.flight)
            .finish()
    }
}

impl Drop for SackTracing {
    fn drop(&mut self) {
        self.hub.unregister(self.handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_assigns_dense_global_seqs() {
        let ring = FlightRecorder::new(8);
        for i in 0..5 {
            assert_eq!(ring.record(TraceEvent::RcuEpochBump { epoch: i }), i);
        }
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 5);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.dropped(), 0);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn flight_wraparound_keeps_newest_and_counts_drops() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record(TraceEvent::RcuEpochBump { epoch: i });
        }
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 4, "bounded at capacity");
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.dropped(), 6, "six oldest overwritten");
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest survive in order");
        // Single producer: surviving per-producer seqs are a contiguous
        // suffix, and the gap before them equals the drop count.
        let pseqs: Vec<u64> = entries.iter().map(|e| e.producer_seq).collect();
        assert_eq!(pseqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn flight_multi_producer_seq_gap_detection() {
        let ring = Arc::new(FlightRecorder::new(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        ring.record(TraceEvent::RcuEpochBump { epoch: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.total(), 200);
        assert_eq!(ring.dropped(), 192);
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 8);
        // Global seqs are unique and sorted.
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs, sorted);
        // Each producer's surviving pseqs are strictly increasing (gaps are
        // allowed — they mark overwritten records — regressions are not).
        let mut per_producer: HashMap<u64, Vec<u64>> = HashMap::new();
        for e in &entries {
            per_producer
                .entry(e.producer)
                .or_default()
                .push(e.producer_seq);
        }
        for (producer, pseqs) in per_producer {
            assert!(
                pseqs.windows(2).all(|w| w[0] < w[1]),
                "producer {producer} seqs must increase: {pseqs:?}"
            );
        }
    }

    /// Multi-producer stress: with a ring big enough that nothing is
    /// dropped, every producer's seq stream must be dense (0..n gapless),
    /// the global seq must be a complete monotone sequence, and the dropped
    /// counter must be exactly zero.
    #[test]
    fn flight_multi_producer_stress_gapless_when_nothing_drops() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 500;
        let ring = Arc::new(FlightRecorder::new(PRODUCERS * PER_PRODUCER));
        let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS));
        let threads: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_PRODUCER as u64 {
                        ring.record(TraceEvent::RcuEpochBump { epoch: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let expected = (PRODUCERS * PER_PRODUCER) as u64;
        assert_eq!(ring.total(), expected);
        assert_eq!(ring.dropped(), 0, "nothing may drop in an oversized ring");
        let entries = ring.snapshot();
        assert_eq!(entries.len(), expected as usize);
        // Global seq: complete and strictly monotone — 0..expected with no
        // holes and no duplicates (snapshot sorts by seq).
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "global seq must be gapless");
        }
        // Per-producer seqs: each of the 8 producers emitted exactly
        // PER_PRODUCER records with a dense 0..PER_PRODUCER seq stream.
        let mut per_producer: HashMap<u64, Vec<u64>> = HashMap::new();
        for e in &entries {
            per_producer
                .entry(e.producer)
                .or_default()
                .push(e.producer_seq);
        }
        assert_eq!(per_producer.len(), PRODUCERS);
        for (producer, mut pseqs) in per_producer {
            pseqs.sort_unstable();
            let dense: Vec<u64> = (0..PER_PRODUCER as u64).collect();
            assert_eq!(pseqs, dense, "producer {producer} has a seq gap");
        }
    }

    /// Multi-producer stress under wraparound: the dropped counter must
    /// account for exactly `total - capacity` records — an operator reading
    /// `dropped()` knows precisely how much history the ring lost.
    #[test]
    fn flight_multi_producer_stress_exact_drop_count_under_wraparound() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 500;
        const CAP: usize = 64;
        let ring = Arc::new(FlightRecorder::new(CAP));
        let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS));
        let threads: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_PRODUCER as u64 {
                        ring.record(TraceEvent::RcuEpochBump { epoch: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = (PRODUCERS * PER_PRODUCER) as u64;
        assert_eq!(ring.total(), total);
        assert_eq!(
            ring.dropped(),
            total - CAP as u64,
            "drop count must be exact"
        );
        let entries = ring.snapshot();
        assert_eq!(entries.len(), CAP);
        // Surviving records are unique by global seq and monotone.
        for pair in entries.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "global seq regressed");
        }
    }

    #[test]
    fn flight_per_producer_drop_ledger_sums_to_global() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record(TraceEvent::RcuEpochBump { epoch: i });
        }
        let by = ring.dropped_by_producer();
        assert_eq!(by.len(), 1, "single producer: one ledger entry");
        let sum: u64 = by.values().sum();
        assert_eq!(sum, ring.dropped(), "ledger must sum to the global count");
        // A ring that never wraps keeps an empty ledger.
        let quiet = FlightRecorder::new(8);
        quiet.record(TraceEvent::RcuEpochBump { epoch: 0 });
        assert!(quiet.dropped_by_producer().is_empty());
    }

    #[test]
    fn flight_render_has_header_and_records() {
        let ring = FlightRecorder::new(4);
        ring.record(TraceEvent::SsmTransition {
            from: "normal".into(),
            to: "emergency".into(),
            event: "crash".into(),
        });
        let text = ring.render();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "# flight capacity=4 total=1 dropped=0"
        );
        let record = lines.next().unwrap();
        assert!(record.starts_with("seq=0 "), "{record}");
        assert!(
            record.contains("ssm_transition from=normal to=emergency event=crash"),
            "{record}"
        );
    }

    #[test]
    fn recorder_keys_histograms_by_cache_flag() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        hub.set_enabled(true);
        let hook = TraceHook::FileOpen;
        // A miss-dispatch then a hit-dispatch then an uncached dispatch.
        for (cache_ev, ns) in [
            (Some(TraceEvent::CacheMiss), 800),
            (Some(TraceEvent::CacheHit), 50),
            (None, 300),
        ] {
            hub.emit(&TraceEvent::HookEnter { hook });
            if let Some(ev) = cache_ev {
                hub.emit(&ev);
            }
            hub.emit(&TraceEvent::HookExit {
                hook,
                verdict: TraceVerdict::Allow,
                latency_ns: ns,
            });
        }
        let hit = tracing.histogram(hook, TraceVerdict::Allow, CacheFlag::Hit);
        let miss = tracing.histogram(hook, TraceVerdict::Allow, CacheFlag::Miss);
        let uncached = tracing.histogram(hook, TraceVerdict::Allow, CacheFlag::Uncached);
        assert_eq!(hit.count(), 1);
        assert_eq!(hit.sum, 50);
        assert_eq!(miss.count(), 1);
        assert_eq!(miss.sum, 800);
        assert_eq!(uncached.count(), 1);
        assert_eq!(uncached.sum, 300);
        assert_eq!(tracing.hook_histogram(hook).count(), 3);
    }

    #[test]
    fn recorder_flight_captures_denials_and_control_plane() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        hub.set_enabled(true);
        hub.emit(&TraceEvent::SsmTransition {
            from: "normal".into(),
            to: "emergency".into(),
            event: "crash".into(),
        });
        hub.emit(&TraceEvent::HookEnter {
            hook: TraceHook::FileOpen,
        });
        hub.emit(&TraceEvent::HookExit {
            hook: TraceHook::FileOpen,
            verdict: TraceVerdict::Deny,
            latency_ns: 123,
        });
        hub.emit(&TraceEvent::HookEnter {
            hook: TraceHook::FileOpen,
        });
        hub.emit(&TraceEvent::HookExit {
            hook: TraceHook::FileOpen,
            verdict: TraceVerdict::Allow,
            latency_ns: 45,
        });
        let events: Vec<TraceEvent> = tracing
            .flight()
            .snapshot()
            .into_iter()
            .map(|e| e.event)
            .collect();
        assert_eq!(events.len(), 2, "allowed exits stay out of the flight");
        assert!(matches!(events[0], TraceEvent::SsmTransition { .. }));
        assert!(matches!(
            events[1],
            TraceEvent::HookExit {
                verdict: TraceVerdict::Deny,
                ..
            }
        ));
    }

    #[test]
    fn drop_unregisters_from_hub() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        assert_eq!(hub.callback_count(), 1);
        drop(tracing);
        assert_eq!(hub.callback_count(), 0);
    }

    #[test]
    fn render_events_lists_every_tracepoint() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        hub.set_enabled(true);
        hub.emit(&TraceEvent::CacheHit);
        let text = tracing.render_events();
        assert!(text.starts_with("# tracepoints enabled=1\n"));
        for point in Tracepoint::ALL {
            assert!(text.contains(point.name()), "missing {point}");
        }
        assert!(text.contains("cache_hit 1\n"));
    }
}
