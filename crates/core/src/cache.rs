//! Epoch-tagged per-task decision cache for the SACK hook hot path.
//!
//! Modelled on AppArmor's DFA/label caching: the full access check
//! (`ProtectedSet::contains` + `StateRuleSet::permits` + the profile-oracle
//! lookup) is memoised per task in a small direct-mapped table keyed by a
//! hash of *everything the decision depends on* — the policy epoch, the
//! AppArmor confinement generation, the current situation state, the
//! subject's identity (uid, exe, `CAP_MAC_OVERRIDE`), the object path, and
//! the requested permissions.
//!
//! Invalidation is implicit: any policy reload bumps the epoch and any
//! situation transition changes the state id, so stale entries simply never
//! match again — they are overwritten lazily by new insertions
//! ("self-invalidating" epoch tags, no stop-the-world flush).
//!
//! By default only *grant* outcomes are cached ([`CachedOutcome`]): denials
//! take the slow path so the denial counter and the audit log record every
//! single refusal exactly as an uncached module would. Grant outcomes still
//! bump the same per-outcome counters on a hit, keeping `sackfs` stats
//! identical with the cache on or off. Negative (denial) caching is
//! opt-in (`Sack::set_negative_cache_enabled`): a replayed denial still
//! increments the denial counter, but the audit record is emitted only by
//! the first, uncached evaluation — exactly once per distinct decision.
//!
//! Each slot is a pair of `AtomicU64`s (tag + payload) written without any
//! lock; a torn read across the pair can only produce a *verifier* mismatch
//! — a spurious miss — never a wrong outcome (the payload embeds a second,
//! independently-mixed hash of the same key).
//!
//! Like `sack_kernel::sync::Rcu`, the cache is generic over the
//! synchronisation shim ([`Backend`]): the production aliases
//! [`DecisionCache`] and [`PerCpuCache`] monomorphise to plain
//! `std::sync::atomic` operations, while `sack-analyze`'s deterministic
//! executor instantiates [`DecisionCacheIn`]`<SchedBackend>` to enumerate
//! bounded interleavings of this exact lookup/insert code against epoch
//! bumps and policy publishes.

use std::sync::atomic::Ordering;

use sack_kernel::sync::shim::RawAtomicU64;
use sack_kernel::sync::{Backend, Mutation, StdBackend};

/// Slot count per task. Must be a power of two. 512 slots × 16 bytes = 8 KiB
/// per task — two pages — while covering far more distinct (path, perms)
/// pairs than a task touches in practice.
const SLOTS: usize = 512;

/// Public view of [`SLOTS`] for tooling that must reproduce the slot
/// mapping exactly (e.g. `sack-analyze`'s torn-pair scenario stages keys
/// into specific ways by computing `home` and the eviction victim).
pub const DECISION_CACHE_SLOTS: usize = SLOTS;

/// Number of per-CPU cache instances in a [`PerCpuCache`]. Must be a power
/// of two. Eight instances model a small SMP vehicle ECU; threads beyond
/// eight share instances round-robin, exactly like hazard slots in
/// `sack_kernel::sync`.
pub const CPU_INSTANCES: usize = 8;

/// A decision the cache may replay without re-evaluating the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedOutcome {
    /// Object not in the protected set: pass through, count `unprotected`.
    Unprotected = 1,
    /// Subject holds `CAP_MAC_OVERRIDE`: pass through, count `overrides`.
    Override = 2,
    /// Per-state rules grant the access: allow, count `checks`.
    Allow = 3,
    /// Per-state rules refuse the access: deny, count `checks` and
    /// `denials`. Only inserted when negative caching is opted in.
    Deny = 4,
}

impl CachedOutcome {
    fn from_code(code: u64) -> Option<CachedOutcome> {
        match code {
            1 => Some(CachedOutcome::Unprotected),
            2 => Some(CachedOutcome::Override),
            3 => Some(CachedOutcome::Allow),
            4 => Some(CachedOutcome::Deny),
            _ => None,
        }
    }
}

/// The full set of inputs a SACK access decision depends on. Hashing this
/// (twice, independently) yields the cache tag and verifier.
#[derive(Debug, Clone, Copy)]
pub struct DecisionKey<'a> {
    /// Global policy epoch (bumped on reload and situation transition).
    pub epoch: u64,
    /// AppArmor confinement-map generation (0 when no oracle is wired).
    pub confinement_gen: u64,
    /// Current situation state.
    pub state: usize,
    /// Subject uid.
    pub uid: u32,
    /// Subject holds `CAP_MAC_OVERRIDE`.
    pub mac_override: bool,
    /// Subject executable path, if any.
    pub exe: Option<&'a str>,
    /// Object path.
    pub path: &'a str,
    /// Requested permission bits.
    pub perms: u8,
}

impl DecisionKey<'_> {
    /// Two independent 64-bit hashes of the key: `(tag, verifier)`. The tag
    /// selects and guards the slot; the verifier is stored in the payload
    /// word so a torn slot read cannot be mistaken for a hit. Both are
    /// computed in a single word-at-a-time pass (the hook hot path runs
    /// this on every mediated access, so it must stay in the tens of ns).
    pub fn hashes(&self) -> (u64, u64) {
        let mut h = Mix2::new();
        h.word(self.epoch ^ self.confinement_gen.rotate_left(32));
        h.word(
            (self.state as u64) << 41
                | u64::from(self.uid) << 9
                | u64::from(self.mac_override) << 8
                | u64::from(self.perms),
        );
        match self.exe {
            Some(exe) => h.bytes(exe.as_bytes()),
            None => h.word(0x5EED),
        }
        h.bytes(self.path.as_bytes());
        let (tag, verifier) = h.finish();
        // Tag 0 marks an empty slot; remap to keep the encoding unambiguous.
        (if tag == 0 { 1 } else { tag }, verifier)
    }
}

/// Two multiply-xorshift accumulators with different odd multipliers fed by
/// one pass over the input words — effectively two independent hash
/// families for the price of one traversal (wyhash-style mixing).
struct Mix2 {
    a: u64,
    b: u64,
}

impl Mix2 {
    fn new() -> Mix2 {
        Mix2 {
            a: 0x9E37_79B9_7F4A_7C15,
            b: 0xC2B2_AE3D_27D4_EB4F,
        }
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.a = (self.a ^ w).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        self.a ^= self.a >> 29;
        self.b = (self.b ^ w).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        self.b ^= self.b >> 31;
    }

    #[inline]
    fn bytes(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(buf));
        }
        // Length terminator so "ab"+"c" ≠ "a"+"bc" across field boundaries.
        self.word(bytes.len() as u64 ^ 0xA076_1D64_78BD_642F);
    }

    fn finish(&self) -> (u64, u64) {
        (splitmix(self.a), splitmix(self.b))
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One direct-mapped slot: `tag` full key hash (0 = empty), `payload` the
/// verifier hash (top 61 bits) packed with the outcome code (low 3 bits).
#[derive(Debug)]
struct SlotIn<B: Backend> {
    tag: B::AtomicU64,
    payload: B::AtomicU64,
}

impl<B: Backend> SlotIn<B> {
    fn empty() -> SlotIn<B> {
        SlotIn {
            tag: RawAtomicU64::new(0),
            payload: RawAtomicU64::new(0),
        }
    }
}

/// A fixed-size, lock-free, direct-mapped decision cache for one task,
/// generic over the synchronisation backend. Production code uses the
/// [`DecisionCache`] alias (std atomics); the deterministic-schedule
/// executor instantiates this with its own backend so every `Acquire` load
/// and `Release` store below becomes an explored yield point.
#[derive(Debug)]
pub struct DecisionCacheIn<B: Backend = StdBackend> {
    slots: Box<[SlotIn<B>]>,
}

/// The production decision cache: [`DecisionCacheIn`] over plain
/// `std::sync::atomic` operations.
pub type DecisionCache = DecisionCacheIn<StdBackend>;

impl<B: Backend> Default for DecisionCacheIn<B> {
    fn default() -> DecisionCacheIn<B> {
        DecisionCacheIn::new()
    }
}

impl<B: Backend> DecisionCacheIn<B> {
    /// Creates an empty cache.
    pub fn new() -> DecisionCacheIn<B> {
        DecisionCacheIn {
            slots: (0..SLOTS).map(|_| SlotIn::empty()).collect(),
        }
    }

    /// Looks up a decision (a denial only ever appears when negative
    /// caching is enabled). Four-way associative: a key may live in any
    /// slot of its home group, so up to four hot keys hashing to the same
    /// group coexist without evicting each other.
    pub fn lookup(&self, key: &DecisionKey<'_>) -> Option<CachedOutcome> {
        let (tag, verifier) = key.hashes();
        let home = (tag as usize) & (SLOTS - 1);
        for way in 0..4 {
            let slot = &self.slots[home ^ way];
            if slot.tag.load(Ordering::Acquire) != tag {
                continue;
            }
            let payload = slot.payload.load(Ordering::Acquire);
            if B::mutation(Mutation::CacheSkipVerifier) {
                // Planted bug: trust the tag alone. A torn tag/payload pair
                // (tag already updated, payload not yet) now replays a stale
                // or mismatched outcome — the executor must find a schedule
                // where this returns a verdict the serial cache never would.
                return CachedOutcome::from_code(payload & 0b111);
            }
            if payload >> 3 != verifier >> 3 {
                continue; // stale or torn entry: treat as a miss
            }
            return CachedOutcome::from_code(payload & 0b111);
        }
        None
    }

    /// Records an outcome for `key`. Prefers the way already holding
    /// the tag, then an empty way; otherwise the victim way is chosen by
    /// key-derived bits, so conflicting keys tend to pick *different*
    /// victims and ping-pong eviction cycles cannot form.
    pub fn insert(&self, key: &DecisionKey<'_>, outcome: CachedOutcome) {
        let (tag, verifier) = key.hashes();
        let home = (tag as usize) & (SLOTS - 1);
        let idx = (0..4)
            .map(|way| home ^ way)
            .find(|&idx| {
                let t = self.slots[idx].tag.load(Ordering::Acquire);
                t == tag || t == 0
            })
            .unwrap_or(home ^ ((verifier >> 32) as usize & 0b11));
        let slot = &self.slots[idx];
        // Payload first, then tag (Release): a reader that sees the new tag
        // sees the new payload or fails the verifier check — either way no
        // stale outcome is ever returned under a matching tag+verifier.
        slot.payload
            .store((verifier & !0b111) | outcome as u64, Ordering::Release);
        slot.tag.store(tag, Ordering::Release);
    }
}

/// The calling thread's cache instance index under backend `B`. The dense
/// per-thread id comes from [`Backend::thread_index`] — the same id that
/// selects the preferred hazard slot in `sack_kernel::sync` — mapped into
/// the instance array by mask. This stands in for `smp_processor_id()`: on
/// the simulated kernel a thread *is* a CPU, and under the deterministic
/// executor the backend assigns scenario-controlled indices.
pub fn current_cpu_in<B: Backend>() -> usize {
    B::thread_index() & (CPU_INSTANCES - 1)
}

/// The calling thread's cache instance index (production backend). Costs
/// one thread-local read on the hot path.
pub fn current_cpu() -> usize {
    current_cpu_in::<StdBackend>()
}

/// A per-CPU array of [`DecisionCache`] instances for one task.
///
/// Each hardware thread looks up and inserts only in its own instance
/// (selected by [`current_cpu`]), so concurrent hooks never contend on a
/// cache line in the lookup path — there is no shared mutable word at all.
/// Invalidation needs no cross-instance flush walk: the policy epoch,
/// situation state, and confinement generation are part of every
/// [`DecisionKey`], so one global epoch bump retires stale entries in
/// *every* instance at once (they simply never match again). The
/// `PerCpuCacheModel` in `sack-analyze` checks this protocol exhaustively,
/// including the skip-one-instance mutation showing why a flush-walk design
/// would be unsound.
#[derive(Debug)]
pub struct PerCpuCacheIn<B: Backend = StdBackend> {
    cpus: Box<[DecisionCacheIn<B>]>,
}

/// The production per-CPU cache: [`PerCpuCacheIn`] over std atomics.
pub type PerCpuCache = PerCpuCacheIn<StdBackend>;

impl<B: Backend> Default for PerCpuCacheIn<B> {
    fn default() -> PerCpuCacheIn<B> {
        PerCpuCacheIn::new()
    }
}

impl<B: Backend> PerCpuCacheIn<B> {
    /// Creates [`CPU_INSTANCES`] empty cache instances.
    pub fn new() -> PerCpuCacheIn<B> {
        PerCpuCacheIn {
            cpus: (0..CPU_INSTANCES).map(|_| DecisionCacheIn::new()).collect(),
        }
    }

    /// Looks up a decision in the calling thread's instance.
    pub fn lookup(&self, key: &DecisionKey<'_>) -> Option<CachedOutcome> {
        self.cpus[current_cpu_in::<B>()].lookup(key)
    }

    /// Records an outcome in the calling thread's instance.
    pub fn insert(&self, key: &DecisionKey<'_>, outcome: CachedOutcome) {
        self.cpus[current_cpu_in::<B>()].insert(key, outcome)
    }

    /// Number of instances (always [`CPU_INSTANCES`]).
    pub fn instances(&self) -> usize {
        self.cpus.len()
    }

    /// Direct access to instance `i`, for tests and invariant checks.
    pub fn instance(&self, i: usize) -> &DecisionCacheIn<B> {
        &self.cpus[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key<'a>(epoch: u64, state: usize, path: &'a str, perms: u8) -> DecisionKey<'a> {
        DecisionKey {
            epoch,
            confinement_gen: 0,
            state,
            uid: 1000,
            mac_override: false,
            exe: Some("/usr/bin/app"),
            path,
            perms,
        }
    }

    #[test]
    fn hit_after_insert() {
        let cache = DecisionCache::new();
        let k = key(1, 0, "/dev/car/door0", 0b10);
        assert_eq!(cache.lookup(&k), None);
        cache.insert(&k, CachedOutcome::Allow);
        assert_eq!(cache.lookup(&k), Some(CachedOutcome::Allow));
    }

    #[test]
    fn epoch_and_state_changes_invalidate() {
        let cache = DecisionCache::new();
        let k = key(1, 0, "/dev/car/door0", 0b10);
        cache.insert(&k, CachedOutcome::Allow);
        assert_eq!(cache.lookup(&key(2, 0, "/dev/car/door0", 0b10)), None);
        assert_eq!(cache.lookup(&key(1, 1, "/dev/car/door0", 0b10)), None);
        assert_eq!(cache.lookup(&key(1, 0, "/dev/car/door0", 0b01)), None);
        assert_eq!(cache.lookup(&key(1, 0, "/dev/car/door1", 0b10)), None);
        // The original entry is still intact (different slots or verifier
        // mismatch only on the perturbed keys).
        assert_eq!(cache.lookup(&k), Some(CachedOutcome::Allow));
    }

    #[test]
    fn distinct_outcomes_roundtrip() {
        let cache = DecisionCache::new();
        for (i, outcome) in [
            CachedOutcome::Unprotected,
            CachedOutcome::Override,
            CachedOutcome::Allow,
            CachedOutcome::Deny,
        ]
        .into_iter()
        .enumerate()
        {
            let k = key(7, i, "/tmp/x", 1);
            cache.insert(&k, outcome);
            assert_eq!(cache.lookup(&k), Some(outcome));
        }
    }

    #[test]
    fn subject_identity_is_part_of_the_key() {
        let cache = DecisionCache::new();
        let k = key(1, 0, "/dev/car/door0", 0b10);
        cache.insert(&k, CachedOutcome::Allow);
        let other_uid = DecisionKey { uid: 0, ..k };
        assert_eq!(cache.lookup(&other_uid), None);
        let with_override = DecisionKey {
            mac_override: true,
            ..k
        };
        assert_eq!(cache.lookup(&with_override), None);
        let other_exe = DecisionKey {
            exe: Some("/usr/bin/other"),
            ..k
        };
        assert_eq!(cache.lookup(&other_exe), None);
        let no_exe = DecisionKey { exe: None, ..k };
        assert_eq!(cache.lookup(&no_exe), None);
    }

    #[test]
    fn warmed_working_set_replays_without_misses() {
        let cache = DecisionCache::new();
        let paths: Vec<String> = (0..64)
            .map(|i| format!("/protected/area0/s0/devices/dev{i}"))
            .collect();
        for p in &paths {
            cache.insert(&key(0, 0, p, 1), CachedOutcome::Allow);
        }
        let mut misses = 0;
        for i in 0..64_000usize {
            if cache.lookup(&key(0, 0, &paths[i % 64], 1)).is_none() {
                misses += 1;
            }
        }
        assert_eq!(misses, 0, "a warmed 64-entry working set must not thrash");
    }

    #[test]
    fn many_keys_low_false_hit_rate() {
        // Insert 10k keys with one outcome, then probe 10k *different* keys:
        // every probe must miss (tag+verifier is 125 bits of discrimination).
        let cache = DecisionCache::new();
        for i in 0..10_000usize {
            let path = format!("/data/file{i}");
            cache.insert(&key(1, 0, &path, 1), CachedOutcome::Allow);
        }
        for i in 10_000..20_000usize {
            let path = format!("/data/file{i}");
            assert_eq!(cache.lookup(&key(1, 0, &path, 1)), None);
        }
    }

    #[test]
    fn per_cpu_roundtrip_on_one_thread() {
        let cache = PerCpuCache::new();
        let k = key(1, 0, "/dev/car/door0", 0b10);
        assert_eq!(cache.lookup(&k), None);
        cache.insert(&k, CachedOutcome::Allow);
        assert_eq!(cache.lookup(&k), Some(CachedOutcome::Allow));
        // The entry lives in exactly one instance — the calling thread's.
        let hits: usize = (0..cache.instances())
            .filter(|&i| cache.instance(i).lookup(&k).is_some())
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn epoch_bump_invalidates_every_instance() {
        // Warm the same decision into all instances (as if every CPU had
        // evaluated it), then bump the epoch: no instance may replay it.
        let cache = PerCpuCache::new();
        let k = key(3, 0, "/dev/car/door0", 0b10);
        for i in 0..cache.instances() {
            cache.instance(i).insert(&k, CachedOutcome::Allow);
        }
        let bumped = key(4, 0, "/dev/car/door0", 0b10);
        for i in 0..cache.instances() {
            assert_eq!(
                cache.instance(i).lookup(&bumped),
                None,
                "instance {i} replayed a pre-bump grant"
            );
            // The pre-bump entry itself is intact (lazy overwrite).
            assert_eq!(cache.instance(i).lookup(&k), Some(CachedOutcome::Allow));
        }
    }

    #[test]
    fn threads_get_stable_instance_assignments() {
        let mut handles = Vec::new();
        for _ in 0..16 {
            handles.push(std::thread::spawn(|| {
                let first = current_cpu();
                for _ in 0..100 {
                    assert_eq!(current_cpu(), first);
                }
                first
            }));
        }
        for h in handles {
            let cpu = h.join().unwrap();
            assert!(cpu < CPU_INSTANCES);
        }
    }

    #[test]
    fn per_cpu_concurrent_warm_lookups_do_not_interfere() {
        use std::sync::Barrier;
        let cache = PerCpuCache::new();
        let barrier = Barrier::new(4);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = &cache;
                let barrier = &barrier;
                s.spawn(move || {
                    let path = format!("/protected/t{t}/file");
                    let k = key(1, 0, &path, 1);
                    cache.insert(&k, CachedOutcome::Allow);
                    barrier.wait();
                    for _ in 0..10_000 {
                        assert_eq!(cache.lookup(&k), Some(CachedOutcome::Allow));
                    }
                });
            }
        });
    }
}
