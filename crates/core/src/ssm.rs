//! The situation state machine (SSM) — paper §III-E-1 and Algorithm 1.
//!
//! The SSM lives in the kernel, maintains the current situation state, and
//! consumes situation events delivered through SACKfs. When an event matches
//! a transition rule for the current state, the machine moves to the target
//! state and notifies its listeners — the adaptive policy enforcers that
//! swap the active MAC rules (Algorithm 1's `P = f(SS)`, `MR = g(P)` step).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::situation::{EventId, StateId, StateSpace};

/// One transition rule: `(from, event) -> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionRule {
    /// Source state.
    pub from: StateId,
    /// Triggering event.
    pub event: EventId,
    /// Target state.
    pub to: StateId,
}

/// Outcome of delivering one situation event (Algorithm 1 loop body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionOutcome {
    /// The event matched a rule; the machine moved `from -> to`.
    Transitioned {
        /// State before the event.
        from: StateId,
        /// State after the event.
        to: StateId,
    },
    /// The event is known but no rule matches the current state; the state
    /// is unchanged (the paper's SSM simply ignores non-matching events).
    NoMatch {
        /// The unchanged current state.
        current: StateId,
    },
}

impl TransitionOutcome {
    /// True if a transition happened.
    pub fn transitioned(&self) -> bool {
        matches!(self, TransitionOutcome::Transitioned { .. })
    }
}

/// Outcome of [`Ssm::deliver_coalesced`]: the net effect of a whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescedOutcome {
    /// State before the batch.
    pub from: StateId,
    /// State after the batch (equals `from` when nothing matched, or when
    /// the matches formed a cycle).
    pub to: StateId,
    /// How many events in the batch matched a rule during the dry run.
    pub matched: usize,
    /// Batch size (every event, matching or not).
    pub delivered: usize,
    /// The last matching event — the one the single history record is
    /// attributed to. `None` iff `matched == 0`.
    pub last_event: Option<EventId>,
}

impl CoalescedOutcome {
    /// True when the batch published a transition (at least one match —
    /// cycles included, mirroring self-loop semantics).
    pub fn transitioned(&self) -> bool {
        self.matched > 0
    }
}

/// A transition-history record (exposed through SACKfs for audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Simulated timestamp of the transition.
    pub at: Duration,
    /// Triggering event.
    pub event: EventId,
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
}

/// Observer notified after every successful transition.
///
/// Implemented by SACK's enforcement backends: independent SACK swaps its
/// active compiled-rule set; SACK-enhanced AppArmor patches profiles.
pub trait TransitionListener: Send + Sync {
    /// Called with the old and new state after the SSM has moved.
    fn on_transition(&self, from: StateId, to: StateId);
}

/// Errors building an SSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSsmError {
    message: String,
}

impl BuildSsmError {
    fn new(message: impl Into<String>) -> Self {
        BuildSsmError {
            message: message.into(),
        }
    }
}

impl fmt::Display for BuildSsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BuildSsmError {}

/// The situation state machine.
///
/// The transition table is dense — `table[state][event] -> Option<StateId>`
/// — so event delivery is two array indexes plus an atomic store, keeping
/// the kernel-side cost of a situation change small (paper C3).
pub struct Ssm {
    space: StateSpace,
    table: Vec<Vec<Option<StateId>>>,
    current: AtomicUsize,
    initial: StateId,
    transitions_delivered: AtomicU64,
    transitions_taken: AtomicU64,
    history: Mutex<Vec<TransitionRecord>>,
    listeners: RwLock<Vec<Arc<dyn TransitionListener>>>,
}

impl Ssm {
    /// Builds an SSM over `space` with the given rules and initial state.
    ///
    /// # Errors
    ///
    /// Rejects rules referencing ids outside `space` and conflicting rules
    /// (two rules for the same `(from, event)` with different targets).
    pub fn new(
        space: StateSpace,
        rules: &[TransitionRule],
        initial: StateId,
    ) -> Result<Ssm, BuildSsmError> {
        let ns = space.state_count();
        let ne = space.event_count();
        if initial.0 >= ns {
            return Err(BuildSsmError::new("initial state out of range"));
        }
        let mut table = vec![vec![None; ne]; ns];
        for rule in rules {
            if rule.from.0 >= ns || rule.to.0 >= ns {
                return Err(BuildSsmError::new(format!(
                    "transition references unknown state: {rule:?}"
                )));
            }
            if rule.event.0 >= ne {
                return Err(BuildSsmError::new(format!(
                    "transition references unknown event: {rule:?}"
                )));
            }
            let cell = &mut table[rule.from.0][rule.event.0];
            match cell {
                Some(existing) if *existing != rule.to => {
                    return Err(BuildSsmError::new(format!(
                        "conflicting transitions from {} on {}: -> {} and -> {}",
                        space.state(rule.from).name,
                        space.event(rule.event).name,
                        space.state(*existing).name,
                        space.state(rule.to).name,
                    )));
                }
                _ => *cell = Some(rule.to),
            }
        }
        Ok(Ssm {
            space,
            table,
            current: AtomicUsize::new(initial.0),
            initial,
            transitions_delivered: AtomicU64::new(0),
            transitions_taken: AtomicU64::new(0),
            history: Mutex::new(Vec::new()),
            listeners: RwLock::new(Vec::new()),
        })
    }

    /// The state/event universe.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// The configured initial state (`q0`).
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The current situation state (one atomic load — this is the read the
    /// enforcement hot path performs).
    pub fn current(&self) -> StateId {
        StateId(self.current.load(Ordering::Acquire))
    }

    /// Name of the current state.
    pub fn current_name(&self) -> &str {
        &self.space.state(self.current()).name
    }

    /// Registers a transition listener.
    pub fn add_listener(&self, listener: Arc<dyn TransitionListener>) {
        self.listeners.write().push(listener);
    }

    /// Delivers a situation event (Algorithm 1): if `(current, event)`
    /// matches a rule, move to the target state, record history at time
    /// `now`, and notify listeners.
    pub fn deliver(&self, event: EventId, now: Duration) -> TransitionOutcome {
        self.transitions_delivered.fetch_add(1, Ordering::Relaxed);
        // Serialize transitions: listeners must observe them in order.
        let mut history = self.history.lock();
        let from = StateId(self.current.load(Ordering::Acquire));
        match self.table[from.0].get(event.0).copied().flatten() {
            Some(to) => {
                self.current.store(to.0, Ordering::Release);
                self.transitions_taken.fetch_add(1, Ordering::Relaxed);
                history.push(TransitionRecord {
                    at: now,
                    event,
                    from,
                    to,
                });
                drop(history);
                for listener in self.listeners.read().iter() {
                    listener.on_transition(from, to);
                }
                TransitionOutcome::Transitioned { from, to }
            }
            None => TransitionOutcome::NoMatch { current: from },
        }
    }

    /// Delivers an event by name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name back as `Err` so SACKfs can report `EINVAL`.
    pub fn deliver_by_name(&self, name: &str, now: Duration) -> Result<TransitionOutcome, String> {
        match self.space.event_id(name) {
            Some(id) => Ok(self.deliver(id, now)),
            None => Err(name.to_string()),
        }
    }

    /// Delivers a whole batch of events as **one** coalesced transition.
    ///
    /// The batch is dry-run through the transition table from the current
    /// state: each event either matches a rule for the evolving state (and
    /// advances the dry-run cursor) or is ignored, exactly as a sequence of
    /// [`Ssm::deliver`] calls would. But the machine then *publishes only
    /// the net effect*: at most one atomic store, one history record (timed
    /// `now`, attributed to the last matching event, spanning pre-batch →
    /// final state) and one listener notification for the entire batch.
    ///
    /// A batch whose matches form a cycle (final state == pre-batch state)
    /// still publishes, mirroring the self-loop semantics of
    /// [`Ssm::deliver`]: enforcers may rely on re-entry notifications.
    ///
    /// `transitions_delivered` counts every event in the batch;
    /// `transitions_taken` grows by at most one. This is the soundness
    /// argument for epoch-per-drain (DESIGN.md §11): observers between
    /// batches cannot distinguish the coalesced publish from the final
    /// state of the per-event sequence, because intermediate states were
    /// never observable outside the history anyway.
    pub fn deliver_coalesced(&self, events: &[EventId], now: Duration) -> CoalescedOutcome {
        self.transitions_delivered
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        // Serialize against per-event delivery: the dry run and the publish
        // happen under the same lock, so no interleaved transition can slip
        // between them.
        let mut history = self.history.lock();
        let from = StateId(self.current.load(Ordering::Acquire));
        let mut cursor = from;
        let mut matched = 0usize;
        let mut last_event = None;
        for &event in events {
            if let Some(to) = self.table[cursor.0].get(event.0).copied().flatten() {
                cursor = to;
                matched += 1;
                last_event = Some(event);
            }
        }
        let to = cursor;
        if matched == 0 {
            return CoalescedOutcome {
                from,
                to: from,
                matched: 0,
                delivered: events.len(),
                last_event: None,
            };
        }
        self.current.store(to.0, Ordering::Release);
        self.transitions_taken.fetch_add(1, Ordering::Relaxed);
        history.push(TransitionRecord {
            at: now,
            event: last_event.expect("matched > 0 implies a last event"),
            from,
            to,
        });
        drop(history);
        for listener in self.listeners.read().iter() {
            listener.on_transition(from, to);
        }
        CoalescedOutcome {
            from,
            to,
            matched,
            delivered: events.len(),
            last_event,
        }
    }

    /// Total events delivered.
    pub fn delivered_count(&self) -> u64 {
        self.transitions_delivered.load(Ordering::Relaxed)
    }

    /// Total transitions taken.
    pub fn taken_count(&self) -> u64 {
        self.transitions_taken.load(Ordering::Relaxed)
    }

    /// Copy of the transition history.
    pub fn history(&self) -> Vec<TransitionRecord> {
        self.history.lock().clone()
    }

    /// Renders the machine in Graphviz dot format (the tooling equivalent
    /// of the paper's Fig. 2). The current state is drawn with a double
    /// circle; the initial state gets an entry arrow.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph ssm {\n    rankdir=LR;\n");
        let current = self.current();
        let _ = writeln!(out, "    __start [shape=point];");
        for (i, state) in self.space.states().iter().enumerate() {
            let shape = if StateId(i) == current {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "    s{i} [label=\"{}\\n({})\" shape={shape}];",
                state.name, state.encoding
            );
        }
        let _ = writeln!(out, "    __start -> s{};", self.initial.0);
        for (from, row) in self.table.iter().enumerate() {
            for (event, target) in row.iter().enumerate() {
                if let Some(to) = target {
                    let _ = writeln!(
                        out,
                        "    s{from} -> s{} [label=\"{}\"];",
                        to.0,
                        self.space.event(EventId(event)).name
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// States reachable from the initial state (used by the policy checker
    /// to warn about dead states).
    pub fn reachable_states(&self) -> Vec<StateId> {
        let ns = self.space.state_count();
        let mut seen = vec![false; ns];
        let mut stack = vec![self.initial];
        seen[self.initial.0] = true;
        while let Some(s) = stack.pop() {
            for target in self.table[s.0].iter().flatten() {
                if !seen[target.0] {
                    seen[target.0] = true;
                    stack.push(*target);
                }
            }
        }
        (0..ns).filter(|i| seen[*i]).map(StateId).collect()
    }
}

impl fmt::Debug for Ssm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ssm")
            .field("states", &self.space.state_count())
            .field("events", &self.space.event_count())
            .field("current", &self.current_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    /// Builds the paper's Fig. 2 example machine: emergency, driving,
    /// parking-with-driver, parking-without-driver.
    fn fig2() -> Ssm {
        let mut space = StateSpace::new();
        let driving = space.add_state("driving", 0).unwrap();
        let pwd = space.add_state("parking_with_driver", 1).unwrap();
        let pwod = space.add_state("parking_without_driver", 2).unwrap();
        let emergency = space.add_state("emergency", 3).unwrap();
        let crash = space.add_event("crash").unwrap();
        let park = space.add_event("park").unwrap();
        let driver_left = space.add_event("driver_left").unwrap();
        let driver_back = space.add_event("driver_entered").unwrap();
        let start = space.add_event("start_driving").unwrap();
        let resolved = space.add_event("emergency_resolved").unwrap();
        let rules = [
            TransitionRule {
                from: driving,
                event: crash,
                to: emergency,
            },
            TransitionRule {
                from: driving,
                event: park,
                to: pwd,
            },
            TransitionRule {
                from: pwd,
                event: driver_left,
                to: pwod,
            },
            TransitionRule {
                from: pwod,
                event: driver_back,
                to: pwd,
            },
            TransitionRule {
                from: pwd,
                event: start,
                to: driving,
            },
            TransitionRule {
                from: emergency,
                event: resolved,
                to: pwd,
            },
        ];
        Ssm::new(space, &rules, driving).unwrap()
    }

    #[test]
    fn fig2_walk() {
        let ssm = fig2();
        assert_eq!(ssm.current_name(), "driving");
        let crash = ssm.space().event_id("crash").unwrap();
        let out = ssm.deliver(crash, Duration::from_secs(1));
        assert!(out.transitioned());
        assert_eq!(ssm.current_name(), "emergency");
        // Crash again: no rule from emergency on crash.
        let out = ssm.deliver(crash, Duration::from_secs(2));
        assert!(!out.transitioned());
        assert_eq!(ssm.current_name(), "emergency");
        let resolved = ssm.space().event_id("emergency_resolved").unwrap();
        ssm.deliver(resolved, Duration::from_secs(3));
        assert_eq!(ssm.current_name(), "parking_with_driver");
        assert_eq!(ssm.taken_count(), 2);
        assert_eq!(ssm.delivered_count(), 3);
    }

    #[test]
    fn history_records_transitions() {
        let ssm = fig2();
        let crash = ssm.space().event_id("crash").unwrap();
        ssm.deliver(crash, Duration::from_millis(42));
        let history = ssm.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].at, Duration::from_millis(42));
        assert_eq!(ssm.space().state(history[0].to).name, "emergency");
    }

    #[test]
    fn listeners_observe_transitions() {
        struct CountListener(Counter);
        impl TransitionListener for CountListener {
            fn on_transition(&self, _from: StateId, _to: StateId) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ssm = fig2();
        let listener = Arc::new(CountListener(Counter::new(0)));
        ssm.add_listener(Arc::clone(&listener) as Arc<dyn TransitionListener>);
        let crash = ssm.space().event_id("crash").unwrap();
        let park = ssm.space().event_id("park").unwrap();
        ssm.deliver(crash, Duration::ZERO); // driving -> emergency
        ssm.deliver(park, Duration::ZERO); // no match
        assert_eq!(listener.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn deliver_by_name_reports_unknown() {
        let ssm = fig2();
        assert!(ssm.deliver_by_name("crash", Duration::ZERO).is_ok());
        assert_eq!(
            ssm.deliver_by_name("meteor", Duration::ZERO).unwrap_err(),
            "meteor"
        );
    }

    #[test]
    fn conflicting_rules_rejected() {
        let mut space = StateSpace::new();
        let a = space.add_state("a", 0).unwrap();
        let b = space.add_state("b", 1).unwrap();
        let c = space.add_state("c", 2).unwrap();
        let e = space.add_event("e").unwrap();
        let rules = [
            TransitionRule {
                from: a,
                event: e,
                to: b,
            },
            TransitionRule {
                from: a,
                event: e,
                to: c,
            },
        ];
        let err = Ssm::new(space, &rules, a).unwrap_err();
        assert!(err.to_string().contains("conflicting"));
    }

    #[test]
    fn duplicate_identical_rule_is_fine() {
        let mut space = StateSpace::new();
        let a = space.add_state("a", 0).unwrap();
        let b = space.add_state("b", 1).unwrap();
        let e = space.add_event("e").unwrap();
        let rules = [
            TransitionRule {
                from: a,
                event: e,
                to: b,
            },
            TransitionRule {
                from: a,
                event: e,
                to: b,
            },
        ];
        assert!(Ssm::new(space, &rules, a).is_ok());
    }

    #[test]
    fn self_loop_rule_is_a_real_transition() {
        // `(a, e) -> a` is legal and counts as a *taken* transition: it
        // lands in the history and renotifies listeners (enforcers may
        // rely on re-entry to refresh derived state), even though the
        // current state is unchanged.
        struct CountListener(Counter);
        impl TransitionListener for CountListener {
            fn on_transition(&self, from: StateId, to: StateId) {
                assert_eq!(from, to);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut space = StateSpace::new();
        let a = space.add_state("a", 0).unwrap();
        let e = space.add_event("ping").unwrap();
        let rules = [TransitionRule {
            from: a,
            event: e,
            to: a,
        }];
        let ssm = Ssm::new(space, &rules, a).unwrap();
        let listener = Arc::new(CountListener(Counter::new(0)));
        ssm.add_listener(Arc::clone(&listener) as Arc<dyn TransitionListener>);

        let out = ssm.deliver(e, Duration::from_secs(1));
        assert_eq!(out, TransitionOutcome::Transitioned { from: a, to: a });
        assert_eq!(ssm.current(), a);
        assert_eq!(ssm.taken_count(), 1);
        assert_eq!(ssm.history().len(), 1);
        assert_eq!(listener.0.load(Ordering::Relaxed), 1);
        // The self-loop shows up as a dot edge a -> a.
        assert!(ssm.to_dot().contains("s0 -> s0 [label=\"ping\"]"));
    }

    #[test]
    fn out_of_range_event_id_is_a_no_match() {
        // Defensive path: a raw EventId beyond the table width (e.g. from
        // a stale handle across a reload) must not panic — it is treated
        // like any event with no rule for the current state.
        let ssm = fig2();
        let out = ssm.deliver(EventId(999), Duration::ZERO);
        assert!(!out.transitioned());
        assert_eq!(ssm.current_name(), "driving");
        assert_eq!(ssm.delivered_count(), 1);
        assert_eq!(ssm.taken_count(), 0);
    }

    #[test]
    fn out_of_range_rule_rejected() {
        let mut space = StateSpace::new();
        let a = space.add_state("a", 0).unwrap();
        let e = space.add_event("e").unwrap();
        let rules = [TransitionRule {
            from: a,
            event: e,
            to: StateId(9),
        }];
        assert!(Ssm::new(space, &rules, a).is_err());
    }

    #[test]
    fn reachability() {
        let mut space = StateSpace::new();
        let a = space.add_state("a", 0).unwrap();
        let b = space.add_state("b", 1).unwrap();
        let island = space.add_state("island", 2).unwrap();
        let e = space.add_event("e").unwrap();
        let rules = [TransitionRule {
            from: a,
            event: e,
            to: b,
        }];
        let ssm = Ssm::new(space, &rules, a).unwrap();
        let reachable = ssm.reachable_states();
        assert!(reachable.contains(&a));
        assert!(reachable.contains(&b));
        assert!(!reachable.contains(&island));
    }

    #[test]
    fn dot_export_contains_machine_structure() {
        let ssm = fig2();
        let crash = ssm.space().event_id("crash").unwrap();
        ssm.deliver(crash, Duration::ZERO);
        let dot = ssm.to_dot();
        assert!(dot.starts_with("digraph ssm {"));
        assert!(dot.contains("label=\"emergency\\n(3)\" shape=doublecircle"));
        assert!(dot.contains("label=\"driving\\n(0)\" shape=circle"));
        assert!(dot.contains("-> s3 [label=\"crash\"]"));
        assert!(dot.contains("__start -> s0;"));
        // One edge per transition rule (6 in the Fig. 2 machine).
        assert_eq!(dot.matches("[label=\"").count() - 4, 6, "{dot}");
    }

    #[test]
    fn coalesced_batch_publishes_net_effect_once() {
        struct CountListener(Counter);
        impl TransitionListener for CountListener {
            fn on_transition(&self, _from: StateId, _to: StateId) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ssm = fig2();
        let listener = Arc::new(CountListener(Counter::new(0)));
        ssm.add_listener(Arc::clone(&listener) as Arc<dyn TransitionListener>);
        let crash = ssm.space().event_id("crash").unwrap();
        let resolved = ssm.space().event_id("emergency_resolved").unwrap();
        let left = ssm.space().event_id("driver_left").unwrap();
        // driving -crash-> emergency -resolved-> pwd -left-> pwod, with a
        // non-matching crash in the middle.
        let out = ssm.deliver_coalesced(&[crash, crash, resolved, left], Duration::from_secs(9));
        assert!(out.transitioned());
        assert_eq!(out.matched, 3);
        assert_eq!(out.delivered, 4);
        assert_eq!(ssm.current_name(), "parking_without_driver");
        // Net effect published once: one taken transition, one history
        // record spanning pre-batch -> final, one listener call.
        assert_eq!(ssm.taken_count(), 1);
        assert_eq!(ssm.delivered_count(), 4);
        let history = ssm.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].at, Duration::from_secs(9));
        assert_eq!(ssm.space().state(history[0].from).name, "driving");
        assert_eq!(
            ssm.space().state(history[0].to).name,
            "parking_without_driver"
        );
        assert_eq!(history[0].event, left, "attributed to last matching event");
        assert_eq!(listener.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn coalesced_no_match_publishes_nothing() {
        let ssm = fig2();
        let resolved = ssm.space().event_id("emergency_resolved").unwrap();
        let out = ssm.deliver_coalesced(&[resolved, resolved], Duration::ZERO);
        assert!(!out.transitioned());
        assert_eq!(out.from, out.to);
        assert_eq!(ssm.current_name(), "driving");
        assert_eq!(ssm.taken_count(), 0);
        assert_eq!(ssm.delivered_count(), 2);
        assert!(ssm.history().is_empty());
    }

    #[test]
    fn coalesced_cycle_still_publishes_like_a_self_loop() {
        struct CountListener(Counter);
        impl TransitionListener for CountListener {
            fn on_transition(&self, from: StateId, to: StateId) {
                assert_eq!(from, to);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ssm = fig2();
        let listener = Arc::new(CountListener(Counter::new(0)));
        ssm.add_listener(Arc::clone(&listener) as Arc<dyn TransitionListener>);
        let crash = ssm.space().event_id("crash").unwrap();
        let resolved = ssm.space().event_id("emergency_resolved").unwrap();
        let start = ssm.space().event_id("start_driving").unwrap();
        // driving -> emergency -> pwd -> driving: a full cycle.
        let out = ssm.deliver_coalesced(&[crash, resolved, start], Duration::ZERO);
        assert!(out.transitioned());
        assert_eq!(out.from, out.to);
        assert_eq!(ssm.current_name(), "driving");
        assert_eq!(ssm.taken_count(), 1);
        assert_eq!(listener.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn coalesced_matches_per_event_final_state() {
        // The coalescing rule is exactly "same final state as per-event
        // delivery" — check against a replayed twin for a long mixed batch.
        let batch_names = [
            "crash",
            "park",
            "emergency_resolved",
            "driver_left",
            "driver_entered",
            "start_driving",
            "crash",
        ];
        let coalesced = fig2();
        let twin = fig2();
        let batch: Vec<EventId> = batch_names
            .iter()
            .map(|n| coalesced.space().event_id(n).unwrap())
            .collect();
        coalesced.deliver_coalesced(&batch, Duration::ZERO);
        for &e in &batch {
            twin.deliver(e, Duration::ZERO);
        }
        assert_eq!(coalesced.current(), twin.current());
        assert_eq!(coalesced.delivered_count(), twin.delivered_count());
        assert!(coalesced.taken_count() <= 1);
    }

    #[test]
    fn coalesced_empty_batch_is_a_no_op() {
        let ssm = fig2();
        let out = ssm.deliver_coalesced(&[], Duration::ZERO);
        assert!(!out.transitioned());
        assert_eq!(out.delivered, 0);
        assert_eq!(ssm.delivered_count(), 0);
    }

    #[test]
    fn concurrent_delivery_is_serialized() {
        use std::thread;
        let ssm = Arc::new(fig2());
        let crash = ssm.space().event_id("crash").unwrap();
        let resolved = ssm.space().event_id("emergency_resolved").unwrap();
        let start = ssm.space().event_id("start_driving").unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ssm = Arc::clone(&ssm);
            handles.push(thread::spawn(move || {
                for _ in 0..250 {
                    ssm.deliver(crash, Duration::ZERO);
                    ssm.deliver(resolved, Duration::ZERO);
                    ssm.deliver(start, Duration::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every taken transition is in the (serialized) history.
        assert_eq!(ssm.history().len() as u64, ssm.taken_count());
        // The final state is a valid state of the machine.
        assert!(ssm.current().0 < ssm.space().state_count());
    }
}
