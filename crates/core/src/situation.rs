//! Situation states and situation events — the new security context SACK
//! introduces into the kernel (paper §III-C).
//!
//! A *situation state* abstracts an environmental condition relevant to
//! access control (`driving`, `parking_with_driver`, `emergency`, ...).
//! A *situation event* is a detected environment change (`crash`,
//! `driver_left`, ...) that may trigger a state transition. States carry an
//! administrator-chosen numeric *encoding* (the `States` policy interface in
//! Table I) so user space and kernel agree on a compact representation.

use std::collections::HashMap;
use std::fmt;

/// Index of a situation state within its [`StateSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// Index of a situation event within its [`StateSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub usize);

/// A named situation state with its policy-assigned encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SituationState {
    /// State name (e.g. `"emergency"`).
    pub name: String,
    /// Numeric encoding from the `States` policy interface.
    pub encoding: u32,
}

impl fmt::Display for SituationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.encoding)
    }
}

/// A named situation event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SituationEvent {
    /// Event name (e.g. `"crash"`).
    pub name: String,
}

impl fmt::Display for SituationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Error registering a duplicate or unknown name in a [`StateSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpaceError {
    message: String,
}

impl StateSpaceError {
    fn new(message: impl Into<String>) -> Self {
        StateSpaceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for StateSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for StateSpaceError {}

/// The immutable universe of states and events a policy defines.
#[derive(Debug, Clone, Default)]
pub struct StateSpace {
    states: Vec<SituationState>,
    events: Vec<SituationEvent>,
    state_index: HashMap<String, StateId>,
    event_index: HashMap<String, EventId>,
}

impl StateSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        StateSpace::default()
    }

    /// Registers a state.
    ///
    /// # Errors
    ///
    /// Duplicate names or duplicate encodings are rejected (the encoding is
    /// the kernel-facing identity and must be unambiguous).
    pub fn add_state(&mut self, name: &str, encoding: u32) -> Result<StateId, StateSpaceError> {
        if self.state_index.contains_key(name) {
            return Err(StateSpaceError::new(format!("duplicate state `{name}`")));
        }
        if self.states.iter().any(|s| s.encoding == encoding) {
            return Err(StateSpaceError::new(format!(
                "duplicate state encoding {encoding} (state `{name}`)"
            )));
        }
        let id = StateId(self.states.len());
        self.states.push(SituationState {
            name: name.to_string(),
            encoding,
        });
        self.state_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Registers an event.
    ///
    /// # Errors
    ///
    /// Duplicate names are rejected.
    pub fn add_event(&mut self, name: &str) -> Result<EventId, StateSpaceError> {
        if self.event_index.contains_key(name) {
            return Err(StateSpaceError::new(format!("duplicate event `{name}`")));
        }
        let id = EventId(self.events.len());
        self.events.push(SituationEvent {
            name: name.to_string(),
        });
        self.event_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a state by name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.state_index.get(name).copied()
    }

    /// Looks up an event by name.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.event_index.get(name).copied()
    }

    /// The state record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn state(&self, id: StateId) -> &SituationState {
        &self.states[id.0]
    }

    /// The event record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn event(&self, id: EventId) -> &SituationEvent {
        &self.events[id.0]
    }

    /// All states, in registration order.
    pub fn states(&self) -> &[SituationState] {
        &self.states
    }

    /// All events, in registration order.
    pub fn events(&self) -> &[SituationEvent] {
        &self.events
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut space = StateSpace::new();
        let normal = space.add_state("normal", 0).unwrap();
        let emergency = space.add_state("emergency", 1).unwrap();
        let crash = space.add_event("crash").unwrap();
        assert_eq!(space.state_id("normal"), Some(normal));
        assert_eq!(space.state_id("emergency"), Some(emergency));
        assert_eq!(space.event_id("crash"), Some(crash));
        assert_eq!(space.state(normal).encoding, 0);
        assert_eq!(space.event(crash).name, "crash");
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.event_count(), 1);
    }

    #[test]
    fn duplicate_state_name_rejected() {
        let mut space = StateSpace::new();
        space.add_state("normal", 0).unwrap();
        let err = space.add_state("normal", 1).unwrap_err();
        assert!(err.to_string().contains("duplicate state"));
    }

    #[test]
    fn duplicate_encoding_rejected() {
        let mut space = StateSpace::new();
        space.add_state("a", 7).unwrap();
        let err = space.add_state("b", 7).unwrap_err();
        assert!(err.to_string().contains("encoding"));
    }

    #[test]
    fn duplicate_event_rejected() {
        let mut space = StateSpace::new();
        space.add_event("crash").unwrap();
        assert!(space.add_event("crash").is_err());
    }

    #[test]
    fn unknown_lookups_return_none() {
        let space = StateSpace::new();
        assert_eq!(space.state_id("x"), None);
        assert_eq!(space.event_id("y"), None);
    }

    #[test]
    fn display_formats() {
        let s = SituationState {
            name: "driving".into(),
            encoding: 2,
        };
        assert_eq!(s.to_string(), "driving=2");
        let e = SituationEvent {
            name: "crash".into(),
        };
        assert_eq!(e.to_string(), "crash");
    }
}
