//! SACK-enhanced AppArmor: the adaptive policy enforcer (APE) backend that
//! patches AppArmor profiles when the situation state transitions
//! (paper §III-E-3, second deployment mode).
//!
//! In this mode SACK performs no per-access checks of its own; instead, on
//! every transition it rewrites the affected AppArmor profiles — removing
//! the rules it injected for the previous state and installing the rules
//! mapped from the new state's permissions — then refreshes task
//! confinement so the change takes effect immediately. The per-access cost
//! is therefore exactly AppArmor's, which is how the paper's Table II
//! "SACK-enhanced AppArmor" column stays within noise of the baseline.

use std::fmt;
use std::sync::Arc;

use sack_apparmor::profile::PathRule;
use sack_apparmor::AppArmor;

use crate::policy::CompiledPolicy;
use crate::rules::{RuleEffect, SubjectMatch};
use crate::situation::StateId;

/// Origin tag attached to every AppArmor rule SACK injects, so they can be
/// retracted wholesale on the next transition.
pub const SACK_RULE_ORIGIN: &str = "sack";

/// Errors applying a state's rules to AppArmor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnhanceError {
    message: String,
}

impl EnhanceError {
    fn new(message: impl Into<String>) -> Self {
        EnhanceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EnhanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EnhanceError {}

/// The APE backend targeting AppArmor.
pub struct AppArmorEnhancer {
    apparmor: Arc<AppArmor>,
}

impl AppArmorEnhancer {
    /// Creates an enhancer over a live AppArmor module.
    pub fn new(apparmor: Arc<AppArmor>) -> Self {
        AppArmorEnhancer { apparmor }
    }

    /// The enhanced AppArmor module.
    pub fn apparmor(&self) -> &Arc<AppArmor> {
        &self.apparmor
    }

    /// Applies the rules of `state`: per target profile, retracts previously
    /// injected rules and installs the new set, then refreshes confinement.
    ///
    /// Only rules with a `subject=profile:<name>` selector can be attached
    /// to a specific profile; the policy checker's enhanced-mode validation
    /// ([`validate_for_enhancement`]) rejects policies relying on other
    /// selectors.
    ///
    /// # Errors
    ///
    /// [`EnhanceError`] if a referenced profile is not loaded.
    pub fn apply_state(&self, policy: &CompiledPolicy, state: StateId) -> Result<(), EnhanceError> {
        // Collect the new rules per profile.
        let mut per_profile: Vec<(String, Vec<PathRule>)> = Vec::new();
        for perm in policy.permissions_of(state) {
            for rule in policy.rules_of(*perm) {
                let SubjectMatch::Profile(profile) = &rule.subject else {
                    continue;
                };
                let path_rule = PathRule {
                    glob: rule.object.clone(),
                    perms: rule.perms,
                    deny: rule.effect == RuleEffect::Deny,
                    origin: Some(SACK_RULE_ORIGIN.to_string()),
                };
                match per_profile.iter_mut().find(|(name, _)| name == profile) {
                    Some((_, rules)) => rules.push(path_rule),
                    None => per_profile.push((profile.clone(), vec![path_rule])),
                }
            }
        }

        let db = self.apparmor.policy();
        // Retract old SACK rules from every loaded profile (the previous
        // state may have touched profiles the new one does not).
        for name in db.profile_names() {
            db.patch(&name, |p| {
                p.remove_rules_with_origin(SACK_RULE_ORIGIN);
            })
            .map_err(|e| EnhanceError::new(e.to_string()))?;
        }
        // Install the new state's rules.
        for (profile, rules) in per_profile {
            db.patch(&profile, move |p| {
                p.path_rules.extend(rules);
            })
            .map_err(|_| {
                EnhanceError::new(format!(
                    "SACK policy targets AppArmor profile `{profile}` which is not loaded"
                ))
            })?;
        }
        self.apparmor.refresh_confinement();
        Ok(())
    }
}

impl fmt::Debug for AppArmorEnhancer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppArmorEnhancer")
            .field("profiles", &self.apparmor.policy().len())
            .finish()
    }
}

/// Enhanced-mode validation: every rule must use a `profile:` subject (so
/// it can be attached to an AppArmor profile) and every referenced profile
/// must exist in `loaded_profiles`.
pub fn validate_for_enhancement(
    policy: &CompiledPolicy,
    loaded_profiles: &[String],
) -> Result<(), EnhanceError> {
    for perm in policy.permissions() {
        let id = policy
            .permission_id(&perm.name)
            .expect("permission from the policy itself");
        for rule in policy.rules_of(id) {
            match &rule.subject {
                SubjectMatch::Profile(name) => {
                    if !loaded_profiles.iter().any(|p| p == name) {
                        return Err(EnhanceError::new(format!(
                            "rule for `{}` targets profile `{name}` which is not loaded",
                            perm.name
                        )));
                    }
                }
                other => {
                    return Err(EnhanceError::new(format!(
                        "rule for `{}` uses selector `{other}`; enhanced mode requires \
                         `subject=profile:<name>`",
                        perm.name
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SackPolicy;
    use sack_apparmor::profile::{FilePerms, Profile};
    use sack_apparmor::PolicyDb;

    const ENHANCED_POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { CONTROL_CAR_DOORS; }
        state_per { emergency: CONTROL_CAR_DOORS; }
        per_rules {
            CONTROL_CAR_DOORS: allow subject=profile:rescue_daemon /dev/car/** wi;
        }
    "#;

    fn setup() -> (
        Arc<AppArmor>,
        AppArmorEnhancer,
        crate::policy::CompiledPolicy,
    ) {
        let db = Arc::new(PolicyDb::new());
        db.load(Profile::new("rescue_daemon"));
        let apparmor = AppArmor::new(db);
        let enhancer = AppArmorEnhancer::new(Arc::clone(&apparmor));
        let policy = SackPolicy::parse(ENHANCED_POLICY)
            .unwrap()
            .compile()
            .unwrap();
        (apparmor, enhancer, policy)
    }

    #[test]
    fn apply_emergency_injects_rules_and_normal_retracts() {
        let (apparmor, enhancer, policy) = setup();
        let normal = policy.space().state_id("normal").unwrap();
        let emergency = policy.space().state_id("emergency").unwrap();

        enhancer.apply_state(&policy, emergency).unwrap();
        let compiled = apparmor.policy().get("rescue_daemon").unwrap();
        assert!(compiled
            .rules()
            .evaluate("/dev/car/door0")
            .permits(FilePerms::WRITE | FilePerms::IOCTL));

        enhancer.apply_state(&policy, normal).unwrap();
        let compiled = apparmor.policy().get("rescue_daemon").unwrap();
        assert!(!compiled
            .rules()
            .evaluate("/dev/car/door0")
            .permits(FilePerms::WRITE));
    }

    #[test]
    fn apply_is_idempotent() {
        let (apparmor, enhancer, policy) = setup();
        let emergency = policy.space().state_id("emergency").unwrap();
        enhancer.apply_state(&policy, emergency).unwrap();
        enhancer.apply_state(&policy, emergency).unwrap();
        let compiled = apparmor.policy().get("rescue_daemon").unwrap();
        // Rules were retracted and re-added, not duplicated.
        assert_eq!(compiled.profile().path_rules.len(), 1);
    }

    #[test]
    fn missing_target_profile_is_an_error() {
        let db = Arc::new(PolicyDb::new()); // rescue_daemon NOT loaded
        let apparmor = AppArmor::new(db);
        let enhancer = AppArmorEnhancer::new(apparmor);
        let policy = SackPolicy::parse(ENHANCED_POLICY)
            .unwrap()
            .compile()
            .unwrap();
        let emergency = policy.space().state_id("emergency").unwrap();
        let err = enhancer.apply_state(&policy, emergency).unwrap_err();
        assert!(err.to_string().contains("rescue_daemon"));
    }

    #[test]
    fn validation_requires_profile_subjects() {
        let policy = SackPolicy::parse(
            r#"states { a = 0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P: allow subject=* /x r; }"#,
        )
        .unwrap()
        .compile()
        .unwrap();
        let err = validate_for_enhancement(&policy, &["p".to_string()]).unwrap_err();
        assert!(err.to_string().contains("enhanced mode requires"));
    }

    #[test]
    fn validation_requires_loaded_profiles() {
        let policy = SackPolicy::parse(ENHANCED_POLICY)
            .unwrap()
            .compile()
            .unwrap();
        assert!(validate_for_enhancement(&policy, &["rescue_daemon".to_string()]).is_ok());
        let err = validate_for_enhancement(&policy, &[]).unwrap_err();
        assert!(err.to_string().contains("not loaded"));
    }
}
