//! The async batched sensor event plane — ring-based SDS ingestion with
//! transition coalescing and backpressure (DESIGN.md §11).
//!
//! The synchronous path pays one `write(2)` + one SSM evaluation + one
//! epoch bump per sensor frame. At realistic sensor rates that per-frame
//! cost dominates (the ROADMAP's "next scaling wall"), so this module adds
//! an io_uring-style submission plane:
//!
//! * Producers turn sensor events into fixed-size [`EventFrame`]s and
//!   [`EventPlane::submit`] them into a bounded lock-free MPSC ring
//!   ([`sack_kernel::ring::Ring`]) — no syscall, no SSM work, no lock.
//! * A drain ([`EventPlane::drain`]) consumes a whole batch and feeds it to
//!   [`crate::sack::Sack::deliver_coalesced`]: N frames collapse into **at
//!   most one** SSM transition, one epoch bump and one cache invalidation.
//! * When the ring fills, the configured [`BackpressurePolicy`] applies:
//!   `Block` makes the producer help drain and retry (lossless);
//!   `DropOldest` discards the oldest frames with an exact producer-visible
//!   counter.
//!
//! Every stage fires a tracepoint through the kernel's `TraceHub`
//! (`sds_enqueue`, `sds_drain`, `sds_coalesce`, `sds_backpressure`), and
//! the plane's counters surface in `SACK/sds/stats` plus the Prometheus
//! exposition.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use sack_kernel::ring::{Ring, RingFull};
use sack_kernel::trace::{TraceEvent, TraceHub};

use crate::sack::{Sack, SackError};
use crate::situation::EventId;

/// Maximum sensor-event name length an [`EventFrame`] carries inline.
pub const MAX_EVENT_NAME: usize = 32;

/// Why a frame could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The event name is empty.
    Empty,
    /// The event name exceeds [`MAX_EVENT_NAME`] bytes.
    TooLong(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Empty => f.write_str("empty event name"),
            FrameError::TooLong(n) => {
                write!(f, "event name of {n} bytes exceeds {MAX_EVENT_NAME}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A fixed-size sensor frame: the unit the submission ring carries.
///
/// `Copy`, fully inline (no heap pointer), so producers enqueue it with a
/// single slot write and the ring never allocates. The event name is stored
/// as UTF-8 bytes with an explicit length.
#[derive(Clone, Copy)]
pub struct EventFrame {
    name: [u8; MAX_EVENT_NAME],
    len: u8,
    /// Producer-assigned sensor id (diagnostics only; not interpreted).
    pub sensor: u16,
    /// Frame timestamp, nanoseconds of simulated time (diagnostics only;
    /// the drain timestamps history records with the kernel clock).
    pub t_ns: u64,
    /// Pre-resolved event id from submit-time validation (see
    /// [`EventFrame::set_hint`]); meaningful only with `hint_gen != 0`.
    hint_id: u32,
    /// [`crate::sack::ActivePolicy::load_generation`] the hint was
    /// resolved under; 0 = no hint.
    hint_gen: u64,
}

impl EventFrame {
    /// Builds a frame carrying `name`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Empty`] / [`FrameError::TooLong`] — the same frame
    /// shape both ingestion paths enforce.
    pub fn new(name: &str, sensor: u16, t_ns: u64) -> Result<EventFrame, FrameError> {
        let bytes = name.as_bytes();
        if bytes.is_empty() {
            return Err(FrameError::Empty);
        }
        if bytes.len() > MAX_EVENT_NAME {
            return Err(FrameError::TooLong(bytes.len()));
        }
        let mut buf = [0u8; MAX_EVENT_NAME];
        buf[..bytes.len()].copy_from_slice(bytes);
        Ok(EventFrame {
            name: buf,
            len: bytes.len() as u8,
            sensor,
            t_ns,
            hint_id: 0,
            hint_gen: 0,
        })
    }

    /// The event name.
    pub fn name(&self) -> &str {
        // Constructed from &str, so the bytes are valid UTF-8 by build.
        std::str::from_utf8(&self.name[..self.len as usize]).unwrap_or("")
    }

    /// Attaches a pre-resolved event id: `id` must be the result of
    /// resolving [`EventFrame::name`] against the event space of the
    /// [`crate::sack::ActivePolicy`] whose `load_generation` is `gen`.
    /// The drain honours the hint only while it holds that exact policy
    /// snapshot — a reload between submit and drain silently falls back
    /// to resolving the name again, so a hint can make delivery cheaper
    /// but never wrong.
    pub fn set_hint(&mut self, id: EventId, gen: u64) {
        self.hint_id = id.0 as u32;
        self.hint_gen = gen;
    }

    /// The pre-resolved event id, if it was resolved under generation
    /// `gen` (0 never matches: it is the "no hint" tag).
    pub(crate) fn hint(&self, gen: u64) -> Option<EventId> {
        (self.hint_gen == gen).then_some(EventId(self.hint_id as usize))
    }
}

impl fmt::Debug for EventFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventFrame")
            .field("name", &self.name())
            .field("sensor", &self.sensor)
            .field("t_ns", &self.t_ns)
            .finish()
    }
}

/// What happens when a producer submits into a full ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// The producer helps drain the ring and retries — lossless, but the
    /// producer absorbs drain latency.
    Block,
    /// The oldest queued frames are discarded to make room; every discard
    /// increments an exact, producer-visible counter.
    DropOldest,
}

impl BackpressurePolicy {
    /// Stable label used in traces and the stats node (no spaces: the
    /// flight-record format is `k=v`).
    pub fn name(self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::DropOldest => "drop-oldest",
        }
    }
}

impl fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Net effect of one [`EventPlane::drain`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainOutcome {
    /// Frames consumed from the ring.
    pub batch: usize,
    /// Frames that matched a transition rule during the coalesced dry run.
    pub matched: usize,
    /// True when the batch published a (single) transition.
    pub transitioned: bool,
}

/// The submission-ring event plane. One per attached [`Sack`] module;
/// create via [`Sack::install_event_plane`] (or implicitly at
/// [`Sack::attach`]).
pub struct EventPlane {
    /// Back-reference to the owning module. `Weak` because the module owns
    /// the plane (`OnceLock<Arc<EventPlane>>`) — an `Arc` here would leak
    /// the pair.
    sack: Weak<Sack>,
    ring: Ring<EventFrame>,
    policy: BackpressurePolicy,
    /// Cached handle to the module's `TraceHub`, populated lazily on the
    /// first probe after tracing is wired. Submit-side probes fire per
    /// frame, so the untraced cost must be one `OnceLock` load + one
    /// enabled check — not a `Weak` upgrade of the whole module.
    hub: OnceLock<Arc<TraceHub>>,
    /// Serializes drains: batches must reach the SSM in ring order, and a
    /// blocked producer helping out must not interleave with the consumer.
    /// The guarded `Vec` is the drain's reusable batch scratch buffer.
    drain_lock: Mutex<Vec<EventFrame>>,
    submitted: AtomicU64,
    drained: AtomicU64,
    drains: AtomicU64,
    transitions: AtomicU64,
    coalesced: AtomicU64,
    backpressure_waits: AtomicU64,
}

impl EventPlane {
    /// Default submission-ring capacity (frames).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Builds a plane over a fresh ring of `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a power of two ≥ 2 (ring invariant).
    pub fn new(sack: &Arc<Sack>, capacity: usize, policy: BackpressurePolicy) -> Arc<EventPlane> {
        Arc::new(EventPlane {
            sack: Arc::downgrade(sack),
            ring: Ring::new(capacity),
            policy,
            hub: OnceLock::new(),
            drain_lock: Mutex::new(Vec::with_capacity(capacity)),
            submitted: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            backpressure_waits: AtomicU64::new(0),
        })
    }

    /// The configured ring-full policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Current ring occupancy (racy snapshot).
    pub fn depth(&self) -> usize {
        self.ring.len()
    }

    /// Frames accepted by `submit` since boot.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Frames consumed by drains since boot.
    pub fn drained_frames(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }

    /// Drain calls that consumed at least one frame.
    pub fn drain_batches(&self) -> u64 {
        self.drains.load(Ordering::Relaxed)
    }

    /// Coalesced transitions actually published.
    pub fn transitions_published(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Effective transitions elided by coalescing (for a batch with
    /// `matched` rule hits, `matched - 1` publishes were saved).
    pub fn frames_coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Frames discarded by the drop-oldest policy (exact).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Times a producer hit a full ring (either policy).
    pub fn backpressure_waits(&self) -> u64 {
        self.backpressure_waits.load(Ordering::Relaxed)
    }

    #[inline]
    fn trace<F: FnOnce() -> TraceEvent>(&self, build: F) {
        if let Some(hub) = self.hub.get() {
            if hub.enabled() {
                hub.emit(&build());
            }
            return;
        }
        // Tracing not cached yet: resolve through the module once it is
        // wired. Until then (pre-attach planes) this stays a no-op.
        let Some(sack) = self.sack.upgrade() else {
            return;
        };
        if let Some(tracing) = sack.tracing() {
            let hub = self.hub.get_or_init(|| Arc::clone(tracing.hub()));
            if hub.enabled() {
                hub.emit(&build());
            }
        }
    }

    /// Enqueues one frame, applying the backpressure policy on a full
    /// ring. Returns the number of older frames discarded to admit this
    /// one (always 0 under [`BackpressurePolicy::Block`]).
    pub fn submit(&self, frame: EventFrame) -> u64 {
        let discarded = match self.policy {
            BackpressurePolicy::DropOldest => {
                let discarded = self.ring.force_enqueue(frame);
                if discarded > 0 {
                    self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
                    self.trace(|| TraceEvent::SdsBackpressure {
                        policy: BackpressurePolicy::DropOldest.name(),
                        dropped_total: self.ring.dropped(),
                    });
                }
                discarded
            }
            BackpressurePolicy::Block => {
                let mut frame = frame;
                loop {
                    match self.ring.try_enqueue(frame) {
                        Ok(()) => break,
                        Err(RingFull(rejected)) => {
                            frame = rejected;
                            self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
                            self.trace(|| TraceEvent::SdsBackpressure {
                                policy: BackpressurePolicy::Block.name(),
                                dropped_total: self.ring.dropped(),
                            });
                            // Help-drain-then-retry: lossless and
                            // deadlock-free (the drain lock is the only
                            // lock, and we never hold it here).
                            let _ = self.drain(self.ring.capacity());
                        }
                    }
                }
                0
            }
        };
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.trace(|| TraceEvent::SdsEnqueue {
            depth: self.ring.len(),
        });
        discarded
    }

    /// Validates `name` against frame-shape rules and submits it.
    ///
    /// # Errors
    ///
    /// [`FrameError`] — the frame never enters the ring.
    pub fn submit_name(&self, name: &str, sensor: u16, t_ns: u64) -> Result<u64, FrameError> {
        Ok(self.submit(EventFrame::new(name, sensor, t_ns)?))
    }

    /// Enqueues a whole batch with a single ring-span claim — the fast
    /// path behind the SACKfs ring node, where one `write(2)` is one
    /// batch. When the ring lacks room for the full span, falls back to
    /// per-frame submission under the configured backpressure policy.
    /// Returns the number of older frames discarded (always 0 when the
    /// span claim succeeds or under [`BackpressurePolicy::Block`]).
    pub fn submit_batch(&self, frames: &[EventFrame]) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        if self.ring.try_enqueue_batch(frames).is_ok() {
            self.submitted
                .fetch_add(frames.len() as u64, Ordering::Relaxed);
            self.trace(|| TraceEvent::SdsEnqueue {
                depth: self.ring.len(),
            });
            return 0;
        }
        let mut discarded = 0;
        for frame in frames {
            discarded += self.submit(*frame);
        }
        discarded
    }

    /// Consumes up to `max` queued frames as one batch and delivers them
    /// coalesced: at most one SSM transition + epoch bump + cache
    /// invalidation for the whole batch. An empty ring is a no-op.
    ///
    /// # Errors
    ///
    /// [`SackError::Enhance`] if enhanced-mode profile patching fails
    /// while applying the batch's final state.
    pub fn drain(&self, max: usize) -> Result<DrainOutcome, SackError> {
        let mut frames = self.drain_lock.lock();
        frames.clear();
        // One head-span claim for the whole batch; the scratch buffer
        // lives in the lock, so a steady-state drain never allocates.
        self.ring.dequeue_batch(&mut frames, max);
        if frames.is_empty() {
            return Ok(DrainOutcome::default());
        }
        let Some(sack) = self.sack.upgrade() else {
            // Module gone (kernel torn down): the frames have nowhere to
            // go; report an empty drain rather than panicking mid-drop.
            return Ok(DrainOutcome::default());
        };
        let batch = frames.len();
        let outcome = sack.deliver_coalesced_frames(&frames, sack.now())?;
        self.drained.fetch_add(batch as u64, Ordering::Relaxed);
        self.drains.fetch_add(1, Ordering::Relaxed);
        if outcome.transitioned() {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.matched >= 2 {
            self.coalesced
                .fetch_add((outcome.matched - 1) as u64, Ordering::Relaxed);
            sack.trace_emit(|| TraceEvent::SdsCoalesce {
                event: outcome
                    .last_event
                    .map(|e| sack.active().ssm.space().event(e).name.clone())
                    .unwrap_or_default(),
                collapsed: outcome.matched,
            });
        }
        sack.trace_emit(|| TraceEvent::SdsDrain {
            batch,
            transitions: usize::from(outcome.transitioned()),
        });
        Ok(DrainOutcome {
            batch,
            matched: outcome.matched,
            transitioned: outcome.transitioned(),
        })
    }

    /// Drains everything currently queued (convenience for tests and the
    /// SACKfs write path: one `write(2)` = one batch = one coalesced
    /// transition).
    ///
    /// # Errors
    ///
    /// As for [`EventPlane::drain`].
    pub fn drain_all(&self) -> Result<DrainOutcome, SackError> {
        self.drain(usize::MAX)
    }
}

impl fmt::Debug for EventPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventPlane")
            .field("capacity", &self.capacity())
            .field("policy", &self.policy)
            .field("depth", &self.depth())
            .field("submitted", &self.submitted())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { NORMAL; }
        state_per { normal: NORMAL; }
        per_rules { NORMAL: allow subject=* /dev/car/** r; }
    "#;

    fn plane(capacity: usize, policy: BackpressurePolicy) -> (Arc<Sack>, Arc<EventPlane>) {
        let sack = Sack::independent(POLICY).unwrap();
        let plane = sack.install_event_plane(capacity, policy);
        (sack, plane)
    }

    #[test]
    fn frame_round_trips_name() {
        let f = EventFrame::new("crash", 7, 123).unwrap();
        assert_eq!(f.name(), "crash");
        assert_eq!(f.sensor, 7);
        assert_eq!(f.t_ns, 123);
        assert!(format!("{f:?}").contains("crash"));
    }

    #[test]
    fn frame_rejects_empty_and_oversized_names() {
        assert_eq!(EventFrame::new("", 0, 0).unwrap_err(), FrameError::Empty);
        let long = "x".repeat(MAX_EVENT_NAME + 1);
        assert_eq!(
            EventFrame::new(&long, 0, 0).unwrap_err(),
            FrameError::TooLong(MAX_EVENT_NAME + 1)
        );
        let exact = "y".repeat(MAX_EVENT_NAME);
        assert_eq!(EventFrame::new(&exact, 0, 0).unwrap().name(), exact);
    }

    #[test]
    fn batch_coalesces_to_one_transition_and_one_epoch_bump() {
        let (sack, plane) = plane(64, BackpressurePolicy::DropOldest);
        let epoch_before = sack.policy_epoch();
        // crash, rescue_done, crash: three effective transitions that
        // coalesce into one publish ending in emergency.
        for name in ["crash", "rescue_done", "crash"] {
            plane.submit_name(name, 0, 0).unwrap();
        }
        assert_eq!(plane.depth(), 3);
        let out = plane.drain_all().unwrap();
        assert_eq!(out.batch, 3);
        assert_eq!(out.matched, 3);
        assert!(out.transitioned);
        assert_eq!(sack.current_state_name(), "emergency");
        assert_eq!(sack.policy_epoch(), epoch_before + 1, "one bump per drain");
        assert_eq!(sack.active().ssm.taken_count(), 1);
        assert_eq!(plane.transitions_published(), 1);
        assert_eq!(plane.frames_coalesced(), 2);
        assert_eq!(plane.drained_frames(), 3);
        assert_eq!(plane.drain_batches(), 1);
        // Sync-path stats see every frame.
        assert_eq!(sack.stats().events_received.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn drop_oldest_discards_exactly_and_counts() {
        let (sack, plane) = plane(4, BackpressurePolicy::DropOldest);
        // 6 frames into a 4-slot ring: the 2 oldest go.
        for i in 0..6 {
            let name = if i % 2 == 0 { "crash" } else { "rescue_done" };
            plane.submit_name(name, i as u16, 0).unwrap();
        }
        assert_eq!(plane.dropped(), 2);
        assert_eq!(plane.depth(), 4);
        assert!(plane.backpressure_waits() >= 1);
        let out = plane.drain_all().unwrap();
        assert_eq!(out.batch, 4);
        assert_eq!(plane.submitted(), 6);
        assert_eq!(plane.drained_frames() + plane.dropped(), 6);
        drop(sack);
    }

    #[test]
    fn block_policy_is_lossless_via_help_drain() {
        let (sack, plane) = plane(2, BackpressurePolicy::Block);
        for _ in 0..5 {
            plane.submit_name("crash", 0, 0).unwrap();
        }
        // Submissions past capacity forced drains; nothing was lost.
        assert_eq!(plane.dropped(), 0);
        assert!(plane.backpressure_waits() >= 1);
        plane.drain_all().unwrap();
        assert_eq!(plane.drained_frames(), 5);
        assert_eq!(sack.current_state_name(), "emergency");
    }

    #[test]
    fn unknown_frame_is_counted_not_fatal() {
        let (sack, plane) = plane(8, BackpressurePolicy::DropOldest);
        // "meteor" passes frame-shape validation (this is the direct API;
        // membership is the SACKfs layer's job) but is unknown at drain.
        plane.submit_name("meteor", 0, 0).unwrap();
        plane.submit_name("crash", 0, 0).unwrap();
        let out = plane.drain_all().unwrap();
        assert_eq!(out.batch, 2);
        assert_eq!(out.matched, 1);
        assert_eq!(sack.current_state_name(), "emergency");
        assert_eq!(sack.stats().events_unknown.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_drain_is_a_no_op() {
        let (sack, plane) = plane(8, BackpressurePolicy::DropOldest);
        let out = plane.drain_all().unwrap();
        assert_eq!(out, DrainOutcome::default());
        assert_eq!(plane.drain_batches(), 0);
        assert_eq!(sack.policy_epoch(), 0);
    }

    #[test]
    fn install_event_plane_is_first_wins_idempotent() {
        let sack = Sack::independent(POLICY).unwrap();
        let a = sack.install_event_plane(8, BackpressurePolicy::Block);
        let b = sack.install_event_plane(1024, BackpressurePolicy::DropOldest);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.capacity(), 8);
        assert_eq!(b.policy(), BackpressurePolicy::Block);
        assert!(Arc::ptr_eq(sack.event_plane().unwrap(), &a));
    }

    #[test]
    fn mpsc_submit_then_drain_preserves_final_state() {
        let (sack, plane) = plane(1024, BackpressurePolicy::Block);
        std::thread::scope(|s| {
            for t in 0..4 {
                let plane = &plane;
                s.spawn(move || {
                    for i in 0..100 {
                        let name = if (t + i) % 2 == 0 {
                            "crash"
                        } else {
                            "rescue_done"
                        };
                        plane.submit_name(name, t as u16, i as u64).unwrap();
                    }
                });
            }
        });
        plane.drain_all().unwrap();
        assert_eq!(plane.drained_frames() + plane.dropped(), 400);
        // Whatever the interleaving, the machine landed in a valid state
        // with at most one publish per drain.
        assert!(["normal", "emergency"].contains(&sack.current_state_name().as_str()));
        assert!(plane.transitions_published() <= plane.drain_batches());
    }
}
