//! # sack-core — Situation-aware Access Control in the Kernel
//!
//! A full reproduction of SACK (Chen et al., DATE 2025) against the
//! simulated Linux substrate in `sack-kernel`:
//!
//! * **situation states** as a new kernel security context
//!   ([`situation`]);
//! * the **situation state machine** driven by situation events
//!   ([`ssm`], Algorithm 1);
//! * the four-interface **policy language** (`States`, `Permissions`,
//!   `State_Per`, `Per_Rules`) with parser and checking tools ([`policy`]);
//! * **SACKfs**, the securityfs transmission interface
//!   (`/sys/kernel/security/SACK/events`, [`sackfs`]);
//! * **independent SACK**: an LSM enforcing per-state MAC rules
//!   ([`sack`], [`rules`]);
//! * **SACK-enhanced AppArmor**: the adaptive policy enforcer that patches
//!   AppArmor profiles on situation transitions ([`enhance`]).
//!
//! ## Example: door control only in emergencies
//!
//! ```
//! use std::sync::Arc;
//! use sack_core::Sack;
//! use sack_kernel::{KernelBuilder, Credentials, SecurityModule, Capability};
//! use sack_kernel::file::OpenFlags;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sack = Sack::independent(r#"
//!     states { normal = 0; emergency = 1; }
//!     events { crash; }
//!     transitions { normal -crash-> emergency; }
//!     initial normal;
//!     permissions { CONTROL_CAR_DOORS; }
//!     state_per { emergency: CONTROL_CAR_DOORS; }
//!     per_rules { CONTROL_CAR_DOORS: allow subject=* /dev/car/** wi; }
//! "#)?;
//! let kernel = KernelBuilder::new()
//!     .security_module(sack.clone() as Arc<dyn SecurityModule>)
//!     .boot();
//! sack.attach(&kernel)?;
//!
//! kernel.vfs().mkdir_all(&"/dev/car".parse()?)?;
//! kernel.vfs().create_file(&"/dev/car/door0".parse()?,
//!     sack_kernel::Mode(0o666), sack_kernel::Uid::ROOT, sack_kernel::Gid(0))?;
//!
//! // An unprivileged service holding only CAP_MAC_ADMIN (root would hold
//! // CAP_MAC_OVERRIDE, which rightly bypasses SACK).
//! let daemon = kernel.spawn(Credentials::user(500, 500)
//!     .with_capability(Capability::MacAdmin));
//! // Normal situation: door writes are denied in the kernel.
//! assert!(daemon.open("/dev/car/door0", OpenFlags::write_only()).is_err());
//! // The SDS reports a crash through SACKfs...
//! let fd = daemon.open("/sys/kernel/security/SACK/events", OpenFlags::write_only())?;
//! daemon.write(fd, b"crash\n")?;
//! // ...and the door can now be opened for rescue.
//! assert!(daemon.open("/dev/car/door0", OpenFlags::write_only()).is_ok());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod cache;
pub mod enhance;
pub mod eventplane;
pub mod policy;
pub mod rules;
pub mod sack;
pub mod sackfs;
pub mod simulate;
pub mod situation;
pub mod ssm;
pub mod statedfa;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use audit::{AuditLog, AuditRecord};
pub use cache::{
    current_cpu, current_cpu_in, CachedOutcome, DecisionCache, DecisionCacheIn, DecisionKey,
    PerCpuCache, PerCpuCacheIn, CPU_INSTANCES,
};
pub use enhance::{AppArmorEnhancer, EnhanceError, SACK_RULE_ORIGIN};
pub use eventplane::{
    BackpressurePolicy, DrainOutcome, EventFrame, EventPlane, FrameError, MAX_EVENT_NAME,
};
pub use policy::{
    CompiledPolicy, IssueKind, IssueSeverity, PolicyIssue, RuleProvenance, SackPolicy,
};
pub use rules::{MacRule, Permission, PermissionId, RuleEffect, StateRuleSet, SubjectMatch};
pub use sack::{ActivePolicy, EnforcementMode, Sack, SackError, SackStats};
pub use simulate::{AccessQuery, PolicySimulator, Step, StepResult};
pub use situation::{EventId, SituationEvent, SituationState, StateId, StateSpace};
pub use ssm::{
    CoalescedOutcome, Ssm, TransitionListener, TransitionOutcome, TransitionRecord, TransitionRule,
};
pub use statedfa::{StateDecision, StateDfa};
pub use stats::{HistogramSnapshot, LatencyHistogram, ShardedCounter};
pub use telemetry::{decode_hist_key, hist_key, TelemetrySnapshot, TELEMETRY_HIST_KEYS};
pub use trace::{CacheFlag, FlightEntry, FlightRecorder, SackTracing};
