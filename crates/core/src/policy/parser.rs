//! Parser for the SACK policy language.
//!
//! ```text
//! states      { normal = 0; emergency = 1; }
//! events      { crash; rescue_done; }
//! transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
//! initial normal;
//! permissions { NORMAL; CONTROL_CAR_DOORS; }
//! state_per   { emergency: NORMAL, CONTROL_CAR_DOORS; }
//! per_rules   {
//!   CONTROL_CAR_DOORS: allow subject=/usr/bin/rescue* /dev/car/** wi;
//! }
//! ```

use std::fmt;

use crate::rules::RuleEffect;

use super::{RuleSpec, SackPolicy, SubjectSpec};

/// Policy syntax error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// Line the error occurred on.
    pub line: usize,
    message: String,
}

impl ParsePolicyError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParsePolicyError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePolicyError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    OpenBrace,
    CloseBrace,
    Semi,
    Comma,
    Colon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::OpenBrace => f.write_str("`{`"),
            Tok::CloseBrace => f.write_str("`}`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
        }
    }
}

fn tokenize(text: &str) -> Vec<(usize, Tok)> {
    let mut tokens = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(idx) => &raw[..idx],
            None => raw,
        };
        let n = lineno + 1;
        let mut word = String::new();
        // Depth of glob alternation braces (`/dev/{door,window}*`): while
        // positive, `{`/`}`/`,` belong to the pattern. A `{` opens an
        // alternation exactly when it appears mid-word; section braces are
        // preceded by whitespace.
        let mut glob_depth = 0usize;
        let flush = |word: &mut String, tokens: &mut Vec<(usize, Tok)>| {
            if !word.is_empty() {
                // A trailing colon (`NORMAL:` or a lone `:`) splits off, but
                // not inside path-like words (`subject=profile:rescue` has
                // no trailing colon, paths keep any colon they contain).
                if word.ends_with(':') && !word.contains('/') {
                    let w = word[..word.len() - 1].to_string();
                    if !w.is_empty() {
                        tokens.push((n, Tok::Word(w)));
                    }
                    tokens.push((n, Tok::Colon));
                } else {
                    tokens.push((n, Tok::Word(std::mem::take(word))));
                }
                word.clear();
            }
        };
        for ch in line.chars() {
            match ch {
                '{' if !word.is_empty() => {
                    glob_depth += 1;
                    word.push('{');
                }
                '}' if glob_depth > 0 => {
                    glob_depth -= 1;
                    word.push('}');
                }
                ',' if glob_depth > 0 => word.push(','),
                '{' => {
                    flush(&mut word, &mut tokens);
                    glob_depth = 0;
                    tokens.push((n, Tok::OpenBrace));
                }
                '}' => {
                    flush(&mut word, &mut tokens);
                    tokens.push((n, Tok::CloseBrace));
                }
                ';' => {
                    flush(&mut word, &mut tokens);
                    glob_depth = 0;
                    tokens.push((n, Tok::Semi));
                }
                ',' => {
                    flush(&mut word, &mut tokens);
                    tokens.push((n, Tok::Comma));
                }
                c if c.is_whitespace() => {
                    flush(&mut word, &mut tokens);
                    glob_depth = 0;
                }
                c => word.push(c),
            }
        }
        flush(&mut word, &mut tokens);
    }
    tokens
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<(usize, Tok)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |(l, _)| *l)
    }

    fn expect(&mut self, want: &Tok, context: &str) -> Result<usize, ParsePolicyError> {
        match self.bump() {
            Some((line, t)) if t == *want => Ok(line),
            Some((line, t)) => Err(ParsePolicyError::new(
                line,
                format!("expected {want} {context}, found {t}"),
            )),
            None => Err(ParsePolicyError::new(
                self.here(),
                format!("expected {want} {context}, found end of input"),
            )),
        }
    }

    fn expect_word(&mut self, context: &str) -> Result<(usize, String), ParsePolicyError> {
        match self.bump() {
            Some((line, Tok::Word(w))) => Ok((line, w)),
            Some((line, t)) => Err(ParsePolicyError::new(
                line,
                format!("expected {context}, found {t}"),
            )),
            None => Err(ParsePolicyError::new(
                self.here(),
                format!("expected {context}, found end of input"),
            )),
        }
    }

    fn parse(&mut self) -> Result<SackPolicy, ParsePolicyError> {
        let mut policy = SackPolicy::default();
        while let Some((line, tok)) = self.bump() {
            let Tok::Word(section) = tok else {
                return Err(ParsePolicyError::new(
                    line,
                    format!("expected section keyword, found {tok}"),
                ));
            };
            match section.as_str() {
                "states" => self.parse_states(&mut policy)?,
                "events" => self.parse_events(&mut policy)?,
                "transitions" => self.parse_transitions(&mut policy)?,
                "initial" => {
                    let (_, state) = self.expect_word("initial state name")?;
                    if policy.initial.is_some() {
                        return Err(ParsePolicyError::new(line, "duplicate `initial`"));
                    }
                    policy.initial = Some(state);
                    self.expect(&Tok::Semi, "after `initial`")?;
                }
                "permissions" => self.parse_permissions(&mut policy)?,
                "state_per" => self.parse_state_per(&mut policy)?,
                "per_rules" => self.parse_per_rules(&mut policy)?,
                other => {
                    return Err(ParsePolicyError::new(
                        line,
                        format!("unknown section `{other}`"),
                    ))
                }
            }
        }
        Ok(policy)
    }

    fn parse_block<F>(&mut self, mut entry: F) -> Result<(), ParsePolicyError>
    where
        F: FnMut(&mut Self) -> Result<(), ParsePolicyError>,
    {
        self.expect(&Tok::OpenBrace, "to open section")?;
        loop {
            match self.peek() {
                Some((_, Tok::CloseBrace)) => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => entry(self)?,
                None => {
                    return Err(ParsePolicyError::new(
                        self.here(),
                        "unterminated section (missing `}`)",
                    ))
                }
            }
        }
    }

    fn parse_states(&mut self, policy: &mut SackPolicy) -> Result<(), ParsePolicyError> {
        self.parse_block(|p| {
            let (line, word) = p.expect_word("state name")?;
            // Accept `name = N ;`, `name=N ;` and `name N ;`.
            let (name, encoding) = if let Some((n, e)) = word.split_once('=') {
                (n.to_string(), e.to_string())
            } else {
                let (_, next) = p.expect_word("`=` or encoding")?;
                if next == "=" {
                    let (_, enc) = p.expect_word("state encoding")?;
                    (word, enc)
                } else if let Some(enc) = next.strip_prefix('=') {
                    (word, enc.to_string())
                } else {
                    (word, next)
                }
            };
            let encoding: u32 = encoding.parse().map_err(|_| {
                ParsePolicyError::new(line, format!("invalid state encoding `{encoding}`"))
            })?;
            policy.states.push((name, encoding));
            p.expect(&Tok::Semi, "after state declaration")?;
            Ok(())
        })
    }

    fn parse_events(&mut self, policy: &mut SackPolicy) -> Result<(), ParsePolicyError> {
        self.parse_block(|p| {
            let (_, name) = p.expect_word("event name")?;
            policy.events.push(name);
            p.expect(&Tok::Semi, "after event declaration")?;
            Ok(())
        })
    }

    fn parse_transitions(&mut self, policy: &mut SackPolicy) -> Result<(), ParsePolicyError> {
        self.parse_block(|p| {
            let (_, from) = p.expect_word("source state")?;
            let (eline, arrow) = p.expect_word("`-event->`")?;
            let event = arrow
                .strip_prefix('-')
                .and_then(|s| s.strip_suffix("->"))
                .filter(|s| !s.is_empty())
                .ok_or_else(|| {
                    ParsePolicyError::new(
                        eline,
                        format!("expected `-event->` arrow, found `{arrow}`"),
                    )
                })?;
            let (_, to) = p.expect_word("target state")?;
            policy.transitions.push((from, event.to_string(), to));
            p.expect(&Tok::Semi, "after transition")?;
            Ok(())
        })
    }

    fn parse_permissions(&mut self, policy: &mut SackPolicy) -> Result<(), ParsePolicyError> {
        self.parse_block(|p| {
            let (_, name) = p.expect_word("permission name")?;
            policy.permissions.push(name);
            p.expect(&Tok::Semi, "after permission declaration")?;
            Ok(())
        })
    }

    fn parse_state_per(&mut self, policy: &mut SackPolicy) -> Result<(), ParsePolicyError> {
        self.parse_block(|p| {
            let (_, state) = p.expect_word("state name")?;
            p.expect(&Tok::Colon, "after state name")?;
            let mut perms = Vec::new();
            loop {
                let (_, perm) = p.expect_word("permission name")?;
                perms.push(perm);
                match p.bump() {
                    Some((_, Tok::Comma)) => continue,
                    Some((_, Tok::Semi)) => break,
                    Some((line, t)) => {
                        return Err(ParsePolicyError::new(
                            line,
                            format!("expected `,` or `;` in state_per entry, found {t}"),
                        ))
                    }
                    None => {
                        return Err(ParsePolicyError::new(
                            p.here(),
                            "unterminated state_per entry",
                        ))
                    }
                }
            }
            policy.state_per.push((state, perms));
            Ok(())
        })
    }

    fn parse_per_rules(&mut self, policy: &mut SackPolicy) -> Result<(), ParsePolicyError> {
        self.expect(&Tok::OpenBrace, "to open section")?;
        loop {
            match self.peek() {
                Some((_, Tok::CloseBrace)) => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    let (_, perm) = self.expect_word("permission name")?;
                    self.expect(&Tok::Colon, "after permission name")?;
                    let mut rules = Vec::new();
                    // Rules until the next `PERM :` or `}`.
                    loop {
                        match self.peek() {
                            Some((_, Tok::CloseBrace)) => break,
                            Some((_, Tok::Word(w))) if w != "allow" && w != "deny" => {
                                break; // next permission header
                            }
                            Some(_) => rules.push(self.parse_rule()?),
                            None => {
                                return Err(ParsePolicyError::new(
                                    self.here(),
                                    "unterminated per_rules section",
                                ))
                            }
                        }
                    }
                    policy.per_rules.push((perm, rules));
                }
                None => {
                    return Err(ParsePolicyError::new(
                        self.here(),
                        "unterminated per_rules section",
                    ))
                }
            }
        }
    }

    fn parse_rule(&mut self) -> Result<RuleSpec, ParsePolicyError> {
        let (line, effect_word) = self.expect_word("`allow` or `deny`")?;
        let effect = match effect_word.as_str() {
            "allow" => RuleEffect::Allow,
            "deny" => RuleEffect::Deny,
            other => {
                return Err(ParsePolicyError::new(
                    line,
                    format!("expected `allow` or `deny`, found `{other}`"),
                ))
            }
        };
        let (sline, subject_word) = self.expect_word("subject selector")?;
        let subject =
            parse_subject(&subject_word).map_err(|msg| ParsePolicyError::new(sline, msg))?;
        let (oline, object) = self.expect_word("object path pattern")?;
        if !object.starts_with('/') {
            return Err(ParsePolicyError::new(
                oline,
                format!("object pattern must be absolute, found `{object}`"),
            ));
        }
        let (_, perms) = self.expect_word("permission letters")?;
        self.expect(&Tok::Semi, "after rule")?;
        Ok(RuleSpec {
            effect,
            subject,
            object,
            perms,
            line,
        })
    }
}

fn parse_subject(word: &str) -> Result<SubjectSpec, String> {
    if let Some(value) = word.strip_prefix("subject=") {
        if value == "*" {
            Ok(SubjectSpec::Any)
        } else if let Some(profile) = value.strip_prefix("profile:") {
            if profile.is_empty() {
                Err("empty profile name in subject".to_string())
            } else {
                Ok(SubjectSpec::Profile(profile.to_string()))
            }
        } else if value.starts_with('/') {
            Ok(SubjectSpec::Exe(value.to_string()))
        } else {
            Err(format!(
                "subject must be `*`, an absolute path pattern, or `profile:<name>`, found `{value}`"
            ))
        }
    } else if let Some(uid) = word.strip_prefix("uid=") {
        uid.parse::<u32>()
            .map(SubjectSpec::Uid)
            .map_err(|_| format!("invalid uid `{uid}`"))
    } else {
        Err(format!(
            "expected `subject=...` or `uid=...`, found `{word}`"
        ))
    }
}

/// Parses SACK policy text into an AST.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse_policy(text: &str) -> Result<SackPolicy, ParsePolicyError> {
    Parser {
        tokens: tokenize(text),
        pos: 0,
    }
    .parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let policy = parse_policy(
            r#"
            states { normal = 0; emergency = 1; }
            events { crash; rescue_done; }
            transitions { normal -crash-> emergency; }
            initial normal;
            permissions { NORMAL; CONTROL_CAR_DOORS; }
            state_per { emergency: NORMAL, CONTROL_CAR_DOORS; }
            per_rules {
              NORMAL: allow subject=* /dev/car/** r;
              CONTROL_CAR_DOORS:
                allow subject=/usr/bin/rescue* /dev/car/** wi;
                deny uid=1001 /dev/car/door9 w;
            }
            "#,
        )
        .unwrap();
        assert_eq!(
            policy.states,
            vec![("normal".into(), 0), ("emergency".into(), 1)]
        );
        assert_eq!(policy.events.len(), 2);
        assert_eq!(
            policy.transitions,
            vec![("normal".into(), "crash".into(), "emergency".into())]
        );
        assert_eq!(policy.initial.as_deref(), Some("normal"));
        assert_eq!(policy.permissions.len(), 2);
        assert_eq!(policy.state_per[0].1.len(), 2);
        assert_eq!(policy.per_rules.len(), 2);
        assert_eq!(policy.per_rules[1].1.len(), 2);
        assert_eq!(policy.per_rules[1].1[1].effect, RuleEffect::Deny);
        assert_eq!(policy.per_rules[1].1[1].subject, SubjectSpec::Uid(1001));
    }

    #[test]
    fn state_encoding_forms() {
        let policy = parse_policy("states { a=0; b = 1; c 2; }").unwrap();
        assert_eq!(
            policy.states,
            vec![("a".into(), 0), ("b".into(), 1), ("c".into(), 2)]
        );
    }

    #[test]
    fn subject_forms() {
        assert_eq!(parse_subject("subject=*").unwrap(), SubjectSpec::Any);
        assert_eq!(
            parse_subject("subject=/usr/bin/x").unwrap(),
            SubjectSpec::Exe("/usr/bin/x".into())
        );
        assert_eq!(parse_subject("uid=0").unwrap(), SubjectSpec::Uid(0));
        assert_eq!(
            parse_subject("subject=profile:rescue").unwrap(),
            SubjectSpec::Profile("rescue".into())
        );
        assert!(parse_subject("subject=relative/path").is_err());
        assert!(parse_subject("uid=abc").is_err());
        assert!(parse_subject("who=me").is_err());
        assert!(parse_subject("subject=profile:").is_err());
    }

    #[test]
    fn bad_arrow_is_error() {
        let err = parse_policy("states { a=0; } transitions { a crash a; }").unwrap_err();
        assert!(err.to_string().contains("arrow"), "{err}");
    }

    #[test]
    fn relative_object_is_error() {
        let err = parse_policy("per_rules { P: allow subject=* dev/x r; }").unwrap_err();
        assert!(err.to_string().contains("absolute"));
    }

    #[test]
    fn unknown_section_is_error() {
        let err = parse_policy("bogus { }").unwrap_err();
        assert!(err.to_string().contains("unknown section"));
    }

    #[test]
    fn duplicate_initial_is_error() {
        let err = parse_policy("states { a=0; } initial a; initial a;").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn line_numbers_in_errors() {
        let err = parse_policy("states {\n a=0;\n bad encoding here\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn comments_and_empty_input() {
        assert_eq!(parse_policy("# nothing\n").unwrap(), SackPolicy::default());
        let policy = parse_policy("states { a=0; # trailing\n }").unwrap();
        assert_eq!(policy.states.len(), 1);
    }

    #[test]
    fn per_rules_multiple_permission_groups() {
        let policy = parse_policy(
            r#"per_rules {
                A: allow subject=* /a r;
                B: allow subject=* /b w;
                   allow subject=* /b2 w;
            }"#,
        )
        .unwrap();
        assert_eq!(policy.per_rules[0].1.len(), 1);
        assert_eq!(policy.per_rules[1].1.len(), 2);
    }
}
