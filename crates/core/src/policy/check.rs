//! Policy validation — SACK's "policy-checking tools \[that\] handle errors
//! and conflicts" (paper §III-D).
//!
//! The checker runs before compilation (and therefore at every policy-load
//! site, including [`crate::simulate::PolicySimulator`] and
//! [`crate::Sack::reload_policy`]). *Errors* abort the load (undefined
//! references, duplicates, malformed rules, conflicting transitions);
//! *warnings* are surfaced but tolerated (unreachable or absorbing states,
//! events that can never fire, unused permissions, shadowed rules,
//! allow/deny conflicts on overlapping matches).
//!
//! Every issue carries a machine-readable [`IssueKind`] and, for rule-level
//! findings, a [`RuleProvenance`] naming the permission, source line, and
//! rule text. The `sack-analyze` crate layers cross-policy checks (AppArmor
//! and TE stacking, privilege widening) on top of these diagnostics.

use std::collections::{HashMap, HashSet};
use std::fmt;

use sack_apparmor::glob::Glob;
use sack_apparmor::profile::FilePerms;
use sack_apparmor::DfaBuilder;

use crate::rules::RuleEffect;

use super::{RuleSpec, SackPolicy, SubjectSpec};

/// Severity of a policy issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueSeverity {
    /// Fatal: the policy will not load.
    Error,
    /// Suspicious but loadable.
    Warning,
}

impl fmt::Display for IssueSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueSeverity::Error => f.write_str("error"),
            IssueSeverity::Warning => f.write_str("warning"),
        }
    }
}

/// Machine-readable classification of a policy issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IssueKind {
    /// Two states share a name.
    DuplicateState,
    /// Two states share an integer encoding.
    SharedEncoding,
    /// The policy declares no states at all.
    NoStates,
    /// Two events share a name.
    DuplicateEvent,
    /// A transition, `state_per`, or rule references an unknown name.
    UndefinedReference,
    /// Two transitions from the same state on the same event disagree.
    ConflictingTransitions,
    /// A transition is written twice verbatim.
    DuplicateTransition,
    /// `initial` is missing or names an unknown state.
    BadInitial,
    /// Two permissions share a name.
    DuplicatePermission,
    /// A state appears twice in `state_per`.
    DuplicateStatePer,
    /// A rule has a malformed glob, empty or unknown permission letters.
    InvalidRule,
    /// Exact allow/deny contradiction on the same subject/object/perms.
    ContradictoryRules,
    /// A permission is never granted by any state.
    UnmappedPermission,
    /// A permission has no MAC rules.
    UnruledPermission,
    /// A state cannot be reached from the initial state.
    UnreachableState,
    /// A reachable state has no outgoing transitions (absorbing).
    DeadState,
    /// An event is unused, or used only from unreachable states.
    NeverFiringEvent,
    /// A rule is subsumed by an earlier rule with the same effect.
    ShadowedRule,
    /// An allow and a deny rule overlap without being identical.
    AllowDenyOverlap,
}

impl IssueKind {
    /// Stable kebab-case identifier, used in JSON reports.
    pub fn id(&self) -> &'static str {
        match self {
            IssueKind::DuplicateState => "duplicate-state",
            IssueKind::SharedEncoding => "shared-encoding",
            IssueKind::NoStates => "no-states",
            IssueKind::DuplicateEvent => "duplicate-event",
            IssueKind::UndefinedReference => "undefined-reference",
            IssueKind::ConflictingTransitions => "conflicting-transitions",
            IssueKind::DuplicateTransition => "duplicate-transition",
            IssueKind::BadInitial => "bad-initial",
            IssueKind::DuplicatePermission => "duplicate-permission",
            IssueKind::DuplicateStatePer => "duplicate-state-per",
            IssueKind::InvalidRule => "invalid-rule",
            IssueKind::ContradictoryRules => "contradictory-rules",
            IssueKind::UnmappedPermission => "unmapped-permission",
            IssueKind::UnruledPermission => "unruled-permission",
            IssueKind::UnreachableState => "unreachable-state",
            IssueKind::DeadState => "dead-state",
            IssueKind::NeverFiringEvent => "never-firing-event",
            IssueKind::ShadowedRule => "shadowed-rule",
            IssueKind::AllowDenyOverlap => "allow-deny-overlap",
        }
    }
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Where a rule-level finding came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleProvenance {
    /// The permission block the rule belongs to.
    pub permission: String,
    /// Source line of the rule in the policy text.
    pub line: usize,
    /// The rule, re-rendered in canonical policy syntax.
    pub rule: String,
}

/// One finding from the policy checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyIssue {
    /// Error or warning.
    pub severity: IssueSeverity,
    /// Machine-readable classification.
    pub kind: IssueKind,
    /// Human-readable description.
    pub message: String,
    /// For rule-level findings: the offending rule.
    pub provenance: Option<RuleProvenance>,
}

impl PolicyIssue {
    fn error(kind: IssueKind, message: impl Into<String>) -> Self {
        PolicyIssue {
            severity: IssueSeverity::Error,
            kind,
            message: message.into(),
            provenance: None,
        }
    }

    fn warning(kind: IssueKind, message: impl Into<String>) -> Self {
        PolicyIssue {
            severity: IssueSeverity::Warning,
            kind,
            message: message.into(),
            provenance: None,
        }
    }

    fn for_rule(mut self, perm: &str, spec: &RuleSpec) -> Self {
        self.provenance = Some(RuleProvenance {
            permission: perm.to_string(),
            line: spec.line,
            rule: render_rule(spec),
        });
        self
    }
}

impl fmt::Display for PolicyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

/// Renders a rule back to canonical policy syntax (for provenance and
/// analyzer diagnostics).
pub fn render_rule(spec: &RuleSpec) -> String {
    let effect = match spec.effect {
        RuleEffect::Allow => "allow",
        RuleEffect::Deny => "deny",
    };
    format!("{effect} {} {} {}", spec.subject, spec.object, spec.perms)
}

fn check_rule(perm: &str, spec: &RuleSpec, issues: &mut Vec<PolicyIssue>) {
    if let Err(e) = Glob::compile(&spec.object) {
        issues.push(
            PolicyIssue::error(
                IssueKind::InvalidRule,
                format!("rule for `{perm}` (line {}): {e}", spec.line),
            )
            .for_rule(perm, spec),
        );
    }
    if let SubjectSpec::Exe(glob) = &spec.subject {
        if let Err(e) = Glob::compile(glob) {
            issues.push(
                PolicyIssue::error(
                    IssueKind::InvalidRule,
                    format!("rule for `{perm}` (line {}): subject {e}", spec.line),
                )
                .for_rule(perm, spec),
            );
        }
    }
    match FilePerms::parse(&spec.perms) {
        Ok(p) if p.is_empty() => issues.push(
            PolicyIssue::error(
                IssueKind::InvalidRule,
                format!(
                    "rule for `{perm}` (line {}): empty permission set",
                    spec.line
                ),
            )
            .for_rule(perm, spec),
        ),
        Ok(_) => {}
        Err(c) => issues.push(
            PolicyIssue::error(
                IssueKind::InvalidRule,
                format!(
                    "rule for `{perm}` (line {}): unknown permission letter `{c}`",
                    spec.line
                ),
            )
            .for_rule(perm, spec),
        ),
    }
}

/// True if every subject matched by `b` is also matched by `a`.
fn subject_covers(a: &SubjectSpec, b: &SubjectSpec) -> bool {
    match (a, b) {
        (SubjectSpec::Any, _) => true,
        (SubjectSpec::Exe(ga), SubjectSpec::Exe(gb)) => {
            match (Glob::compile(ga), Glob::compile(gb)) {
                (Ok(ga), Ok(gb)) => ga.covers(&gb),
                _ => false,
            }
        }
        (SubjectSpec::Uid(a), SubjectSpec::Uid(b)) => a == b,
        (SubjectSpec::Profile(a), SubjectSpec::Profile(b)) => a == b,
        _ => false,
    }
}

/// True if some subject can be matched by both selectors.
///
/// Selectors of different kinds (exe glob vs uid vs profile) always
/// overlap: a single task has an executable, a uid, and possibly a
/// profile attachment at the same time.
fn subjects_overlap(a: &SubjectSpec, b: &SubjectSpec) -> bool {
    match (a, b) {
        (SubjectSpec::Any, _) | (_, SubjectSpec::Any) => true,
        (SubjectSpec::Exe(ga), SubjectSpec::Exe(gb)) => {
            match (Glob::compile(ga), Glob::compile(gb)) {
                (Ok(ga), Ok(gb)) => ga.overlaps(&gb),
                _ => false,
            }
        }
        (SubjectSpec::Uid(a), SubjectSpec::Uid(b)) => a == b,
        (SubjectSpec::Profile(a), SubjectSpec::Profile(b)) => a == b,
        _ => true,
    }
}

/// Validates a policy AST, returning every detected issue.
pub fn check_policy(policy: &SackPolicy) -> Vec<PolicyIssue> {
    let mut issues = Vec::new();

    // --- States: duplicates in names and encodings -----------------------
    let mut state_names = HashSet::new();
    let mut encodings = HashMap::new();
    for (name, enc) in &policy.states {
        if !state_names.insert(name.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::DuplicateState,
                format!("duplicate state `{name}`"),
            ));
        }
        if let Some(prev) = encodings.insert(*enc, name.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::SharedEncoding,
                format!("states `{prev}` and `{name}` share encoding {enc}"),
            ));
        }
    }
    if policy.states.is_empty() {
        issues.push(PolicyIssue::error(
            IssueKind::NoStates,
            "policy declares no situation states",
        ));
    }

    // --- Events -----------------------------------------------------------
    let mut event_names = HashSet::new();
    for name in &policy.events {
        if !event_names.insert(name.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::DuplicateEvent,
                format!("duplicate event `{name}`"),
            ));
        }
    }

    // --- Transitions: refs + determinism -----------------------------------
    let mut seen_transitions: HashMap<(&str, &str), &str> = HashMap::new();
    for (from, event, to) in &policy.transitions {
        for state in [from, to] {
            if !state_names.contains(state.as_str()) {
                issues.push(PolicyIssue::error(
                    IssueKind::UndefinedReference,
                    format!("transition references undefined state `{state}`"),
                ));
            }
        }
        if !event_names.contains(event.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::UndefinedReference,
                format!("transition references undefined event `{event}`"),
            ));
        }
        match seen_transitions.insert((from.as_str(), event.as_str()), to.as_str()) {
            Some(prev) if prev != to.as_str() => {
                issues.push(PolicyIssue::error(
                    IssueKind::ConflictingTransitions,
                    format!(
                        "conflicting transitions from `{from}` on `{event}`: `-> {prev}` and `-> {to}`"
                    ),
                ));
            }
            Some(_) => issues.push(PolicyIssue::warning(
                IssueKind::DuplicateTransition,
                format!("duplicate transition `{from} -{event}-> {to}`"),
            )),
            None => {}
        }
    }

    // --- Initial state ------------------------------------------------------
    match &policy.initial {
        None => issues.push(PolicyIssue::error(
            IssueKind::BadInitial,
            "missing `initial <state>;`",
        )),
        Some(s) if !state_names.contains(s.as_str()) => {
            issues.push(PolicyIssue::error(
                IssueKind::BadInitial,
                format!("initial state `{s}` is undefined"),
            ));
        }
        Some(_) => {}
    }

    // --- Permissions ---------------------------------------------------------
    let mut perm_names = HashSet::new();
    for name in &policy.permissions {
        if !perm_names.insert(name.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::DuplicatePermission,
                format!("duplicate permission `{name}`"),
            ));
        }
    }

    // --- State_Per -------------------------------------------------------------
    let mut mapped_perms: HashSet<&str> = HashSet::new();
    let mut state_per_states: HashSet<&str> = HashSet::new();
    for (state, perms) in &policy.state_per {
        // `*` grants the listed permissions in every state.
        if state != "*" && !state_names.contains(state.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::UndefinedReference,
                format!("state_per references undefined state `{state}`"),
            ));
        }
        if !state_per_states.insert(state.as_str()) {
            issues.push(PolicyIssue::warning(
                IssueKind::DuplicateStatePer,
                format!("state `{state}` appears twice in state_per (entries are merged)"),
            ));
        }
        for perm in perms {
            if !perm_names.contains(perm.as_str()) {
                issues.push(PolicyIssue::error(
                    IssueKind::UndefinedReference,
                    format!("state_per references undefined permission `{perm}`"),
                ));
            }
            mapped_perms.insert(perm.as_str());
        }
    }

    // --- Per_Rules -----------------------------------------------------------
    let mut ruled_perms: HashSet<&str> = HashSet::new();
    for (perm, rules) in &policy.per_rules {
        if !perm_names.contains(perm.as_str()) {
            issues.push(PolicyIssue::error(
                IssueKind::UndefinedReference,
                format!("per_rules references undefined permission `{perm}`"),
            ));
        }
        ruled_perms.insert(perm.as_str());
        for spec in rules {
            check_rule(perm, spec, &mut issues);
        }
        // Exact allow/deny contradiction inside one permission. Grouped by
        // the (subject, object, perms) triple so the pass stays linear in
        // the rule count; one warning fires per contradicting pair, on the
        // later rule, exactly as the pairwise scan would.
        let mut seen: HashMap<(&SubjectSpec, &str, &str), [usize; 2]> = HashMap::new();
        for spec in rules {
            let counts = seen
                .entry((&spec.subject, spec.object.as_str(), spec.perms.as_str()))
                .or_default();
            let (own, opposite) = match spec.effect {
                RuleEffect::Allow => (0, counts[1]),
                RuleEffect::Deny => (1, counts[0]),
            };
            for _ in 0..opposite {
                issues.push(
                    PolicyIssue::warning(
                        IssueKind::ContradictoryRules,
                        format!(
                            "permission `{perm}`: contradictory allow/deny for `{}` `{}` (deny wins)",
                            spec.subject, spec.object
                        ),
                    )
                    .for_rule(perm, spec),
                );
            }
            counts[own] += 1;
        }
    }

    // --- Cross-interface warnings ----------------------------------------------
    for name in &policy.permissions {
        if !mapped_perms.contains(name.as_str()) {
            issues.push(PolicyIssue::warning(
                IssueKind::UnmappedPermission,
                format!("permission `{name}` is never granted by any state"),
            ));
        }
        if !ruled_perms.contains(name.as_str()) {
            issues.push(PolicyIssue::warning(
                IssueKind::UnruledPermission,
                format!("permission `{name}` has no MAC rules (grants nothing)"),
            ));
        }
    }

    // --- Deep lints (only when the policy is well-formed so far) ----------------
    if issues.iter().all(|i| i.severity != IssueSeverity::Error) {
        lint_state_machine(policy, &mut issues);
        lint_rules(policy, &mut issues);
    }

    issues
}

/// States reachable from the initial state via declared transitions.
fn reachable_states(policy: &SackPolicy) -> HashSet<&str> {
    let mut seen: HashSet<&str> = HashSet::new();
    let Some(initial) = &policy.initial else {
        return seen;
    };
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (from, _, to) in &policy.transitions {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut stack = vec![initial.as_str()];
    seen.insert(initial.as_str());
    while let Some(s) = stack.pop() {
        for next in adj.get(s).into_iter().flatten() {
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    seen
}

/// SSM reachability lints: unreachable states, absorbing (dead) states,
/// events that can never fire.
fn lint_state_machine(policy: &SackPolicy, issues: &mut Vec<PolicyIssue>) {
    let reachable = reachable_states(policy);
    if reachable.is_empty() {
        return;
    }

    for (name, _) in &policy.states {
        if !reachable.contains(name.as_str()) {
            issues.push(PolicyIssue::warning(
                IssueKind::UnreachableState,
                format!("state `{name}` is unreachable from the initial state"),
            ));
        }
    }

    // Absorbing states. A policy with no transitions at all is a static
    // (single-situation) configuration, not a broken machine — skip.
    if !policy.transitions.is_empty() {
        let mut has_exit: HashSet<&str> = HashSet::new();
        for (from, _, _) in &policy.transitions {
            has_exit.insert(from.as_str());
        }
        for (name, _) in &policy.states {
            if reachable.contains(name.as_str()) && !has_exit.contains(name.as_str()) {
                issues.push(PolicyIssue::warning(
                    IssueKind::DeadState,
                    format!(
                        "state `{name}` has no outgoing transitions: once entered, \
                         no event can ever leave it"
                    ),
                ));
            }
        }
    }

    for event in &policy.events {
        let uses: Vec<&(String, String, String)> = policy
            .transitions
            .iter()
            .filter(|(_, e, _)| e == event)
            .collect();
        if uses.is_empty() {
            issues.push(PolicyIssue::warning(
                IssueKind::NeverFiringEvent,
                format!("event `{event}` is not used by any transition"),
            ));
        } else if uses
            .iter()
            .all(|(from, _, _)| !reachable.contains(from.as_str()))
        {
            issues.push(PolicyIssue::warning(
                IssueKind::NeverFiringEvent,
                format!(
                    "event `{event}` can never fire: all of its transitions \
                     start in unreachable states"
                ),
            ));
        }
    }
}

/// MAC-rule lints: shadowed rules and overlapping allow/deny conflicts.
///
/// Both lints reason about glob *languages* (`covers`, `overlaps`), but
/// instead of the quadratic pairwise NFA procedures they build one tagged
/// DFA per question and read the answers off the accepting-state tag sets
/// (`Dfa::annotations`): glob `b` is covered by glob `a` iff every tag
/// set containing `b` also contains `a`, and two globs overlap iff some
/// tag set contains both. This keeps policy load near-linear in the rule
/// count where the pairwise checks took minutes beyond ~1k rules.
fn lint_rules(policy: &SackPolicy, issues: &mut Vec<PolicyIssue>) {
    // Pre-compile object globs; rules that fail to compile were already
    // reported as errors and this pass does not run.
    let compiled: HashMap<(usize, usize), (Glob, FilePerms)> = policy
        .per_rules
        .iter()
        .enumerate()
        .flat_map(|(pi, (_, rules))| {
            rules.iter().enumerate().filter_map(move |(ri, spec)| {
                let glob = Glob::compile(&spec.object).ok()?;
                let perms = FilePerms::parse(&spec.perms).ok()?;
                Some(((pi, ri), (glob, perms)))
            })
        })
        .collect();

    // Shadowing: within one permission block, a later rule subsumed by an
    // earlier rule with the same effect never changes the outcome.
    for (pi, (perm, rules)) in policy.per_rules.iter().enumerate() {
        if rules.len() < 2 {
            continue;
        }
        let mut builder = DfaBuilder::new();
        for ri in 0..rules.len() {
            if let Some((glob, _)) = compiled.get(&(pi, ri)) {
                builder.add_glob(glob, ri as u32);
            }
        }
        let dfa = builder.build(|tags| tags.to_vec());
        // coverers[ri] = tags present in every accepting set holding ri,
        // i.e. the rules whose globs cover rule ri's glob. `None` means
        // rule ri matches no path at all (trivially covered by anything).
        let mut coverers: Vec<Option<Vec<u32>>> = vec![None; rules.len()];
        for set in dfa.annotations() {
            for &tag in set {
                match &mut coverers[tag as usize] {
                    slot @ None => *slot = Some(set.clone()),
                    Some(cur) => cur.retain(|t| set.binary_search(t).is_ok()),
                }
            }
        }
        for ri in 1..rules.len() {
            let Some((_, later_perms)) = compiled.get(&(pi, ri)) else {
                continue;
            };
            let later = &rules[ri];
            for (ei, earlier) in rules.iter().enumerate().take(ri) {
                let Some((_, earlier_perms)) = compiled.get(&(pi, ei)) else {
                    continue;
                };
                let covers = match &coverers[ri] {
                    Some(set) => set.binary_search(&(ei as u32)).is_ok(),
                    None => true,
                };
                if covers
                    && earlier.effect == later.effect
                    && subject_covers(&earlier.subject, &later.subject)
                    && earlier_perms.contains(*later_perms)
                {
                    issues.push(
                        PolicyIssue::warning(
                            IssueKind::ShadowedRule,
                            format!(
                                "permission `{perm}`: rule `{}` (line {}) is shadowed by \
                                 broader rule `{}` (line {})",
                                render_rule(later),
                                later.line,
                                render_rule(earlier),
                                earlier.line
                            ),
                        )
                        .for_rule(perm, later),
                    );
                    break;
                }
            }
        }
    }

    // Allow/deny conflicts on *overlapping* (not identical) matches. Rules
    // from different permissions conflict too when some state grants both
    // permissions: the per-state rule set is the union, and deny wins.
    let granted_states = resolve_state_per(policy);
    let all_rules: Vec<(usize, &str, usize, &RuleSpec)> = policy
        .per_rules
        .iter()
        .enumerate()
        .flat_map(|(pi, (perm, rules))| {
            rules
                .iter()
                .enumerate()
                .map(move |(ri, spec)| (pi, perm.as_str(), ri, spec))
        })
        .collect();
    // One DFA over every rule glob, tagged by global rule index; a mixed
    // allow/deny tag set pins an overlapping pair.
    let mut builder = DfaBuilder::new();
    for (gi, &(pa, _, ra, _)) in all_rules.iter().enumerate() {
        if let Some((glob, _)) = compiled.get(&(pa, ra)) {
            builder.add_glob(glob, gi as u32);
        }
    }
    let dfa = builder.build(|tags| tags.to_vec());
    let mut overlapping: HashSet<(u32, u32)> = HashSet::new();
    for set in dfa.annotations() {
        if set.len() < 2 {
            continue;
        }
        let (mut allows, mut denies) = (Vec::new(), Vec::new());
        for &tag in set {
            match all_rules[tag as usize].3.effect {
                RuleEffect::Allow => allows.push(tag),
                RuleEffect::Deny => denies.push(tag),
            }
        }
        for &a in &allows {
            for &d in &denies {
                overlapping.insert((a.min(d), a.max(d)));
            }
        }
    }
    let mut overlapping: Vec<(u32, u32)> = overlapping.into_iter().collect();
    overlapping.sort_unstable();
    for (i, j) in overlapping {
        let (pa, perm_a, ra, rule_a) = all_rules[i as usize];
        let (pb, perm_b, rb, rule_b) = all_rules[j as usize];
        // The exact-triple case is already reported as ContradictoryRules.
        if rule_a.subject == rule_b.subject
            && rule_a.object == rule_b.object
            && rule_a.perms == rule_b.perms
        {
            continue;
        }
        // Both rules must be active together in at least one state.
        let coactive = perm_a == perm_b
            || granted_states.get(perm_a).is_some_and(|sa| {
                granted_states
                    .get(perm_b)
                    .is_some_and(|sb| sa.intersection(sb).next().is_some())
            });
        if !coactive {
            continue;
        }
        let (Some((_, perms_a)), Some((_, perms_b))) =
            (compiled.get(&(pa, ra)), compiled.get(&(pb, rb)))
        else {
            continue;
        };
        if perms_a.intersects(*perms_b) && subjects_overlap(&rule_a.subject, &rule_b.subject) {
            let (allow, deny) = match rule_a.effect {
                RuleEffect::Allow => ((perm_a, rule_a), (perm_b, rule_b)),
                RuleEffect::Deny => ((perm_b, rule_b), (perm_a, rule_a)),
            };
            issues.push(
                PolicyIssue::warning(
                    IssueKind::AllowDenyOverlap,
                    format!(
                        "allow rule `{}` (permission `{}`, line {}) overlaps deny rule \
                         `{}` (permission `{}`, line {}): the deny wins wherever both match",
                        render_rule(allow.1),
                        allow.0,
                        allow.1.line,
                        render_rule(deny.1),
                        deny.0,
                        deny.1.line
                    ),
                )
                .for_rule(allow.0, allow.1),
            );
        }
    }
}

/// Resolves `state_per` into permission → set of granting states, expanding
/// the `*` wildcard entry.
pub(crate) fn resolve_state_per(policy: &SackPolicy) -> HashMap<&str, HashSet<&str>> {
    let mut granted: HashMap<&str, HashSet<&str>> = HashMap::new();
    for (state, perms) in &policy.state_per {
        for perm in perms {
            let entry = granted.entry(perm.as_str()).or_default();
            if state == "*" {
                entry.extend(policy.states.iter().map(|(n, _)| n.as_str()));
            } else {
                entry.insert(state.as_str());
            }
        }
    }
    granted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::parse_policy;

    fn errors(text: &str) -> Vec<String> {
        check_policy(&parse_policy(text).unwrap())
            .into_iter()
            .filter(|i| i.severity == IssueSeverity::Error)
            .map(|i| i.message)
            .collect()
    }

    fn warnings(text: &str) -> Vec<PolicyIssue> {
        check_policy(&parse_policy(text).unwrap())
            .into_iter()
            .filter(|i| i.severity == IssueSeverity::Warning)
            .collect()
    }

    const VALID: &str = r#"
        states { a = 0; b = 1; }
        events { e; }
        transitions { a -e-> b; b -e-> a; }
        initial a;
        permissions { P; }
        state_per { a: P; b: P; }
        per_rules { P: allow subject=* /x rw; }
    "#;

    #[test]
    fn valid_policy_has_no_issues() {
        assert!(check_policy(&parse_policy(VALID).unwrap()).is_empty());
    }

    #[test]
    fn duplicate_state_and_encoding() {
        let errs = errors("states { a = 0; a = 1; b = 0; } initial a;");
        assert!(errs.iter().any(|e| e.contains("duplicate state `a`")));
        assert!(errs.iter().any(|e| e.contains("share encoding 0")));
    }

    #[test]
    fn undefined_references_are_errors() {
        let errs = errors(
            r#"
            states { a = 0; }
            transitions { a -ghost_event-> ghost_state; }
            initial missing;
            state_per { other: NOPERM; }
            per_rules { ALSO_MISSING: allow subject=* /x r; }
            "#,
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined event `ghost_event`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined state `ghost_state`")));
        assert!(errs.iter().any(|e| e.contains("initial state `missing`")));
        assert!(errs.iter().any(|e| e.contains("undefined state `other`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined permission `NOPERM`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined permission `ALSO_MISSING`")));
    }

    #[test]
    fn nondeterministic_transition_is_error() {
        let errs = errors(
            "states { a=0; b=1; c=2; } events { e; } transitions { a -e-> b; a -e-> c; } initial a;",
        );
        assert!(errs.iter().any(|e| e.contains("conflicting transitions")));
    }

    #[test]
    fn duplicate_transition_is_warning() {
        let warns = warnings(
            "states { a=0; b=1; } events { e; } transitions { a -e-> b; a -e-> b; } initial a;",
        );
        assert!(warns
            .iter()
            .any(|w| w.kind == IssueKind::DuplicateTransition));
    }

    #[test]
    fn bad_rule_contents_are_errors() {
        let errs = errors(
            r#"
            states { a = 0; } initial a;
            permissions { P; Q; R; }
            state_per { a: P, Q, R; }
            per_rules {
              P: allow subject=* /x[ r;
              Q: allow subject=* /x zz;
              R: allow subject=/bad[ /x r;
            }
            "#,
        );
        assert!(errs.iter().any(|e| e.contains("invalid glob")));
        assert!(errs.iter().any(|e| e.contains("unknown permission letter")));
        assert!(errs.iter().any(|e| e.contains("subject invalid glob")));
    }

    #[test]
    fn unreachable_state_is_warning() {
        let warns = warnings(
            "states { a=0; island=1; } events { e; } transitions { a -e-> a; } initial a;",
        );
        assert!(warns.iter().any(|w| w.kind == IssueKind::UnreachableState));
    }

    #[test]
    fn unused_permission_warnings() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { USED; UNMAPPED; NORULE; }
               state_per { a: USED, NORULE; }
               per_rules { USED: allow subject=* /x r; UNMAPPED: allow subject=* /y r; }"#,
        );
        assert!(warns
            .iter()
            .any(|w| w.message.contains("`UNMAPPED` is never granted")));
        assert!(warns
            .iter()
            .any(|w| w.message.contains("`NORULE` has no MAC rules")));
    }

    #[test]
    fn contradictory_rules_are_warned() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P: allow subject=* /x w; deny subject=* /x w; }"#,
        );
        assert!(warns
            .iter()
            .any(|w| w.kind == IssueKind::ContradictoryRules));
        // The exact triple must NOT additionally fire the overlap lint.
        assert!(!warns.iter().any(|w| w.kind == IssueKind::AllowDenyOverlap));
    }

    #[test]
    fn empty_policy_is_error() {
        let errs = errors("");
        assert!(errs.iter().any(|e| e.contains("no situation states")));
        assert!(errs.iter().any(|e| e.contains("missing `initial")));
    }

    #[test]
    fn dead_state_is_warning() {
        let warns = warnings(
            "states { a=0; pit=1; } events { fall; } transitions { a -fall-> pit; } initial a;",
        );
        let dead: Vec<_> = warns
            .iter()
            .filter(|w| w.kind == IssueKind::DeadState)
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("`pit`"));
    }

    #[test]
    fn transitionless_policy_has_no_dead_state_warning() {
        let warns = warnings("states { a=0; } initial a;");
        assert!(!warns.iter().any(|w| w.kind == IssueKind::DeadState));
    }

    #[test]
    fn self_loop_counts_as_an_outgoing_transition() {
        // A state whose only exit is a self-loop is not "dead": its event
        // can still fire there (re-entry renotifies enforcers).
        let warns = warnings(
            "states { a=0; b=1; } events { go; ping; } \
             transitions { a -go-> b; b -ping-> b; } initial a;",
        );
        assert!(
            !warns.iter().any(|w| w.kind == IssueKind::DeadState),
            "{warns:?}"
        );
        assert!(!warns.iter().any(|w| w.kind == IssueKind::NeverFiringEvent));
    }

    #[test]
    fn never_firing_events_are_warned() {
        let warns = warnings(
            r#"states { a=0; island=1; } events { unused; islander; loop_e; }
               transitions { a -loop_e-> a; island -islander-> a; }
               initial a;"#,
        );
        let fires: Vec<_> = warns
            .iter()
            .filter(|w| w.kind == IssueKind::NeverFiringEvent)
            .collect();
        assert_eq!(fires.len(), 2);
        assert!(fires
            .iter()
            .any(|w| w.message.contains("`unused` is not used")));
        assert!(fires
            .iter()
            .any(|w| w.message.contains("`islander` can never fire")));
    }

    #[test]
    fn shadowed_rule_is_warned_with_provenance() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P:
                 allow subject=* /dev/car/** rw;
                 allow subject=/usr/bin/app /dev/car/door* r;
               }"#,
        );
        let shadowed: Vec<_> = warns
            .iter()
            .filter(|w| w.kind == IssueKind::ShadowedRule)
            .collect();
        assert_eq!(shadowed.len(), 1);
        let prov = shadowed[0].provenance.as_ref().unwrap();
        assert_eq!(prov.permission, "P");
        assert!(prov.rule.contains("/dev/car/door*"));
    }

    #[test]
    fn narrower_earlier_rule_does_not_shadow() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P:
                 allow subject=* /dev/car/door* r;
                 allow subject=* /dev/car/** rw;
               }"#,
        );
        assert!(!warns.iter().any(|w| w.kind == IssueKind::ShadowedRule));
    }

    #[test]
    fn overlapping_allow_deny_is_warned() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P:
                 allow subject=* /dev/car/** rw;
                 deny subject=* /dev/car/door* w;
               }"#,
        );
        let conflicts: Vec<_> = warns
            .iter()
            .filter(|w| w.kind == IssueKind::AllowDenyOverlap)
            .collect();
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].message.contains("deny wins"));
    }

    #[test]
    fn cross_permission_conflict_requires_shared_state() {
        // P active in a, Q active only in b: never coactive, no conflict.
        let disjoint = warnings(
            r#"states { a=0; b=1; } events { e; } transitions { a -e-> b; b -e-> a; }
               initial a;
               permissions { P; Q; }
               state_per { a: P; b: Q; }
               per_rules {
                 P: allow subject=* /dev/x* w;
                 Q: deny subject=* /dev/x0 w;
               }"#,
        );
        assert!(!disjoint
            .iter()
            .any(|w| w.kind == IssueKind::AllowDenyOverlap));

        // Same rules, both active in `a`: conflict.
        let shared = warnings(
            r#"states { a=0; b=1; } events { e; } transitions { a -e-> b; b -e-> a; }
               initial a;
               permissions { P; Q; }
               state_per { a: P, Q; b: Q; }
               per_rules {
                 P: allow subject=* /dev/x* w;
                 Q: deny subject=* /dev/x0 w;
               }"#,
        );
        assert!(shared.iter().any(|w| w.kind == IssueKind::AllowDenyOverlap));
    }

    #[test]
    fn disjoint_subjects_do_not_conflict() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P:
                 allow uid=1000 /dev/x* w;
                 deny uid=2000 /dev/x* w;
               }"#,
        );
        assert!(!warns.iter().any(|w| w.kind == IssueKind::AllowDenyOverlap));
    }
}
