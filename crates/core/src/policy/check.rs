//! Policy validation — SACK's "policy-checking tools \[that\] handle errors
//! and conflicts" (paper §III-D).
//!
//! The checker runs before compilation. *Errors* abort the load (undefined
//! references, duplicates, malformed rules, conflicting transitions);
//! *warnings* are surfaced but tolerated (unreachable states, unused
//! permissions, shadowed rules).

use std::collections::{HashMap, HashSet};
use std::fmt;

use sack_apparmor::profile::FilePerms;

use super::{RuleSpec, SackPolicy, SubjectSpec};

/// Severity of a policy issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueSeverity {
    /// Fatal: the policy will not load.
    Error,
    /// Suspicious but loadable.
    Warning,
}

impl fmt::Display for IssueSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueSeverity::Error => f.write_str("error"),
            IssueSeverity::Warning => f.write_str("warning"),
        }
    }
}

/// One finding from the policy checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyIssue {
    /// Error or warning.
    pub severity: IssueSeverity,
    /// Human-readable description.
    pub message: String,
}

impl PolicyIssue {
    fn error(message: impl Into<String>) -> Self {
        PolicyIssue {
            severity: IssueSeverity::Error,
            message: message.into(),
        }
    }

    fn warning(message: impl Into<String>) -> Self {
        PolicyIssue {
            severity: IssueSeverity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for PolicyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

fn check_rule(perm: &str, spec: &RuleSpec, issues: &mut Vec<PolicyIssue>) {
    if let Err(e) = sack_apparmor::glob::Glob::compile(&spec.object) {
        issues.push(PolicyIssue::error(format!(
            "rule for `{perm}` (line {}): {e}",
            spec.line
        )));
    }
    if let SubjectSpec::Exe(glob) = &spec.subject {
        if let Err(e) = sack_apparmor::glob::Glob::compile(glob) {
            issues.push(PolicyIssue::error(format!(
                "rule for `{perm}` (line {}): subject {e}",
                spec.line
            )));
        }
    }
    match FilePerms::parse(&spec.perms) {
        Ok(p) if p.is_empty() => issues.push(PolicyIssue::error(format!(
            "rule for `{perm}` (line {}): empty permission set",
            spec.line
        ))),
        Ok(_) => {}
        Err(c) => issues.push(PolicyIssue::error(format!(
            "rule for `{perm}` (line {}): unknown permission letter `{c}`",
            spec.line
        ))),
    }
}

/// Validates a policy AST, returning every detected issue.
pub fn check_policy(policy: &SackPolicy) -> Vec<PolicyIssue> {
    let mut issues = Vec::new();

    // --- States: duplicates in names and encodings -----------------------
    let mut state_names = HashSet::new();
    let mut encodings = HashMap::new();
    for (name, enc) in &policy.states {
        if !state_names.insert(name.as_str()) {
            issues.push(PolicyIssue::error(format!("duplicate state `{name}`")));
        }
        if let Some(prev) = encodings.insert(*enc, name.as_str()) {
            issues.push(PolicyIssue::error(format!(
                "states `{prev}` and `{name}` share encoding {enc}"
            )));
        }
    }
    if policy.states.is_empty() {
        issues.push(PolicyIssue::error("policy declares no situation states"));
    }

    // --- Events -----------------------------------------------------------
    let mut event_names = HashSet::new();
    for name in &policy.events {
        if !event_names.insert(name.as_str()) {
            issues.push(PolicyIssue::error(format!("duplicate event `{name}`")));
        }
    }

    // --- Transitions: refs + determinism -----------------------------------
    let mut seen_transitions: HashMap<(&str, &str), &str> = HashMap::new();
    for (from, event, to) in &policy.transitions {
        for state in [from, to] {
            if !state_names.contains(state.as_str()) {
                issues.push(PolicyIssue::error(format!(
                    "transition references undefined state `{state}`"
                )));
            }
        }
        if !event_names.contains(event.as_str()) {
            issues.push(PolicyIssue::error(format!(
                "transition references undefined event `{event}`"
            )));
        }
        match seen_transitions.insert((from.as_str(), event.as_str()), to.as_str()) {
            Some(prev) if prev != to.as_str() => {
                issues.push(PolicyIssue::error(format!(
                    "conflicting transitions from `{from}` on `{event}`: `-> {prev}` and `-> {to}`"
                )));
            }
            Some(_) => issues.push(PolicyIssue::warning(format!(
                "duplicate transition `{from} -{event}-> {to}`"
            ))),
            None => {}
        }
    }

    // --- Initial state ------------------------------------------------------
    match &policy.initial {
        None => issues.push(PolicyIssue::error("missing `initial <state>;`")),
        Some(s) if !state_names.contains(s.as_str()) => {
            issues.push(PolicyIssue::error(format!(
                "initial state `{s}` is undefined"
            )));
        }
        Some(_) => {}
    }

    // --- Permissions ---------------------------------------------------------
    let mut perm_names = HashSet::new();
    for name in &policy.permissions {
        if !perm_names.insert(name.as_str()) {
            issues.push(PolicyIssue::error(format!("duplicate permission `{name}`")));
        }
    }

    // --- State_Per -------------------------------------------------------------
    let mut mapped_perms: HashSet<&str> = HashSet::new();
    let mut state_per_states: HashSet<&str> = HashSet::new();
    for (state, perms) in &policy.state_per {
        // `*` grants the listed permissions in every state.
        if state != "*" && !state_names.contains(state.as_str()) {
            issues.push(PolicyIssue::error(format!(
                "state_per references undefined state `{state}`"
            )));
        }
        if !state_per_states.insert(state.as_str()) {
            issues.push(PolicyIssue::warning(format!(
                "state `{state}` appears twice in state_per (entries are merged)"
            )));
        }
        for perm in perms {
            if !perm_names.contains(perm.as_str()) {
                issues.push(PolicyIssue::error(format!(
                    "state_per references undefined permission `{perm}`"
                )));
            }
            mapped_perms.insert(perm.as_str());
        }
    }

    // --- Per_Rules -----------------------------------------------------------
    let mut ruled_perms: HashSet<&str> = HashSet::new();
    for (perm, rules) in &policy.per_rules {
        if !perm_names.contains(perm.as_str()) {
            issues.push(PolicyIssue::error(format!(
                "per_rules references undefined permission `{perm}`"
            )));
        }
        ruled_perms.insert(perm.as_str());
        for spec in rules {
            check_rule(perm, spec, &mut issues);
        }
        // Exact allow/deny contradiction inside one permission.
        for (i, a) in rules.iter().enumerate() {
            for b in rules.iter().skip(i + 1) {
                if a.subject == b.subject
                    && a.object == b.object
                    && a.perms == b.perms
                    && a.effect != b.effect
                {
                    issues.push(PolicyIssue::warning(format!(
                        "permission `{perm}`: contradictory allow/deny for `{}` `{}` (deny wins)",
                        a.subject, a.object
                    )));
                }
            }
        }
    }

    // --- Cross-interface warnings ----------------------------------------------
    for name in &policy.permissions {
        if !mapped_perms.contains(name.as_str()) {
            issues.push(PolicyIssue::warning(format!(
                "permission `{name}` is never granted by any state"
            )));
        }
        if !ruled_perms.contains(name.as_str()) {
            issues.push(PolicyIssue::warning(format!(
                "permission `{name}` has no MAC rules (grants nothing)"
            )));
        }
    }

    // --- Reachability (only when the machine is well-formed so far) --------------
    if issues.iter().all(|i| i.severity != IssueSeverity::Error) {
        if let Some(initial) = &policy.initial {
            let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
            for (from, _, to) in &policy.transitions {
                adj.entry(from.as_str()).or_default().push(to.as_str());
            }
            let mut seen: HashSet<&str> = HashSet::new();
            let mut stack = vec![initial.as_str()];
            seen.insert(initial.as_str());
            while let Some(s) = stack.pop() {
                for next in adj.get(s).into_iter().flatten() {
                    if seen.insert(next) {
                        stack.push(next);
                    }
                }
            }
            for (name, _) in &policy.states {
                if !seen.contains(name.as_str()) {
                    issues.push(PolicyIssue::warning(format!(
                        "state `{name}` is unreachable from the initial state"
                    )));
                }
            }
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::parse_policy;

    fn errors(text: &str) -> Vec<String> {
        check_policy(&parse_policy(text).unwrap())
            .into_iter()
            .filter(|i| i.severity == IssueSeverity::Error)
            .map(|i| i.message)
            .collect()
    }

    fn warnings(text: &str) -> Vec<String> {
        check_policy(&parse_policy(text).unwrap())
            .into_iter()
            .filter(|i| i.severity == IssueSeverity::Warning)
            .map(|i| i.message)
            .collect()
    }

    const VALID: &str = r#"
        states { a = 0; b = 1; }
        events { e; }
        transitions { a -e-> b; b -e-> a; }
        initial a;
        permissions { P; }
        state_per { a: P; b: P; }
        per_rules { P: allow subject=* /x rw; }
    "#;

    #[test]
    fn valid_policy_has_no_issues() {
        assert!(check_policy(&parse_policy(VALID).unwrap()).is_empty());
    }

    #[test]
    fn duplicate_state_and_encoding() {
        let errs = errors("states { a = 0; a = 1; b = 0; } initial a;");
        assert!(errs.iter().any(|e| e.contains("duplicate state `a`")));
        assert!(errs.iter().any(|e| e.contains("share encoding 0")));
    }

    #[test]
    fn undefined_references_are_errors() {
        let errs = errors(
            r#"
            states { a = 0; }
            transitions { a -ghost_event-> ghost_state; }
            initial missing;
            state_per { other: NOPERM; }
            per_rules { ALSO_MISSING: allow subject=* /x r; }
            "#,
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined event `ghost_event`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined state `ghost_state`")));
        assert!(errs.iter().any(|e| e.contains("initial state `missing`")));
        assert!(errs.iter().any(|e| e.contains("undefined state `other`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined permission `NOPERM`")));
        assert!(errs
            .iter()
            .any(|e| e.contains("undefined permission `ALSO_MISSING`")));
    }

    #[test]
    fn nondeterministic_transition_is_error() {
        let errs = errors(
            "states { a=0; b=1; c=2; } events { e; } transitions { a -e-> b; a -e-> c; } initial a;",
        );
        assert!(errs.iter().any(|e| e.contains("conflicting transitions")));
    }

    #[test]
    fn duplicate_transition_is_warning() {
        let warns = warnings(
            "states { a=0; b=1; } events { e; } transitions { a -e-> b; a -e-> b; } initial a;",
        );
        assert!(warns.iter().any(|w| w.contains("duplicate transition")));
    }

    #[test]
    fn bad_rule_contents_are_errors() {
        let errs = errors(
            r#"
            states { a = 0; } initial a;
            permissions { P; Q; R; }
            state_per { a: P, Q, R; }
            per_rules {
              P: allow subject=* /x[ r;
              Q: allow subject=* /x zz;
              R: allow subject=/bad[ /x r;
            }
            "#,
        );
        assert!(errs.iter().any(|e| e.contains("invalid glob")));
        assert!(errs.iter().any(|e| e.contains("unknown permission letter")));
        assert!(errs.iter().any(|e| e.contains("subject invalid glob")));
    }

    #[test]
    fn unreachable_state_is_warning() {
        let warns = warnings(
            "states { a=0; island=1; } events { e; } transitions { a -e-> a; } initial a;",
        );
        assert!(warns.iter().any(|w| w.contains("unreachable")));
    }

    #[test]
    fn unused_permission_warnings() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { USED; UNMAPPED; NORULE; }
               state_per { a: USED, NORULE; }
               per_rules { USED: allow subject=* /x r; UNMAPPED: allow subject=* /y r; }"#,
        );
        assert!(warns
            .iter()
            .any(|w| w.contains("`UNMAPPED` is never granted")));
        assert!(warns
            .iter()
            .any(|w| w.contains("`NORULE` has no MAC rules")));
    }

    #[test]
    fn contradictory_rules_are_warned() {
        let warns = warnings(
            r#"states { a=0; } initial a;
               permissions { P; }
               state_per { a: P; }
               per_rules { P: allow subject=* /x w; deny subject=* /x w; }"#,
        );
        assert!(warns.iter().any(|w| w.contains("contradictory")));
    }

    #[test]
    fn empty_policy_is_error() {
        let errs = errors("");
        assert!(errs.iter().any(|e| e.contains("no situation states")));
        assert!(errs.iter().any(|e| e.contains("missing `initial")));
    }
}
