//! The SACK policy language (paper §III-D, Table I).
//!
//! A policy is written against four interfaces:
//!
//! | Interface     | Purpose                                        |
//! |---------------|------------------------------------------------|
//! | `States`      | situation states and their encodings           |
//! | `Permissions` | coarse SACK permissions                        |
//! | `State_Per`   | "State → Permission" mapping                   |
//! | `Per_Rules`   | "Permission → MAC rules" mapping               |
//!
//! plus `events`, `transitions` and `initial` describing the situation
//! state machine. The textual syntax (see [`parser`]) is parsed into the
//! [`SackPolicy`] AST, validated by the [`check`] pass, and compiled into a
//! [`CompiledPolicy`]: the state machine inputs plus one precomputed
//! [`StateRuleSet`] per state — Algorithm 1's `g(f(SS_i))` materialized at
//! load time so situation transitions are an O(1) pointer move.

pub mod check;
pub mod parser;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use sack_apparmor::glob::Glob;
use sack_apparmor::profile::FilePerms;

use crate::rules::{
    MacRule, Permission, PermissionId, ProtectedSet, RuleEffect, StateRuleSet, SubjectMatch,
};
use crate::situation::{StateId, StateSpace};
use crate::ssm::TransitionRule;
use crate::statedfa::StateDfa;

pub use check::{check_policy, render_rule, IssueKind, IssueSeverity, PolicyIssue, RuleProvenance};
pub use parser::{parse_policy, ParsePolicyError};

/// Raw subject selector as written in policy text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SubjectSpec {
    /// `subject=*`
    Any,
    /// `subject=<glob>` — executable path pattern.
    Exe(String),
    /// `uid=<n>`
    Uid(u32),
    /// `subject=profile:<name>`
    Profile(String),
}

impl fmt::Display for SubjectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectSpec::Any => f.write_str("subject=*"),
            SubjectSpec::Exe(g) => write!(f, "subject={g}"),
            SubjectSpec::Uid(u) => write!(f, "uid={u}"),
            SubjectSpec::Profile(p) => write!(f, "subject=profile:{p}"),
        }
    }
}

/// One MAC rule as written in policy text (validated during compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// Allow or deny.
    pub effect: RuleEffect,
    /// Subject selector.
    pub subject: SubjectSpec,
    /// Object glob source text.
    pub object: String,
    /// Permission letters (`rwaxmi`).
    pub perms: String,
    /// Source line, for diagnostics.
    pub line: usize,
}

/// The parsed policy AST: a direct transcription of the policy text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SackPolicy {
    /// `states { name = encoding; ... }`
    pub states: Vec<(String, u32)>,
    /// `events { name; ... }`
    pub events: Vec<String>,
    /// `transitions { from -event-> to; ... }`
    pub transitions: Vec<(String, String, String)>,
    /// `initial <state>;`
    pub initial: Option<String>,
    /// `permissions { NAME; ... }`
    pub permissions: Vec<String>,
    /// `state_per { state: PERM, PERM; ... }`
    pub state_per: Vec<(String, Vec<String>)>,
    /// `per_rules { PERM: rule; rule; ... }`
    pub per_rules: Vec<(String, Vec<RuleSpec>)>,
}

impl fmt::Display for SackPolicy {
    /// Renders the policy in canonical syntax; the output re-parses to an
    /// equal AST (see the round-trip property test).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "states {{")?;
        for (name, enc) in &self.states {
            writeln!(f, "    {name} = {enc};")?;
        }
        writeln!(f, "}}")?;
        writeln!(f, "events {{")?;
        for name in &self.events {
            writeln!(f, "    {name};")?;
        }
        writeln!(f, "}}")?;
        writeln!(f, "transitions {{")?;
        for (from, event, to) in &self.transitions {
            writeln!(f, "    {from} -{event}-> {to};")?;
        }
        writeln!(f, "}}")?;
        if let Some(initial) = &self.initial {
            writeln!(f, "initial {initial};")?;
        }
        writeln!(f, "permissions {{")?;
        for name in &self.permissions {
            writeln!(f, "    {name};")?;
        }
        writeln!(f, "}}")?;
        writeln!(f, "state_per {{")?;
        for (state, perms) in &self.state_per {
            writeln!(f, "    {state}: {};", perms.join(", "))?;
        }
        writeln!(f, "}}")?;
        writeln!(f, "per_rules {{")?;
        for (perm, rules) in &self.per_rules {
            writeln!(f, "    {perm}:")?;
            for rule in rules {
                let effect = match rule.effect {
                    RuleEffect::Allow => "allow",
                    RuleEffect::Deny => "deny",
                };
                writeln!(
                    f,
                    "        {effect} {} {} {};",
                    rule.subject, rule.object, rule.perms
                )?;
            }
        }
        writeln!(f, "}}")
    }
}

impl SackPolicy {
    /// Parses policy text (convenience for [`parser::parse_policy`]).
    ///
    /// # Errors
    ///
    /// Syntax errors with line numbers.
    pub fn parse(text: &str) -> Result<SackPolicy, ParsePolicyError> {
        parse_policy(text)
    }

    /// Validates and compiles the policy.
    ///
    /// # Errors
    ///
    /// All detected issues; compilation fails if any has
    /// [`IssueSeverity::Error`]. Warnings are attached to the compiled
    /// policy instead.
    pub fn compile(&self) -> Result<CompiledPolicy, Vec<PolicyIssue>> {
        let issues = check_policy(self);
        if issues.iter().any(|i| i.severity == IssueSeverity::Error) {
            return Err(issues);
        }
        let warnings = issues;

        let mut space = StateSpace::new();
        for (name, enc) in &self.states {
            space
                .add_state(name, *enc)
                .expect("checker guarantees unique states");
        }
        for name in &self.events {
            space
                .add_event(name)
                .expect("checker guarantees unique events");
        }

        let transitions: Vec<TransitionRule> = self
            .transitions
            .iter()
            .map(|(from, event, to)| TransitionRule {
                from: space.state_id(from).expect("checked"),
                event: space.event_id(event).expect("checked"),
                to: space.state_id(to).expect("checked"),
            })
            .collect();

        let initial = space
            .state_id(self.initial.as_deref().expect("checker requires initial"))
            .expect("checked");

        let permissions: Vec<Permission> = self
            .permissions
            .iter()
            .map(|name| Permission { name: name.clone() })
            .collect();
        let perm_id = |name: &str| -> PermissionId {
            PermissionId(
                permissions
                    .iter()
                    .position(|p| p.name == name)
                    .expect("checked"),
            )
        };

        // f: state -> permission set. A `*` entry grants in every state.
        let mut state_perms: Vec<Vec<PermissionId>> = vec![Vec::new(); space.state_count()];
        for (state, perms) in &self.state_per {
            let targets: Vec<usize> = if state == "*" {
                (0..space.state_count()).collect()
            } else {
                vec![space.state_id(state).expect("checked").0]
            };
            for p in perms {
                let pid = perm_id(p);
                for &t in &targets {
                    if !state_perms[t].contains(&pid) {
                        state_perms[t].push(pid);
                    }
                }
            }
        }

        // g: permission -> MAC rules
        let mut perm_rules: Vec<Vec<MacRule>> = vec![Vec::new(); permissions.len()];
        for (perm, specs) in &self.per_rules {
            let pid = perm_id(perm);
            for spec in specs {
                perm_rules[pid.0].push(compile_rule(spec).expect("checker validated rule"));
            }
        }

        // Precompute g(f(SS_i)) for every state.
        let state_rules: Vec<Arc<StateRuleSet>> = state_perms
            .iter()
            .map(|perms| {
                Arc::new(StateRuleSet::build(
                    perms.iter().flat_map(|pid| perm_rules[pid.0].iter()),
                ))
            })
            .collect();

        let protected = ProtectedSet::build(
            perm_rules
                .iter()
                .flat_map(|rules| rules.iter().map(|r| &r.object)),
        );

        // Unified per-state DFA tables: every state's rules plus the
        // whole policy's object globs (the protected-set markers) merged
        // into one minimized matcher, rebuilt from scratch at every
        // compile so a reload can never serve stale tables. All states
        // share one byte-class alphabet: the marker set already spans every
        // object glob of the policy, so the union partition fits each state
        // exactly and the 256-byte class table is built once, not per state.
        let shared_alphabet = Arc::new(sack_apparmor::dfa::Alphabet::for_globs(
            perm_rules
                .iter()
                .flat_map(|rules| rules.iter().map(|r| &r.object)),
        ));
        // States granting the same permission set compile to the same
        // table: build each distinct set once — across the bounded worker
        // pool, safe because the shared alphabet is fixed above — and
        // share the `Arc` among the states mapping to it.
        let mut slot_of: Vec<usize> = Vec::with_capacity(state_perms.len());
        let mut distinct: Vec<&Vec<PermissionId>> = Vec::new();
        let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
        for perms in &state_perms {
            let mut key: Vec<usize> = perms.iter().map(|pid| pid.0).collect();
            key.sort_unstable();
            let next = distinct.len();
            let slot = *seen.entry(key).or_insert(next);
            if slot == next {
                distinct.push(perms);
            }
            slot_of.push(slot);
        }
        let built: Vec<Arc<StateDfa>> = sack_apparmor::pipeline::map_parallel(
            &distinct,
            sack_apparmor::pipeline::default_workers(),
            |perms| {
                Arc::new(StateDfa::build_with_alphabet(
                    perms.iter().flat_map(|pid| perm_rules[pid.0].iter()),
                    perm_rules
                        .iter()
                        .flat_map(|rules| rules.iter().map(|r| &r.object)),
                    &shared_alphabet,
                ))
            },
        );
        let state_dfas: Vec<Arc<StateDfa>> =
            slot_of.iter().map(|&s| Arc::clone(&built[s])).collect();

        Ok(CompiledPolicy {
            space,
            transitions,
            initial,
            permissions,
            state_perms,
            perm_rules,
            state_rules,
            state_dfas,
            protected,
            warnings,
        })
    }
}

pub(crate) fn compile_rule(spec: &RuleSpec) -> Result<MacRule, String> {
    let subject = match &spec.subject {
        SubjectSpec::Any => SubjectMatch::Any,
        SubjectSpec::Exe(glob) => {
            SubjectMatch::ExeGlob(Glob::compile(glob).map_err(|e| e.to_string())?)
        }
        SubjectSpec::Uid(uid) => SubjectMatch::Uid(*uid),
        SubjectSpec::Profile(name) => SubjectMatch::Profile(name.clone()),
    };
    let object = Glob::compile(&spec.object).map_err(|e| e.to_string())?;
    let perms =
        FilePerms::parse(&spec.perms).map_err(|c| format!("unknown permission letter `{c}`"))?;
    Ok(MacRule {
        subject,
        object,
        perms,
        effect: spec.effect,
    })
}

/// A validated, loaded SACK policy.
pub struct CompiledPolicy {
    space: StateSpace,
    transitions: Vec<TransitionRule>,
    initial: StateId,
    permissions: Vec<Permission>,
    state_perms: Vec<Vec<PermissionId>>,
    perm_rules: Vec<Vec<MacRule>>,
    state_rules: Vec<Arc<StateRuleSet>>,
    state_dfas: Vec<Arc<StateDfa>>,
    protected: ProtectedSet,
    warnings: Vec<PolicyIssue>,
}

impl CompiledPolicy {
    /// The state/event universe.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Transition rules for the SSM.
    pub fn transitions(&self) -> &[TransitionRule] {
        &self.transitions
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// All declared permissions.
    pub fn permissions(&self) -> &[Permission] {
        &self.permissions
    }

    /// Looks up a permission id by name.
    pub fn permission_id(&self, name: &str) -> Option<PermissionId> {
        self.permissions
            .iter()
            .position(|p| p.name == name)
            .map(PermissionId)
    }

    /// Permission set of a state (`f(SS_i)`).
    pub fn permissions_of(&self, state: StateId) -> &[PermissionId] {
        &self.state_perms[state.0]
    }

    /// MAC rules of a permission (`g(P_i)`).
    pub fn rules_of(&self, perm: PermissionId) -> &[MacRule] {
        &self.perm_rules[perm.0]
    }

    /// The precompiled rule set for a state (`g(f(SS_i))`).
    pub fn state_rules(&self, state: StateId) -> &Arc<StateRuleSet> {
        &self.state_rules[state.0]
    }

    /// The unified decision DFA compiled for a state.
    pub fn state_dfa(&self, state: StateId) -> &Arc<StateDfa> {
        &self.state_dfas[state.0]
    }

    /// The protected-object set.
    pub fn protected(&self) -> &ProtectedSet {
        &self.protected
    }

    /// Non-fatal issues found at compile time.
    pub fn warnings(&self) -> &[PolicyIssue] {
        &self.warnings
    }

    /// Total number of MAC rules across all permissions.
    pub fn rule_count(&self) -> usize {
        self.perm_rules.iter().map(Vec::len).sum()
    }
}

impl fmt::Debug for CompiledPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPolicy")
            .field("states", &self.space.state_count())
            .field("events", &self.space.event_count())
            .field("permissions", &self.permissions.len())
            .field("rules", &self.rule_count())
            .field("warnings", &self.warnings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SubjectCtx;

    /// The running example from the paper: door control only in emergencies.
    pub(crate) const DOOR_POLICY: &str = r#"
        # SACK policy: allow car-door control only in emergencies.
        states {
            normal = 0;
            emergency = 1;
        }
        events {
            crash;
            rescue_done;
        }
        transitions {
            normal -crash-> emergency;
            emergency -rescue_done-> normal;
        }
        initial normal;
        permissions {
            NORMAL;
            CONTROL_CAR_DOORS;
        }
        state_per {
            normal: NORMAL;
            emergency: NORMAL, CONTROL_CAR_DOORS;
        }
        per_rules {
            NORMAL: allow subject=* /dev/car/** r;
            CONTROL_CAR_DOORS: allow subject=/usr/bin/rescue* /dev/car/** wi;
        }
    "#;

    #[test]
    fn door_policy_compiles() {
        let policy = SackPolicy::parse(DOOR_POLICY).unwrap();
        let compiled = policy.compile().unwrap();
        assert_eq!(compiled.space().state_count(), 2);
        assert_eq!(compiled.permissions().len(), 2);
        assert_eq!(compiled.rule_count(), 2);
        assert_eq!(compiled.space().state(compiled.initial()).name, "normal");
    }

    #[test]
    fn state_dfas_share_one_alphabet() {
        let compiled = SackPolicy::parse(DOOR_POLICY).unwrap().compile().unwrap();
        assert!(compiled.space().state_count() > 1);
        let first = compiled.state_dfa(StateId(0)).alphabet();
        for index in 1..compiled.space().state_count() {
            assert!(
                Arc::ptr_eq(compiled.state_dfa(StateId(index)).alphabet(), first),
                "state {index} compiled against a private alphabet"
            );
        }
    }

    #[test]
    fn states_with_equal_permission_sets_share_one_dfa() {
        // Both states grant exactly P (one via `*`), so their unified
        // tables dedup onto one build; the distinct state gets its own.
        let compiled = SackPolicy::parse(
            r#"
states { a = 0; b = 1; c = 2; }
events { go; }
transitions { a -go-> b; b -go-> c; c -go-> a; }
initial a;
permissions { P; Q; }
state_per { *: P; c: Q; }
per_rules {
    P: allow subject=* /data/** r;
    Q: allow subject=* /dev/car/* w;
}
"#,
        )
        .unwrap()
        .compile()
        .unwrap();
        let a = compiled.space().state_id("a").unwrap();
        let b = compiled.space().state_id("b").unwrap();
        let c = compiled.space().state_id("c").unwrap();
        assert!(
            Arc::ptr_eq(compiled.state_dfa(a), compiled.state_dfa(b)),
            "equal permission sets must share one compiled table"
        );
        assert!(!Arc::ptr_eq(compiled.state_dfa(a), compiled.state_dfa(c)));
    }

    #[test]
    fn state_rules_reflect_state_per() {
        let compiled = SackPolicy::parse(DOOR_POLICY).unwrap().compile().unwrap();
        let normal = compiled.space().state_id("normal").unwrap();
        let emergency = compiled.space().state_id("emergency").unwrap();
        let rescue = SubjectCtx {
            uid: 0,
            exe: Some("/usr/bin/rescue_daemon"),
            profile: None,
        };
        // Write+ioctl on door devices: only in emergency, only for rescue.
        let door = "/dev/car/door0";
        assert!(!compiled
            .state_rules(normal)
            .permits(&rescue, door, FilePerms::IOCTL));
        assert!(compiled.state_rules(emergency).permits(
            &rescue,
            door,
            FilePerms::IOCTL | FilePerms::WRITE
        ));
        let media = SubjectCtx {
            uid: 1000,
            exe: Some("/usr/bin/media_app"),
            profile: None,
        };
        assert!(!compiled
            .state_rules(emergency)
            .permits(&media, door, FilePerms::IOCTL));
        // Read is allowed everywhere via NORMAL.
        assert!(compiled
            .state_rules(normal)
            .permits(&media, door, FilePerms::READ));
    }

    #[test]
    fn protected_set_from_rules() {
        let compiled = SackPolicy::parse(DOOR_POLICY).unwrap().compile().unwrap();
        assert!(compiled.protected().contains("/dev/car/door0"));
        assert!(compiled.protected().contains("/dev/car/window1"));
        assert!(!compiled.protected().contains("/etc/passwd"));
        assert_eq!(compiled.protected().len(), 1, "same glob deduplicated");
    }

    #[test]
    fn wildcard_state_grants_everywhere() {
        let text = r#"
            states { a = 0; b = 1; c = 2; }
            events { go; }
            transitions { a -go-> b; b -go-> c; c -go-> a; }
            initial a;
            permissions { BASE; EXTRA; }
            state_per {
                *: BASE;
                b: EXTRA;
            }
            per_rules {
                BASE: allow subject=* /common/** r;
                EXTRA: allow subject=* /extra/** rw;
            }
        "#;
        let compiled = SackPolicy::parse(text).unwrap().compile().unwrap();
        let subject = SubjectCtx {
            uid: 0,
            exe: None,
            profile: None,
        };
        for state_name in ["a", "b", "c"] {
            let state = compiled.space().state_id(state_name).unwrap();
            assert!(
                compiled
                    .state_rules(state)
                    .permits(&subject, "/common/x", FilePerms::READ),
                "BASE missing in {state_name}"
            );
            assert_eq!(
                compiled
                    .state_rules(state)
                    .permits(&subject, "/extra/x", FilePerms::WRITE),
                state_name == "b",
                "EXTRA wrong in {state_name}"
            );
        }
        assert!(compiled.warnings().is_empty(), "{:?}", compiled.warnings());
    }

    #[test]
    fn compile_rejects_undefined_references() {
        let text = r#"
            states { a = 0; }
            events { e; }
            transitions { a -e-> ghost; }
            initial a;
            permissions { P; }
            state_per { a: P; }
            per_rules { P: allow subject=* /x r; }
        "#;
        let err = SackPolicy::parse(text).unwrap().compile().unwrap_err();
        assert!(err.iter().any(|i| i.message.contains("ghost")));
    }

    #[test]
    fn permission_id_lookup() {
        let compiled = SackPolicy::parse(DOOR_POLICY).unwrap().compile().unwrap();
        let id = compiled.permission_id("CONTROL_CAR_DOORS").unwrap();
        assert_eq!(compiled.rules_of(id).len(), 1);
        assert!(compiled.permission_id("MISSING").is_none());
        let emergency = compiled.space().state_id("emergency").unwrap();
        assert_eq!(compiled.permissions_of(emergency).len(), 2);
    }
}
