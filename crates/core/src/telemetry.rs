//! Mergeable, delta-capable telemetry export for the fleet plane.
//!
//! A [`TelemetrySnapshot`] is the unit the `sack-fleet` aggregator pulls
//! from each kernel instance: every tracepoint fired-counter, every
//! non-empty (hook, verdict, cache-flag) latency histogram, and the flight
//! recorder's loss accounting — stamped with the instance id and a
//! monotonic capture generation.
//!
//! Two algebraic properties make aggregation trees fold freely, and are
//! pinned by property tests in `tests/fleet_rollout.rs`:
//!
//! * **merge is associative and commutative** — every field merges with an
//!   associative-commutative operator (counters and histograms by sum,
//!   the instance→generation map by union-with-max), so
//!   `merge(a, merge(b, c)) == merge(merge(a, b), c)` and partial folds
//!   from any subset of instances combine in any order;
//! * **delta replay is exact** — all counters are monotone, so
//!   `base.merged(&current.delta_since(&base)) == current` holds exactly
//!   and an aggregator can ship deltas instead of full snapshots.

use std::collections::BTreeMap;

use sack_kernel::trace::{TraceHook, TraceVerdict, Tracepoint};

use crate::stats::HistogramSnapshot;
use crate::trace::{CacheFlag, SackTracing};

/// Number of distinct (hook, verdict, cache-flag) histogram keys.
pub const TELEMETRY_HIST_KEYS: usize = TraceHook::ALL.len() * 2 * CacheFlag::ALL.len();

/// Dense key for one (hook, verdict, cache-flag) histogram.
pub fn hist_key(hook: TraceHook, verdict: TraceVerdict, flag: CacheFlag) -> u16 {
    ((hook.index() * 2 + verdict.index()) * CacheFlag::ALL.len() + flag.index()) as u16
}

/// Inverse of [`hist_key`]; `None` for out-of-range keys.
pub fn decode_hist_key(key: u16) -> Option<(TraceHook, TraceVerdict, CacheFlag)> {
    let key = key as usize;
    if key >= TELEMETRY_HIST_KEYS {
        return None;
    }
    let flag = CacheFlag::ALL[key % CacheFlag::ALL.len()];
    let rest = key / CacheFlag::ALL.len();
    let verdict = if rest.is_multiple_of(2) {
        TraceVerdict::Allow
    } else {
        TraceVerdict::Deny
    };
    let hook = TraceHook::ALL[rest / 2];
    Some((hook, verdict, flag))
}

/// One instance's (or a merged subtree's) telemetry at a capture point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Instance id → capture generation for every instance folded into this
    /// snapshot. A fresh capture has exactly one entry; merges union the
    /// maps keeping the highest generation per instance.
    pub instances: BTreeMap<u64, u64>,
    /// Fired count per tracepoint, in [`Tracepoint::ALL`] order.
    pub points: Vec<u64>,
    /// Non-empty latency histograms, keyed by [`hist_key`].
    pub hists: BTreeMap<u16, HistogramSnapshot>,
    /// Flight-recorder records ever claimed.
    pub flight_total: u64,
    /// Flight-recorder records lost to ring overflow.
    pub flight_dropped: u64,
    /// Flight-recorder loss per producer id (the satellite the overflow
    /// detector uses to localize lossy producers).
    pub flight_dropped_by_producer: BTreeMap<u64, u64>,
}

impl TelemetrySnapshot {
    /// Captures the current telemetry of one tracing recorder, stamping the
    /// recorder's instance id and the next capture generation.
    pub fn capture(tracing: &SackTracing) -> TelemetrySnapshot {
        let generation = tracing.next_generation();
        let mut instances = BTreeMap::new();
        instances.insert(tracing.instance(), generation);
        let points = Tracepoint::ALL
            .iter()
            .map(|p| tracing.hub().fired(*p))
            .collect();
        let hists = tracing
            .histogram_snapshots()
            .into_iter()
            .map(|(hook, verdict, flag, snap)| (hist_key(hook, verdict, flag), snap))
            .collect();
        let flight = tracing.flight();
        TelemetrySnapshot {
            instances,
            points,
            hists,
            flight_total: flight.total(),
            flight_dropped: flight.dropped(),
            flight_dropped_by_producer: flight.dropped_by_producer(),
        }
    }

    /// Fired count of one tracepoint (0 for an empty snapshot).
    pub fn point(&self, point: Tracepoint) -> u64 {
        self.points.get(point.index()).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`. Every field uses an associative and
    /// commutative operator, so fold order never changes the result.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (id, generation) in &other.instances {
            let slot = self.instances.entry(*id).or_insert(0);
            *slot = (*slot).max(*generation);
        }
        if self.points.len() < other.points.len() {
            self.points.resize(other.points.len(), 0);
        }
        for (a, b) in self.points.iter_mut().zip(&other.points) {
            *a += b;
        }
        for (key, hist) in &other.hists {
            self.hists.entry(*key).or_default().merge(hist);
        }
        self.flight_total += other.flight_total;
        self.flight_dropped += other.flight_dropped;
        for (producer, dropped) in &other.flight_dropped_by_producer {
            *self
                .flight_dropped_by_producer
                .entry(*producer)
                .or_insert(0) += dropped;
        }
    }

    /// Consuming form of [`TelemetrySnapshot::merge`], for fold chains.
    pub fn merged(mut self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        self.merge(other);
        self
    }

    /// The change since `base`, an earlier capture of the same instance(s).
    ///
    /// All counters are monotone, so for captures `base` (earlier) and
    /// `self` (later) the delta replays exactly:
    /// `base.merged(&delta) == self`. Zero-valued entries are elided so a
    /// quiet interval produces a near-empty delta.
    pub fn delta_since(&self, base: &TelemetrySnapshot) -> TelemetrySnapshot {
        let points = self
            .points
            .iter()
            .enumerate()
            .map(|(i, &v)| v.saturating_sub(base.points.get(i).copied().unwrap_or(0)))
            .collect();
        let mut hists = BTreeMap::new();
        for (key, hist) in &self.hists {
            let delta = match base.hists.get(key) {
                Some(prior) => hist_sub(hist, prior),
                None => hist.clone(),
            };
            if !delta.is_empty() {
                hists.insert(*key, delta);
            }
        }
        let mut dropped_by = BTreeMap::new();
        for (producer, dropped) in &self.flight_dropped_by_producer {
            let prior = base
                .flight_dropped_by_producer
                .get(producer)
                .copied()
                .unwrap_or(0);
            let delta = dropped.saturating_sub(prior);
            if delta > 0 {
                dropped_by.insert(*producer, delta);
            }
        }
        TelemetrySnapshot {
            instances: self.instances.clone(),
            points,
            hists,
            flight_total: self.flight_total.saturating_sub(base.flight_total),
            flight_dropped: self.flight_dropped.saturating_sub(base.flight_dropped),
            flight_dropped_by_producer: dropped_by,
        }
    }

    /// Total hook denials: deny-verdict `hook_exit` observations summed
    /// across hooks and cache flags.
    pub fn denials(&self) -> u64 {
        self.hists
            .iter()
            .filter_map(|(key, hist)| {
                decode_hist_key(*key).and_then(|(_, verdict, _)| {
                    (verdict == TraceVerdict::Deny).then(|| hist.count())
                })
            })
            .sum()
    }

    /// Total hook dispatches (`hook_exit` fired count).
    pub fn hook_exits(&self) -> u64 {
        self.point(Tracepoint::HookExit)
    }

    /// Decision-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.point(Tracepoint::CacheHit)
    }

    /// Decision-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.point(Tracepoint::CacheMiss)
    }

    /// SSM transitions.
    pub fn transitions(&self) -> u64 {
        self.point(Tracepoint::SsmTransition)
    }

    /// All hook latency observations folded into one distribution — the
    /// source of the fleet-level p50/95/99.
    pub fn hook_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for hist in self.hists.values() {
            merged.merge(hist);
        }
        merged
    }

    /// The producer that lost the most flight records, if any loss occurred.
    pub fn worst_flight_producer(&self) -> Option<(u64, u64)> {
        self.flight_dropped_by_producer
            .iter()
            .max_by_key(|(_, dropped)| **dropped)
            .map(|(producer, dropped)| (*producer, *dropped))
    }
}

/// Bucket-wise saturating subtraction (later minus earlier).
fn hist_sub(later: &HistogramSnapshot, earlier: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = later.clone();
    for (a, b) in out.buckets.iter_mut().zip(&earlier.buckets) {
        *a = a.saturating_sub(*b);
    }
    out.sum = out.sum.saturating_sub(earlier.sum);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sack_kernel::trace::{TraceEvent, TraceHub};

    fn sample(instance: u64, dispatches: u64, latency_ns: u64) -> TelemetrySnapshot {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        tracing.set_instance(instance);
        hub.set_enabled(true);
        for _ in 0..dispatches {
            hub.emit(&TraceEvent::HookEnter {
                hook: TraceHook::FileOpen,
            });
            hub.emit(&TraceEvent::HookExit {
                hook: TraceHook::FileOpen,
                verdict: TraceVerdict::Allow,
                latency_ns,
            });
        }
        TelemetrySnapshot::capture(&tracing)
    }

    #[test]
    fn key_encoding_round_trips() {
        let mut seen = std::collections::BTreeSet::new();
        for hook in TraceHook::ALL {
            for verdict in [TraceVerdict::Allow, TraceVerdict::Deny] {
                for flag in CacheFlag::ALL {
                    let key = hist_key(hook, verdict, flag);
                    assert!(seen.insert(key), "key collision at {key}");
                    assert_eq!(decode_hist_key(key), Some((hook, verdict, flag)));
                }
            }
        }
        assert_eq!(seen.len(), TELEMETRY_HIST_KEYS);
        assert_eq!(decode_hist_key(TELEMETRY_HIST_KEYS as u16), None);
    }

    #[test]
    fn capture_stamps_instance_and_generation() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(hub);
        tracing.set_instance(42);
        let first = TelemetrySnapshot::capture(&tracing);
        let second = TelemetrySnapshot::capture(&tracing);
        assert_eq!(first.instances.len(), 1);
        assert!(first.instances[&42] < second.instances[&42]);
    }

    #[test]
    fn merge_sums_counters_and_unions_instances() {
        let a = sample(1, 3, 100);
        let b = sample(2, 5, 2_000);
        let merged = a.clone().merged(&b);
        assert_eq!(merged.instances.len(), 2);
        assert_eq!(merged.hook_exits(), 8);
        assert_eq!(merged.hook_latency().count(), 8);
        assert_eq!(
            merged.hook_latency().sum,
            a.hook_latency().sum + b.hook_latency().sum
        );
    }

    #[test]
    fn delta_replay_reconstructs_later_capture() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        tracing.set_instance(7);
        hub.set_enabled(true);
        hub.emit(&TraceEvent::HookEnter {
            hook: TraceHook::FileOpen,
        });
        hub.emit(&TraceEvent::HookExit {
            hook: TraceHook::FileOpen,
            verdict: TraceVerdict::Deny,
            latency_ns: 500,
        });
        let base = TelemetrySnapshot::capture(&tracing);
        for epoch in 0..3 {
            hub.emit(&TraceEvent::RcuEpochBump { epoch });
        }
        let current = TelemetrySnapshot::capture(&tracing);
        let delta = current.delta_since(&base);
        assert_eq!(delta.point(Tracepoint::RcuEpochBump), 3);
        assert!(delta.hists.is_empty(), "quiet hooks elide their histograms");
        assert_eq!(base.clone().merged(&delta), current);
    }

    #[test]
    fn derived_rates_read_the_right_keys() {
        let hub = TraceHub::new();
        let tracing = SackTracing::attach(Arc::clone(&hub));
        hub.set_enabled(true);
        hub.emit(&TraceEvent::HookEnter {
            hook: TraceHook::FileOpen,
        });
        hub.emit(&TraceEvent::CacheHit);
        hub.emit(&TraceEvent::HookExit {
            hook: TraceHook::FileOpen,
            verdict: TraceVerdict::Deny,
            latency_ns: 90,
        });
        let snap = TelemetrySnapshot::capture(&tracing);
        assert_eq!(snap.denials(), 1);
        assert_eq!(snap.cache_hits(), 1);
        assert_eq!(snap.cache_misses(), 0);
        assert_eq!(snap.hook_exits(), 1);
    }
}
