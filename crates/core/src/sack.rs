//! The SACK security module itself: situation state machine + adaptive
//! policy enforcement, deployable as **independent SACK** (own MAC rules)
//! or **SACK-enhanced AppArmor** (patches AppArmor's policies on situation
//! transitions). Paper §III-E-3.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sack_apparmor::profile::FilePerms;
use sack_apparmor::AppArmor;
use sack_kernel::cred::Capability;
use sack_kernel::error::{Errno, KernelError, KernelResult};
use sack_kernel::kernel::Kernel;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectKind, ObjectRef, SecurityModule};
use sack_kernel::sync::Rcu;
use sack_kernel::trace::{TraceEvent, TraceHub};
use sack_kernel::types::Pid;

use crate::audit::{AuditLog, AuditRecord};
use crate::cache::{CachedOutcome, DecisionKey, PerCpuCache};
use crate::enhance::{validate_for_enhancement, AppArmorEnhancer, EnhanceError};
use crate::eventplane::{BackpressurePolicy, EventPlane};
use crate::policy::{CompiledPolicy, ParsePolicyError, PolicyIssue, SackPolicy};
use crate::rules::SubjectCtx;
use crate::situation::StateId;
use crate::ssm::{CoalescedOutcome, Ssm, TransitionOutcome};
use crate::stats::ShardedCounter;
use crate::trace::SackTracing;

/// Deployment mode of the SACK module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementMode {
    /// SACK checks accesses against its own per-state MAC rules.
    Independent,
    /// SACK patches AppArmor profiles on transitions; per-access checks are
    /// AppArmor's alone.
    EnhancedAppArmor,
}

impl fmt::Display for EnforcementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnforcementMode::Independent => f.write_str("independent"),
            EnforcementMode::EnhancedAppArmor => f.write_str("enhanced-apparmor"),
        }
    }
}

/// Errors raised by the SACK module.
#[derive(Debug)]
pub enum SackError {
    /// Policy text did not parse.
    Parse(ParsePolicyError),
    /// Policy failed validation; all issues are included.
    Invalid(Vec<PolicyIssue>),
    /// The state machine could not be built.
    Ssm(crate::ssm::BuildSsmError),
    /// An event name not declared in the policy.
    UnknownEvent(String),
    /// Enhanced-mode policy application failed.
    Enhance(EnhanceError),
    /// Kernel error (securityfs registration, ...).
    Kernel(KernelError),
}

impl fmt::Display for SackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SackError::Parse(e) => write!(f, "policy parse error: {e}"),
            SackError::Invalid(issues) => {
                write!(f, "policy validation failed:")?;
                for issue in issues {
                    write!(f, "\n  {issue}")?;
                }
                Ok(())
            }
            SackError::Ssm(e) => write!(f, "state machine error: {e}"),
            SackError::UnknownEvent(name) => write!(f, "unknown situation event `{name}`"),
            SackError::Enhance(e) => write!(f, "enhanced-mode error: {e}"),
            SackError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for SackError {}

impl From<ParsePolicyError> for SackError {
    fn from(e: ParsePolicyError) -> Self {
        SackError::Parse(e)
    }
}

impl From<KernelError> for SackError {
    fn from(e: KernelError) -> Self {
        SackError::Kernel(e)
    }
}

/// Counters exposed through `/sys/kernel/security/SACK/stats`.
///
/// Each counter is striped across cache-line-padded per-thread shards
/// ([`ShardedCounter`]) so concurrent hooks increment without bouncing a
/// shared line; `load` folds the stripes, so readers (the securityfs
/// `stats` node, tests) still see exact totals.
#[derive(Debug, Default)]
pub struct SackStats {
    /// Access checks performed on protected objects.
    pub checks: ShardedCounter,
    /// Denials issued.
    pub denials: ShardedCounter,
    /// Accesses passed through because the object is unprotected.
    pub unprotected: ShardedCounter,
    /// Checks bypassed via `CAP_MAC_OVERRIDE`.
    pub overrides: ShardedCounter,
    /// Situation events received through SACKfs.
    pub events_received: ShardedCounter,
    /// Events rejected as unknown.
    pub events_unknown: ShardedCounter,
    /// Decision-cache hits (access granted without re-evaluating rules).
    pub cache_hits: ShardedCounter,
    /// Decision-cache misses (full evaluation performed).
    pub cache_misses: ShardedCounter,
}

/// Process-global source of [`ActivePolicy::load_generation`] values.
/// Starts at 1 so that generation 0 can serve as the event frames'
/// "no hint" tag.
static NEXT_LOAD_GENERATION: AtomicU64 = AtomicU64::new(1);

/// A loaded policy with its running state machine; swapped atomically on
/// policy reload.
pub struct ActivePolicy {
    /// The situation state machine.
    pub ssm: Ssm,
    /// The compiled policy.
    pub policy: CompiledPolicy,
    /// Process-unique generation assigned at construction. Event-id hints
    /// resolved against this snapshot's event space carry this value
    /// ([`crate::eventplane::EventFrame::set_hint`]), so the event plane's
    /// drain can tell whether a submit-time hint still names the snapshot
    /// it is about to deliver into: a policy reload swaps the whole
    /// snapshot — generation included — in one RCU publish, and a stale
    /// hint simply falls back to resolution by name.
    pub load_generation: u64,
}

impl ActivePolicy {
    fn from_text(text: &str) -> Result<ActivePolicy, SackError> {
        let ast = SackPolicy::parse(text)?;
        let policy = ast.compile().map_err(SackError::Invalid)?;
        let ssm = Ssm::new(
            policy.space().clone(),
            policy.transitions(),
            policy.initial(),
        )
        .map_err(SackError::Ssm)?;
        Ok(ActivePolicy {
            ssm,
            policy,
            load_generation: NEXT_LOAD_GENERATION.fetch_add(1, Ordering::Relaxed),
        })
    }
}

impl fmt::Debug for ActivePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivePolicy")
            .field("current", &self.ssm.current_name())
            .field("policy", &self.policy)
            .finish()
    }
}

/// The SACK security module.
///
/// Construct with [`Sack::independent`] or [`Sack::enhanced_apparmor`],
/// stack it (first!) into the kernel via
/// [`sack_kernel::KernelBuilder::security_module`], then call
/// [`Sack::attach`] once the kernel is booted to register the SACKfs nodes.
pub struct Sack {
    mode: EnforcementMode,
    /// RCU-published policy snapshot: hot-path hooks read it wait-free; a
    /// reload swaps in a whole new [`ActivePolicy`].
    active: Rcu<ActivePolicy>,
    enhancer: Option<AppArmorEnhancer>,
    /// Oracle resolving `subject=profile:` selectors in independent mode.
    profile_oracle: Rcu<Option<Arc<AppArmor>>>,
    stats: SackStats,
    audit: AuditLog,
    /// Set at [`Sack::attach`]; used to timestamp audit records.
    kernel: Rcu<Option<std::sync::Weak<Kernel>>>,
    /// Global decision epoch: bumped on policy reload, oracle rewiring and
    /// situation transitions. Folded into every [`DecisionKey`], so cached
    /// decisions from before any such change self-invalidate.
    policy_epoch: AtomicU64,
    /// Ablation/debug switch for the decision cache (default on).
    cache_enabled: AtomicBool,
    /// Ablation/debug switch for the unified per-state DFA matcher on the
    /// cache-miss path (default on; off falls back to the linear scan).
    dfa_enabled: AtomicBool,
    /// Opt-in negative (denial) caching (default off): replayed denials
    /// still count, but the audit record is emitted only once.
    negative_cache_enabled: AtomicBool,
    /// Per-task decision caches, RCU-published copy-on-write (entries are
    /// added on a task's first mediated access and dropped on `task_free`).
    /// Each entry is a per-CPU array of instances, so concurrent hooks of
    /// the same task never share a cache line on the lookup path.
    caches: Rcu<HashMap<Pid, Arc<PerCpuCache>>>,
    /// sack-trace recorder, wired once at [`Sack::attach`] (or explicitly
    /// via [`Sack::install_tracing`]). A `OnceLock` rather than an `Rcu`
    /// because the hot path reads it on every check: the untraced cost must
    /// stay at one acquire load + branch.
    tracing: OnceLock<Arc<SackTracing>>,
    /// The async batched event plane behind `SACK/sds/ring`, created at
    /// [`Sack::attach`] (or explicitly via [`Sack::install_event_plane`]).
    /// `OnceLock` because the plane holds a `Weak` back-reference that can
    /// only exist once the module lives in an `Arc`.
    plane: OnceLock<Arc<EventPlane>>,
}

impl Sack {
    /// Builds an independent-SACK module from policy text.
    ///
    /// # Errors
    ///
    /// Parse/validation/state-machine errors.
    pub fn independent(policy_text: &str) -> Result<Arc<Sack>, SackError> {
        let active = ActivePolicy::from_text(policy_text)?;
        Ok(Arc::new(Sack {
            mode: EnforcementMode::Independent,
            active: Rcu::new(active),
            enhancer: None,
            profile_oracle: Rcu::new(None),
            stats: SackStats::default(),
            audit: AuditLog::new(),
            kernel: Rcu::new(None),
            policy_epoch: AtomicU64::new(0),
            cache_enabled: AtomicBool::new(true),
            dfa_enabled: AtomicBool::new(true),
            negative_cache_enabled: AtomicBool::new(false),
            caches: Rcu::new(HashMap::new()),
            tracing: OnceLock::new(),
            plane: OnceLock::new(),
        }))
    }

    /// Builds a SACK-enhanced-AppArmor module: validates that every rule
    /// targets a loaded AppArmor profile, then applies the initial state.
    ///
    /// # Errors
    ///
    /// Parse/validation errors, plus enhanced-mode validation failures.
    pub fn enhanced_apparmor(
        policy_text: &str,
        apparmor: Arc<AppArmor>,
    ) -> Result<Arc<Sack>, SackError> {
        let active = ActivePolicy::from_text(policy_text)?;
        validate_for_enhancement(&active.policy, &apparmor.policy().profile_names())
            .map_err(SackError::Enhance)?;
        let enhancer = AppArmorEnhancer::new(apparmor);
        enhancer
            .apply_state(&active.policy, active.ssm.current())
            .map_err(SackError::Enhance)?;
        Ok(Arc::new(Sack {
            mode: EnforcementMode::EnhancedAppArmor,
            active: Rcu::new(active),
            enhancer: Some(enhancer),
            profile_oracle: Rcu::new(None),
            stats: SackStats::default(),
            audit: AuditLog::new(),
            kernel: Rcu::new(None),
            policy_epoch: AtomicU64::new(0),
            cache_enabled: AtomicBool::new(true),
            dfa_enabled: AtomicBool::new(true),
            negative_cache_enabled: AtomicBool::new(false),
            caches: Rcu::new(HashMap::new()),
            tracing: OnceLock::new(),
            plane: OnceLock::new(),
        }))
    }

    /// The deployment mode.
    pub fn mode(&self) -> EnforcementMode {
        self.mode
    }

    /// Counter snapshot source.
    pub fn stats(&self) -> &SackStats {
        &self.stats
    }

    /// Configures the profile oracle used to resolve `subject=profile:`
    /// selectors in independent mode.
    pub fn set_profile_oracle(&self, apparmor: Arc<AppArmor>) {
        if let Some(tracing) = self.tracing.get() {
            apparmor.policy().set_trace_hub(Arc::clone(tracing.hub()));
        }
        self.profile_oracle.store(Some(apparmor));
        let epoch = self.policy_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.trace_emit(|| TraceEvent::RcuEpochBump { epoch });
        self.trace_emit(|| TraceEvent::CacheInvalidate { epoch });
    }

    /// Snapshot of the active policy (wait-free RCU read).
    pub fn active(&self) -> Arc<ActivePolicy> {
        self.active.read()
    }

    /// Name of the current situation state.
    pub fn current_state_name(&self) -> String {
        let active = self.active.read();
        active.ssm.current_name().to_string()
    }

    /// The current decision epoch (telemetry for tests and stats).
    pub fn policy_epoch(&self) -> u64 {
        self.policy_epoch.load(Ordering::SeqCst)
    }

    /// Enables or disables the per-task decision cache (enabled by
    /// default). Used by the ablation benchmarks; disabling never changes
    /// decisions, only the cost of reaching them.
    pub fn set_decision_cache_enabled(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::SeqCst);
    }

    /// True if the decision cache is enabled.
    pub fn decision_cache_enabled(&self) -> bool {
        self.cache_enabled.load(Ordering::SeqCst)
    }

    /// Enables or disables the unified per-state DFA matcher on the
    /// cache-miss path (enabled by default). Disabled, the cold path falls
    /// back to the O(rules) protected-set + rule-scan pipeline; decisions
    /// are identical either way (the scan is the DFA's differential
    /// oracle), only the cost changes. Used by the ablation benchmarks.
    ///
    /// The switch governs the whole stacked path: any enhanced or oracle
    /// AppArmor layer wired to this instance has its `PolicyDb` profile
    /// DFAs toggled in the same call, so a differential run compares pure
    /// DFA stacks against pure scan stacks.
    pub fn set_dfa_matcher_enabled(&self, enabled: bool) {
        self.dfa_enabled.store(enabled, Ordering::SeqCst);
        if let Some(enhancer) = &self.enhancer {
            enhancer
                .apparmor()
                .policy()
                .set_dfa_matcher_enabled(enabled);
        }
        if let Some(oracle) = (*self.profile_oracle.read()).as_ref() {
            oracle.policy().set_dfa_matcher_enabled(enabled);
        }
    }

    /// True if the unified DFA matcher is enabled.
    pub fn dfa_matcher_enabled(&self) -> bool {
        self.dfa_enabled.load(Ordering::SeqCst)
    }

    /// Opts in (or back out of) negative decision caching: with it on,
    /// denials are cached and replayed like grants — the denial counter
    /// still increments on every refusal, but the audit log receives the
    /// record only from the first, uncached evaluation (exactly once per
    /// distinct decision). Off (the default), every denial takes the slow
    /// path and is audited individually.
    pub fn set_negative_cache_enabled(&self, enabled: bool) {
        self.negative_cache_enabled.store(enabled, Ordering::SeqCst);
    }

    /// True if negative (denial) caching is opted in.
    pub fn negative_cache_enabled(&self) -> bool {
        self.negative_cache_enabled.load(Ordering::SeqCst)
    }

    /// Number of tasks currently holding a decision cache.
    pub fn cached_task_count(&self) -> usize {
        self.caches.read().len()
    }

    /// Registers the SACKfs nodes (`events`, `state`, `policy`, `stats`)
    /// under `/sys/kernel/security/SACK/`.
    ///
    /// # Errors
    ///
    /// securityfs registration errors.
    pub fn attach(self: &Arc<Self>, kernel: &Arc<Kernel>) -> Result<(), SackError> {
        let tracing = self.install_tracing(Arc::clone(kernel.trace()));
        tracing.set_instance(kernel.instance().0);
        self.install_event_plane(EventPlane::DEFAULT_CAPACITY, BackpressurePolicy::DropOldest);
        crate::sackfs::register(self, kernel)?;
        self.kernel.store(Some(Arc::downgrade(kernel)));
        Ok(())
    }

    /// Creates the async batched event plane (the fast path behind
    /// `SACK/sds/ring`). Called by [`Sack::attach`] with the default
    /// capacity and drop-oldest policy; benches and tests that want a
    /// different ring size or the blocking policy call it first — the first
    /// configuration wins and later calls return the existing plane.
    pub fn install_event_plane(
        self: &Arc<Self>,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Arc<EventPlane> {
        Arc::clone(
            self.plane
                .get_or_init(|| EventPlane::new(self, capacity, policy)),
        )
    }

    /// The attached event plane, if one has been installed.
    pub fn event_plane(&self) -> Option<&Arc<EventPlane>> {
        self.plane.get()
    }

    /// Wires the sack-trace recorder to `hub`: attaches the histogram +
    /// flight-recorder consumer and forwards the hub to every AppArmor
    /// policy layer this instance drives (for `profile_recompile` events).
    ///
    /// Called by [`Sack::attach`] with the booted kernel's hub; benches and
    /// tests that drive hooks without a kernel call it directly. Idempotent:
    /// the first hub wins and later calls return the existing recorder.
    pub fn install_tracing(&self, hub: Arc<TraceHub>) -> Arc<SackTracing> {
        let tracing = self.tracing.get_or_init(|| SackTracing::attach(hub));
        if let Some(enhancer) = &self.enhancer {
            enhancer
                .apparmor()
                .policy()
                .set_trace_hub(Arc::clone(tracing.hub()));
        }
        if let Some(oracle) = (*self.profile_oracle.read()).as_ref() {
            oracle.policy().set_trace_hub(Arc::clone(tracing.hub()));
        }
        Arc::clone(tracing)
    }

    /// The attached sack-trace recorder, if tracing has been wired.
    pub fn tracing(&self) -> Option<&Arc<SackTracing>> {
        self.tracing.get()
    }

    /// Emits a trace event if (and only if) tracing is wired *and* enabled.
    /// `build` runs only on the enabled path, so disabled probes never
    /// construct the event. Untraced cost: one `OnceLock` load + branch.
    #[inline]
    pub(crate) fn trace_emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(tracing) = self.tracing.get() {
            let hub = tracing.hub();
            if hub.enabled() {
                hub.emit(&build());
            }
        }
    }

    /// The denial audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    pub(crate) fn now(&self) -> std::time::Duration {
        (*self.kernel.read())
            .as_ref()
            .and_then(std::sync::Weak::upgrade)
            .map(|k| k.clock().now())
            .unwrap_or(std::time::Duration::ZERO)
    }

    /// The decision cache for `pid`, created on first use.
    fn task_cache(&self, pid: Pid) -> Arc<PerCpuCache> {
        if let Some(cache) = self.caches.read().get(&pid) {
            return Arc::clone(cache);
        }
        self.caches.update(|map| match map.get(&pid) {
            // Lost a race with another hook of the same task: reuse.
            Some(cache) => (map.clone(), Arc::clone(cache)),
            None => {
                let cache = Arc::new(PerCpuCache::new());
                let mut next = map.clone();
                next.insert(pid, Arc::clone(&cache));
                (next, cache)
            }
        })
    }

    /// Delivers a situation event by name at simulated time `now`
    /// (Algorithm 1 step). This is the entry point SACKfs calls for every
    /// `write(2)` on `/sys/kernel/security/SACK/events`.
    ///
    /// # Errors
    ///
    /// [`SackError::UnknownEvent`] for undeclared events;
    /// [`SackError::Enhance`] if enhanced-mode profile patching fails.
    pub fn deliver_event(&self, name: &str, now: Duration) -> Result<TransitionOutcome, SackError> {
        self.stats.events_received.fetch_add(1, Ordering::Relaxed);
        let active = self.active();
        let outcome = active.ssm.deliver_by_name(name, now).map_err(|unknown| {
            self.stats.events_unknown.fetch_add(1, Ordering::Relaxed);
            SackError::UnknownEvent(unknown)
        })?;
        if let TransitionOutcome::Transitioned { from, to } = outcome {
            if let Some(enhancer) = &self.enhancer {
                enhancer
                    .apply_state(&active.policy, to)
                    .map_err(SackError::Enhance)?;
            }
            self.trace_emit(|| {
                let space = active.ssm.space();
                TraceEvent::SsmTransition {
                    from: space.state(from).name.clone(),
                    to: space.state(to).name.clone(),
                    event: name.to_string(),
                }
            });
            // The situation changed: retire every cached decision. (The
            // state id already keys the cache; the epoch bump additionally
            // covers enhanced-mode profile patches and keeps transition
            // semantics uniform across modes.)
            let epoch = self.policy_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            self.trace_emit(|| TraceEvent::RcuEpochBump { epoch });
            // Exactly one invalidate per bump — never one per cache slot;
            // the interleaving model in sack-analyze pins this down.
            self.trace_emit(|| TraceEvent::CacheInvalidate { epoch });
        }
        Ok(outcome)
    }

    /// Delivers a whole drain batch of event names as **one** coalesced SSM
    /// publish: for the entire batch, at most one transition, one
    /// `ssm_transition` trace, one epoch bump and one cache invalidation —
    /// the amortization the event plane exists for (DESIGN.md §11).
    ///
    /// Unknown names are counted in `events_unknown` and skipped rather
    /// than failing the batch: a frame validated at submit time can still
    /// be orphaned by a policy reload between enqueue and drain, and one
    /// stale frame must not poison its batch-mates.
    ///
    /// # Errors
    ///
    /// [`SackError::Enhance`] if enhanced-mode profile patching fails.
    pub fn deliver_coalesced<S: AsRef<str>>(
        &self,
        names: &[S],
        now: Duration,
    ) -> Result<CoalescedOutcome, SackError> {
        self.stats
            .events_received
            .fetch_add(names.len() as u64, Ordering::Relaxed);
        let active = self.active();
        let space = active.ssm.space();
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            match space.event_id(name.as_ref()) {
                Some(id) => ids.push(id),
                None => {
                    self.stats.events_unknown.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.publish_coalesced(&active, &ids, now)
    }

    /// Frame-based twin of [`Sack::deliver_coalesced`] — the event plane's
    /// drain entry point. A frame whose submit-time id hint was resolved
    /// under this exact policy snapshot (generation match) skips the
    /// name-to-id lookup entirely; any other frame — direct-API
    /// submissions, or frames orphaned by a reload between enqueue and
    /// drain — resolves by name as the string path does.
    ///
    /// # Errors
    ///
    /// [`SackError::Enhance`] if enhanced-mode profile patching fails.
    pub(crate) fn deliver_coalesced_frames(
        &self,
        frames: &[crate::eventplane::EventFrame],
        now: Duration,
    ) -> Result<CoalescedOutcome, SackError> {
        self.stats
            .events_received
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        let active = self.active();
        let space = active.ssm.space();
        let gen = active.load_generation;
        let mut ids = Vec::with_capacity(frames.len());
        for frame in frames {
            match frame.hint(gen).or_else(|| space.event_id(frame.name())) {
                Some(id) => ids.push(id),
                None => {
                    self.stats.events_unknown.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.publish_coalesced(&active, &ids, now)
    }

    /// Shared tail of the coalesced-delivery paths: one dry-run SSM pass
    /// over `ids`, then — only if the batch's net effect is a transition —
    /// one publish, one trace, one epoch bump, one cache invalidation.
    fn publish_coalesced(
        &self,
        active: &ActivePolicy,
        ids: &[crate::situation::EventId],
        now: Duration,
    ) -> Result<CoalescedOutcome, SackError> {
        let space = active.ssm.space();
        let outcome = active.ssm.deliver_coalesced(ids, now);
        if outcome.transitioned() {
            let (from, to) = (outcome.from, outcome.to);
            if let Some(enhancer) = &self.enhancer {
                enhancer
                    .apply_state(&active.policy, to)
                    .map_err(SackError::Enhance)?;
            }
            self.trace_emit(|| TraceEvent::SsmTransition {
                from: space.state(from).name.clone(),
                to: space.state(to).name.clone(),
                event: outcome
                    .last_event
                    .map(|e| space.event(e).name.clone())
                    .unwrap_or_default(),
            });
            // Same invalidation protocol as deliver_event, but once per
            // batch instead of once per effective transition.
            let epoch = self.policy_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            self.trace_emit(|| TraceEvent::RcuEpochBump { epoch });
            self.trace_emit(|| TraceEvent::CacheInvalidate { epoch });
        }
        Ok(outcome)
    }

    /// Replaces the loaded policy atomically (a SACKfs `policy` write).
    /// The state machine restarts from the new policy's initial state.
    ///
    /// # Errors
    ///
    /// Same conditions as construction; on error the old policy stays
    /// active.
    pub fn reload_policy(&self, text: &str) -> Result<Vec<PolicyIssue>, SackError> {
        let next = ActivePolicy::from_text(text)?;
        if let Some(enhancer) = &self.enhancer {
            validate_for_enhancement(&next.policy, &enhancer.apparmor().policy().profile_names())
                .map_err(SackError::Enhance)?;
            enhancer
                .apply_state(&next.policy, next.ssm.current())
                .map_err(SackError::Enhance)?;
        }
        let warnings = next.policy.warnings().to_vec();
        // Publish first, then bump the epoch: a hook that observes the new
        // epoch is guaranteed (SeqCst) to also observe the new policy, so no
        // cache entry can pair a new epoch with an old-policy decision.
        self.active.store(next);
        let epoch = self.policy_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.trace_emit(|| TraceEvent::PolicyPublish { epoch });
        self.trace_emit(|| TraceEvent::RcuEpochBump { epoch });
        self.trace_emit(|| TraceEvent::CacheInvalidate { epoch });
        Ok(warnings)
    }

    /// The independent-mode access check shared by the file hooks.
    ///
    /// Fast path: an epoch-tagged per-task cache replays previous
    /// decisions without touching the protected set, the rule tables or
    /// the profile oracle. Denials are not cached unless negative caching
    /// is opted in — by default every refusal takes the slow path so the
    /// denial counter and the audit log stay exact; with negative caching
    /// on, a replayed denial still counts but is audited only once.
    /// Counter semantics are identical with the cache on or off: a hit
    /// bumps the same counters the slow path would have.
    ///
    /// Cold path: one walk of the state's unified DFA answers both the
    /// protected-set membership and the rule decision in O(|path|)
    /// independent of rule count; `set_dfa_matcher_enabled(false)` falls
    /// back to the original O(rules) scan pipeline (the differential
    /// oracle), which must decide identically.
    fn check_access(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        requested: FilePerms,
    ) -> KernelResult<()> {
        if self.mode != EnforcementMode::Independent {
            return Ok(()); // enhanced mode: AppArmor does the checking
        }
        // Pipes and sockets have synthetic paths; SACK mediates filesystem
        // objects (incl. device nodes), as in the paper's case study.
        if matches!(obj.kind, ObjectKind::Pipe | ObjectKind::Socket) {
            return Ok(());
        }
        // Epoch before snapshot: seeing an epoch implies (SeqCst) seeing at
        // least the policy/oracle state published before that epoch, so an
        // entry tagged with it can never replay an older policy's decision.
        let epoch = self.policy_epoch.load(Ordering::SeqCst);
        let oracle = self.profile_oracle.read();
        let confinement_gen = (*oracle)
            .as_ref()
            .map_or(0, |aa| aa.confinement_generation());
        let active = self.active.read();
        let state: StateId = active.ssm.current();
        let mac_override = ctx.cred.capable(Capability::MacOverride);
        let key = DecisionKey {
            epoch,
            confinement_gen,
            state: state.0,
            uid: ctx.cred.uid.0,
            mac_override,
            exe: ctx.exe.as_ref().map(|p| p.as_str()),
            path: obj.path.as_str(),
            perms: requested.bits(),
        };
        let cache = self
            .cache_enabled
            .load(Ordering::Relaxed)
            .then(|| self.task_cache(ctx.pid));
        if let Some(cache) = &cache {
            if let Some(outcome) = cache.lookup(&key) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.trace_emit(|| TraceEvent::CacheHit);
                let counter = match outcome {
                    CachedOutcome::Unprotected => &self.stats.unprotected,
                    CachedOutcome::Override => &self.stats.overrides,
                    CachedOutcome::Allow | CachedOutcome::Deny => &self.stats.checks,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                if outcome == CachedOutcome::Deny {
                    // Replayed denial: counted like the slow path, but the
                    // audit record was already emitted by the first
                    // (uncached) evaluation — exactly once per decision.
                    self.stats.denials.fetch_add(1, Ordering::Relaxed);
                    return Err(KernelError::with_context(Errno::EACCES, "sack"));
                }
                return Ok(());
            }
            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.trace_emit(|| TraceEvent::CacheMiss);
        }
        let record = |outcome: CachedOutcome| {
            if let Some(cache) = &cache {
                cache.insert(&key, outcome);
            }
        };
        // Cold path: one unified-DFA walk answers protected-set membership
        // and the rule decision together; the legacy pipeline re-derives
        // both with O(rules) scans when the matcher is toggled off.
        let (protected, permitted) = if self.dfa_enabled.load(Ordering::Relaxed) {
            let profile = (*oracle)
                .as_ref()
                .and_then(|aa| aa.current_profile(ctx.pid));
            let subject = SubjectCtx {
                uid: ctx.cred.uid.0,
                exe: ctx.exe.as_ref().map(|p| p.as_str()),
                profile: profile.as_deref(),
            };
            let decision =
                active
                    .policy
                    .state_dfa(state)
                    .decide(&subject, obj.path.as_str(), requested);
            (decision.protected, decision.permitted)
        } else {
            let protected = active.policy.protected().contains(obj.path.as_str());
            let permitted = protected && !mac_override && {
                let profile = (*oracle)
                    .as_ref()
                    .and_then(|aa| aa.current_profile(ctx.pid));
                let subject = SubjectCtx {
                    uid: ctx.cred.uid.0,
                    exe: ctx.exe.as_ref().map(|p| p.as_str()),
                    profile: profile.as_deref(),
                };
                active
                    .policy
                    .state_rules(state)
                    .permits(&subject, obj.path.as_str(), requested)
            };
            (protected, permitted)
        };
        if !protected {
            self.stats.unprotected.fetch_add(1, Ordering::Relaxed);
            record(CachedOutcome::Unprotected);
            return Ok(());
        }
        if mac_override {
            self.stats.overrides.fetch_add(1, Ordering::Relaxed);
            record(CachedOutcome::Override);
            return Ok(());
        }
        self.stats.checks.fetch_add(1, Ordering::Relaxed);
        if permitted {
            record(CachedOutcome::Allow);
            Ok(())
        } else {
            self.stats.denials.fetch_add(1, Ordering::Relaxed);
            let seq = self.audit.push(AuditRecord {
                seq: 0, // assigned by push
                at: self.now(),
                pid: ctx.pid,
                uid: ctx.cred.uid.0,
                exe: ctx.exe.as_ref().map(|p| p.as_str().to_string()),
                path: obj.path.as_str().to_string(),
                requested,
                state: active.ssm.space().state(state).name.clone(),
            });
            self.trace_emit(|| TraceEvent::AuditEmit { seq });
            if self.negative_cache_enabled.load(Ordering::Relaxed) {
                record(CachedOutcome::Deny);
            }
            Err(KernelError::with_context(Errno::EACCES, "sack"))
        }
    }
}

impl SecurityModule for Sack {
    fn name(&self) -> &'static str {
        "sack"
    }

    fn file_open(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, mask: AccessMask) -> KernelResult<()> {
        self.check_access(ctx, obj, FilePerms::from_access_mask(mask))
    }

    fn file_permission(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        self.check_access(ctx, obj, FilePerms::from_access_mask(mask))
    }

    fn file_ioctl(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, _cmd: u32) -> KernelResult<()> {
        self.check_access(ctx, obj, FilePerms::IOCTL)
    }

    fn file_mmap(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, _mask: AccessMask) -> KernelResult<()> {
        self.check_access(ctx, obj, FilePerms::MMAP)
    }

    fn inode_unlink(&self, ctx: &HookCtx, obj: &ObjectRef<'_>) -> KernelResult<()> {
        self.check_access(ctx, obj, FilePerms::WRITE)
    }

    fn inode_rename(
        &self,
        ctx: &HookCtx,
        old: &ObjectRef<'_>,
        new: &sack_kernel::KPath,
    ) -> KernelResult<()> {
        self.check_access(ctx, old, FilePerms::WRITE)?;
        let new_obj = ObjectRef {
            path: new,
            kind: old.kind,
            dev: None,
        };
        self.check_access(ctx, &new_obj, FilePerms::WRITE)
    }

    fn task_free(&self, pid: Pid) {
        // Drop the task's decision cache; skip the copy-and-swap for tasks
        // that never triggered a mediated access.
        if self.caches.read().contains_key(&pid) {
            self.caches.update(|map| {
                let mut next = map.clone();
                next.remove(&pid);
                (next, ())
            });
        }
    }
}

impl fmt::Debug for Sack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sack")
            .field("mode", &self.mode)
            .field("state", &self.current_state_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_kernel::cred::Credentials;
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::path::KPath;
    use sack_kernel::types::Mode;

    const DOOR_POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { NORMAL; CONTROL_CAR_DOORS; }
        state_per {
            normal: NORMAL;
            emergency: NORMAL, CONTROL_CAR_DOORS;
        }
        per_rules {
            NORMAL: allow subject=* /dev/car/** r;
            CONTROL_CAR_DOORS: allow subject=/usr/bin/rescue* /dev/car/** wi;
        }
    "#;

    fn boot_independent() -> (Arc<Kernel>, Arc<Sack>) {
        let sack = Sack::independent(DOOR_POLICY).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/dev/car").unwrap())
            .unwrap();
        // Pre-create device files (as regular files; device semantics are
        // exercised in the vehicle crate).
        for name in ["door0", "window0"] {
            kernel
                .vfs()
                .create_file(
                    &KPath::new(&format!("/dev/car/{name}")).unwrap(),
                    Mode(0o666),
                    sack_kernel::Uid::ROOT,
                    sack_kernel::Gid(0),
                )
                .unwrap();
        }
        for exe in ["/usr/bin/rescue_daemon", "/usr/bin/media_app"] {
            kernel
                .vfs()
                .create_file(
                    &KPath::new(exe).unwrap(),
                    Mode::EXEC,
                    sack_kernel::Uid::ROOT,
                    sack_kernel::Gid(0),
                )
                .unwrap();
        }
        (kernel, sack)
    }

    #[test]
    fn independent_mode_enforces_per_state() {
        let (kernel, sack) = boot_independent();
        let rescue = kernel.spawn(Credentials::user(100, 100));
        rescue.exec("/usr/bin/rescue_daemon").unwrap();

        // Normal state: write to door denied even for the rescue daemon.
        let err = rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .unwrap_err();
        assert_eq!(err.context(), Some("sack"));
        // Reads are fine (NORMAL permission).
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::read_only())
            .is_ok());

        // Crash: emergency state grants CONTROL_CAR_DOORS to rescue*.
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_ok());

        // Other apps still cannot.
        let media = kernel.spawn(Credentials::user(200, 200));
        media.exec("/usr/bin/media_app").unwrap();
        assert!(media
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());

        // Back to normal: permission retracted.
        sack.deliver_event("rescue_done", Duration::ZERO).unwrap();
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());
    }

    #[test]
    fn unprotected_objects_are_not_mediated() {
        let (kernel, sack) = boot_independent();
        let p = kernel.spawn(Credentials::user(100, 100));
        assert!(p.write_file("/tmp/scratch", b"ok").is_ok());
        assert!(sack.stats().unprotected.load(Ordering::Relaxed) > 0);
        assert_eq!(sack.stats().denials.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn mac_override_bypasses_sack() {
        let (kernel, sack) = boot_independent();
        let privileged =
            kernel.spawn(Credentials::user(0, 0).with_capability(Capability::MacOverride));
        assert!(privileged
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_ok());
        assert!(sack.stats().overrides.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn unknown_event_is_rejected_and_counted() {
        let (_kernel, sack) = boot_independent();
        let err = sack.deliver_event("meteor", Duration::ZERO).unwrap_err();
        assert!(matches!(err, SackError::UnknownEvent(ref n) if n == "meteor"));
        assert_eq!(sack.stats().events_unknown.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reload_policy_swaps_atomically() {
        let (_kernel, sack) = boot_independent();
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        let new_policy = r#"
            states { idle = 0; busy = 1; }
            events { go; halt; }
            transitions { idle -go-> busy; busy -halt-> idle; }
            initial idle;
            permissions { P; }
            state_per { busy: P; }
            per_rules { P: allow subject=* /data/** rw; }
        "#;
        sack.reload_policy(new_policy).unwrap();
        assert_eq!(sack.current_state_name(), "idle");
        assert!(matches!(
            sack.deliver_event("crash", Duration::ZERO),
            Err(SackError::UnknownEvent(_))
        ));
        sack.deliver_event("go", Duration::ZERO).unwrap();
        assert_eq!(sack.current_state_name(), "busy");
    }

    #[test]
    fn reload_rejects_bad_policy_and_keeps_old() {
        let (_kernel, sack) = boot_independent();
        assert!(sack.reload_policy("states {").is_err());
        assert!(sack
            .reload_policy("states { a = 0; } initial ghost;")
            .is_err());
        // Old policy still live.
        assert_eq!(sack.current_state_name(), "normal");
        assert!(sack.deliver_event("crash", Duration::ZERO).is_ok());
    }

    #[test]
    fn enhanced_mode_reload_reapplies_initial_state() {
        let db = Arc::new(sack_apparmor::PolicyDb::new());
        db.load(sack_apparmor::Profile::new("svc"));
        let apparmor = AppArmor::new(Arc::clone(&db));
        let policy_v1 = r#"
            states { off = 0; on = 1; }
            events { enable; disable; }
            transitions { off -enable-> on; on -disable-> off; }
            initial off;
            permissions { P; }
            state_per { on: P; }
            per_rules { P: allow subject=profile:svc /v1/** rw; }
        "#;
        let sack = Sack::enhanced_apparmor(policy_v1, Arc::clone(&apparmor)).unwrap();
        sack.deliver_event("enable", Duration::ZERO).unwrap();
        assert!(db
            .get("svc")
            .unwrap()
            .rules()
            .evaluate("/v1/data")
            .permits(FilePerms::READ));

        // Reload with a different object tree; the machine restarts in its
        // initial state (off) and the v1 rules are retracted.
        let policy_v2 = policy_v1.replace("/v1/**", "/v2/**");
        sack.reload_policy(&policy_v2).unwrap();
        assert_eq!(sack.current_state_name(), "off");
        let compiled = db.get("svc").unwrap();
        assert!(!compiled
            .rules()
            .evaluate("/v1/data")
            .permits(FilePerms::READ));
        assert!(!compiled
            .rules()
            .evaluate("/v2/data")
            .permits(FilePerms::READ));
        sack.deliver_event("enable", Duration::ZERO).unwrap();
        let compiled = db.get("svc").unwrap();
        assert!(compiled
            .rules()
            .evaluate("/v2/data")
            .permits(FilePerms::READ));
        assert!(!compiled
            .rules()
            .evaluate("/v1/data")
            .permits(FilePerms::READ));
    }

    #[test]
    fn enhanced_mode_reload_rejects_unloaded_profile_targets() {
        let db = Arc::new(sack_apparmor::PolicyDb::new());
        db.load(sack_apparmor::Profile::new("svc"));
        let apparmor = AppArmor::new(Arc::clone(&db));
        let good = r#"
            states { s = 0; } initial s;
            permissions { P; }
            state_per { s: P; }
            per_rules { P: allow subject=profile:svc /x r; }
        "#;
        let sack = Sack::enhanced_apparmor(good, Arc::clone(&apparmor)).unwrap();
        let bad = good.replace("profile:svc", "profile:ghost");
        assert!(matches!(
            sack.reload_policy(&bad),
            Err(SackError::Enhance(_))
        ));
        // Old policy remains active and enforced.
        let compiled = db.get("svc").unwrap();
        assert!(compiled.rules().evaluate("/x").permits(FilePerms::READ));
    }

    #[test]
    fn enhanced_mode_hooks_pass_through() {
        let db = Arc::new(sack_apparmor::PolicyDb::new());
        db.load(sack_apparmor::Profile::new("rescue_daemon"));
        let apparmor = AppArmor::new(db);
        let policy = r#"
            states { normal = 0; emergency = 1; }
            events { crash; }
            transitions { normal -crash-> emergency; }
            initial normal;
            permissions { P; }
            state_per { emergency: P; }
            per_rules { P: allow subject=profile:rescue_daemon /dev/car/** wi; }
        "#;
        let sack = Sack::enhanced_apparmor(policy, Arc::clone(&apparmor)).unwrap();
        assert_eq!(sack.mode(), EnforcementMode::EnhancedAppArmor);
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
            .boot();
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/dev/car").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &KPath::new("/dev/car/door0").unwrap(),
                Mode(0o666),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let daemon = kernel.spawn(Credentials::root());
        apparmor.set_profile(daemon.pid(), "rescue_daemon").unwrap();
        // Normal: the profile has no rules, so the write is denied by
        // AppArmor (not by SACK).
        let err = daemon
            .open("/dev/car/door0", OpenFlags::write_only())
            .unwrap_err();
        assert_eq!(err.context(), Some("apparmor"));
        // Crash: SACK injects the rule into the profile.
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert!(daemon
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_ok());
        // SACK itself performed no checks.
        assert_eq!(sack.stats().checks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn decision_cache_hits_and_invalidates_on_transition() {
        let (kernel, sack) = boot_independent();
        let rescue = kernel.spawn(Credentials::user(100, 100));
        rescue.exec("/usr/bin/rescue_daemon").unwrap();

        // Warm the cache on the read decision, then replay it.
        for _ in 0..5 {
            assert!(rescue
                .open("/dev/car/door0", OpenFlags::read_only())
                .is_ok());
        }
        let hits = sack.stats().cache_hits.load(Ordering::Relaxed);
        assert!(hits > 0, "repeated identical accesses must hit the cache");

        // Transition mid-stream: the very next decision must reflect the
        // new state, not the cached normal-state one.
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_ok());
        // And back: the emergency-state grant must not survive either.
        sack.deliver_event("rescue_done", Duration::ZERO).unwrap();
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());
    }

    #[test]
    fn decision_cache_invalidates_on_policy_reload() {
        let (kernel, sack) = boot_independent();
        let rescue = kernel.spawn(Credentials::user(100, 100));
        rescue.exec("/usr/bin/rescue_daemon").unwrap();
        for _ in 0..3 {
            assert!(rescue
                .open("/dev/car/door0", OpenFlags::read_only())
                .is_ok());
        }
        // Swap in a policy that still protects /dev/car/** but grants
        // nothing: the warmed allow-read decision must die with the reload.
        sack.reload_policy(
            r#"
            states { lockdown = 0; } initial lockdown;
            permissions { NONE; }
            state_per { lockdown: NONE; }
            per_rules { NONE: deny subject=* /dev/car/** rwaxmi; }
        "#,
        )
        .unwrap();
        let err = rescue
            .open("/dev/car/door0", OpenFlags::read_only())
            .unwrap_err();
        assert_eq!(err.context(), Some("sack"));
    }

    #[test]
    fn decision_cache_invalidates_on_confinement_change() {
        let policy = r#"
            states { s = 0; } initial s;
            permissions { P; }
            state_per { s: P; }
            per_rules { P: allow subject=profile:trusted /secret/** r; }
        "#;
        let sack = Sack::independent(policy).unwrap();
        let db = Arc::new(sack_apparmor::PolicyDb::new());
        db.load_text("profile trusted { /secret/** r, }").unwrap();
        let apparmor = AppArmor::new(db);
        sack.set_profile_oracle(Arc::clone(&apparmor));
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
            .boot();
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/secret").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &KPath::new("/secret/key").unwrap(),
                Mode(0o644),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let task = kernel.spawn(Credentials::user(100, 100));
        apparmor.set_profile(task.pid(), "trusted").unwrap();
        // Warm the profile-dependent allow decision.
        for _ in 0..3 {
            assert!(task.read_to_vec("/secret/key").is_ok());
        }
        // Unconfining bumps the confinement generation: the cached oracle
        // answer ("task is profile `trusted`") must not be replayed.
        apparmor.unconfine(task.pid());
        let err = task.read_to_vec("/secret/key").unwrap_err();
        assert_eq!(err.context(), Some("sack"));
    }

    #[test]
    fn decision_cache_disabled_keeps_decisions_and_counters() {
        let (kernel, sack) = boot_independent();
        sack.set_decision_cache_enabled(false);
        assert!(!sack.decision_cache_enabled());
        let rescue = kernel.spawn(Credentials::user(100, 100));
        rescue.exec("/usr/bin/rescue_daemon").unwrap();
        for _ in 0..5 {
            assert!(rescue
                .open("/dev/car/door0", OpenFlags::read_only())
                .is_ok());
        }
        assert_eq!(sack.stats().cache_hits.load(Ordering::Relaxed), 0);
        assert_eq!(sack.stats().cache_misses.load(Ordering::Relaxed), 0);
        assert!(sack.stats().checks.load(Ordering::Relaxed) >= 5);
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_ok());
    }

    #[test]
    fn task_exit_drops_decision_cache_entry() {
        let (kernel, sack) = boot_independent();
        let p = kernel.spawn(Credentials::user(100, 100));
        assert!(p.open("/dev/car/door0", OpenFlags::read_only()).is_ok());
        assert!(sack.stats().cache_misses.load(Ordering::Relaxed) > 0);
        let with_task = sack.cached_task_count();
        assert!(with_task >= 1);
        p.exit();
        assert_eq!(
            sack.cached_task_count(),
            with_task - 1,
            "task_free must drop the per-task cache"
        );
    }

    #[test]
    fn profile_oracle_resolves_profile_subjects_in_independent_mode() {
        let policy = r#"
            states { s = 0; } initial s;
            permissions { P; }
            state_per { s: P; }
            per_rules { P: allow subject=profile:trusted /secret/** r; }
        "#;
        let sack = Sack::independent(policy).unwrap();
        let db = Arc::new(sack_apparmor::PolicyDb::new());
        db.load_text("profile trusted { /secret/** r, /tmp/** rw, }")
            .unwrap();
        let apparmor = AppArmor::new(db);
        sack.set_profile_oracle(Arc::clone(&apparmor));
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
            .boot();
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/secret").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &KPath::new("/secret/key").unwrap(),
                Mode(0o644),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        // Unprivileged users: root holds CAP_MAC_OVERRIDE, which would
        // (correctly) bypass SACK entirely.
        let trusted = kernel.spawn(Credentials::user(100, 100));
        apparmor.set_profile(trusted.pid(), "trusted").unwrap();
        assert!(trusted.read_to_vec("/secret/key").is_ok());
        let untrusted = kernel.spawn(Credentials::user(200, 200));
        let err = untrusted.read_to_vec("/secret/key").unwrap_err();
        assert_eq!(err.context(), Some("sack"));
    }

    #[test]
    fn negative_cache_replays_denials_without_duplicate_audit() {
        let (kernel, sack) = boot_independent();
        sack.set_negative_cache_enabled(true);
        assert!(sack.negative_cache_enabled());
        let media = kernel.spawn(Credentials::user(200, 200));
        media.exec("/usr/bin/media_app").unwrap();
        for _ in 0..5 {
            let err = media
                .open("/dev/car/door0", OpenFlags::write_only())
                .unwrap_err();
            assert_eq!(err.context(), Some("sack"));
        }
        // Every refusal is counted, but the audit record is emitted exactly
        // once, by the first (uncached) evaluation.
        assert_eq!(sack.stats().denials.load(Ordering::Relaxed), 5);
        assert_eq!(
            sack.audit().total(),
            1,
            "a replayed cached denial must not be re-audited"
        );
        assert!(sack.stats().cache_hits.load(Ordering::Relaxed) >= 4);

        // The cached denial dies with the epoch: after a transition the
        // decision is re-evaluated (and, still denied, re-audited once).
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert!(media
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());
        assert_eq!(sack.audit().total(), 2);
    }

    #[test]
    fn negative_cache_off_audits_every_denial() {
        let (kernel, sack) = boot_independent();
        assert!(!sack.negative_cache_enabled());
        let media = kernel.spawn(Credentials::user(200, 200));
        media.exec("/usr/bin/media_app").unwrap();
        for _ in 0..5 {
            assert!(media
                .open("/dev/car/door0", OpenFlags::write_only())
                .is_err());
        }
        assert_eq!(sack.stats().denials.load(Ordering::Relaxed), 5);
        assert_eq!(sack.audit().total(), 5);
    }

    #[test]
    fn scan_fallback_agrees_with_dfa_matcher() {
        let (kernel, sack) = boot_independent();
        // Force every decision down the legacy O(rules) scan path and
        // replay the per-state scenario: outcomes must be identical.
        sack.set_dfa_matcher_enabled(false);
        sack.set_decision_cache_enabled(false);
        assert!(!sack.dfa_matcher_enabled());
        let rescue = kernel.spawn(Credentials::user(100, 100));
        rescue.exec("/usr/bin/rescue_daemon").unwrap();
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::read_only())
            .is_ok());
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        assert!(rescue
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_ok());
        let media = kernel.spawn(Credentials::user(200, 200));
        media.exec("/usr/bin/media_app").unwrap();
        assert!(media
            .open("/dev/car/door0", OpenFlags::write_only())
            .is_err());
        assert!(rescue.write_file("/tmp/scratch", b"ok").is_ok());
        assert!(sack.stats().unprotected.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn reload_rebuilds_state_dfa_tables() {
        let (_kernel, sack) = boot_independent();
        let epoch = sack.policy_epoch();
        // Hold the old snapshot alive so a rebuilt table cannot land on a
        // recycled allocation and alias the old pointer.
        let active_before = sack.active();
        let before = Arc::as_ptr(active_before.policy.state_dfa(StateId(0)));
        // Reloading the *same* text must still rebuild the tables.
        sack.reload_policy(DOOR_POLICY).unwrap();
        let active_after = sack.active();
        let after = Arc::as_ptr(active_after.policy.state_dfa(StateId(0)));
        assert_ne!(
            before, after,
            "reload must rebuild per-state DFA tables, not reuse them"
        );
        assert!(sack.policy_epoch() > epoch);
    }

    /// SSM transitions racing warm lookups on several threads: once a
    /// transition's epoch bump has completed, no thread may get a verdict
    /// computed against the retired situation state. The workers hammer the
    /// same task's per-CPU caches *during* each `deliver_event` (verdicts in
    /// that window may come from either side of the transition), then every
    /// thread probes once after the bump and must see the new state's
    /// verdict.
    #[test]
    fn ssm_transition_racing_warm_lookups_never_replays_retired_state() {
        use sack_kernel::lsm::AccessMask;
        use std::sync::Barrier;

        const WORKERS: usize = 4;
        const ROUNDS: usize = 100;
        const HAMMER: usize = 200;

        let sack = Sack::independent(DOOR_POLICY).unwrap();
        // All workers share one task, so they exercise distinct instances
        // of the same per-CPU cache array.
        let ctx = HookCtx::new(
            Pid(4100),
            Credentials::user(100, 100),
            Some(KPath::new("/usr/bin/rescue_daemon").unwrap()),
        );
        let path = KPath::new("/dev/car/door0").unwrap();
        let obj = ObjectRef::regular(&path);
        let start = Barrier::new(WORKERS + 1);
        let settled = Barrier::new(WORKERS + 1);
        let probed = Barrier::new(WORKERS + 1);

        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                let (sack, ctx, obj) = (&sack, &ctx, &obj);
                let (start, settled, probed) = (&start, &settled, &probed);
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        start.wait();
                        // Racing window: the transition lands somewhere in
                        // here, so either verdict is legitimate.
                        for _ in 0..HAMMER {
                            let _ = sack.file_open(ctx, obj, AccessMask::WRITE);
                        }
                        settled.wait();
                        // Post-bump probe: round parity says which state the
                        // completed transition left us in.
                        let emergency = round % 2 == 0;
                        let verdict = sack.file_open(ctx, obj, AccessMask::WRITE);
                        assert_eq!(
                            verdict.is_ok(),
                            emergency,
                            "round {round}: verdict from retired state \
                             (expected {} door-write)",
                            if emergency { "granted" } else { "denied" },
                        );
                        probed.wait();
                    }
                });
            }
            for round in 0..ROUNDS {
                start.wait();
                let event = if round % 2 == 0 {
                    "crash"
                } else {
                    "rescue_done"
                };
                sack.deliver_event(event, Duration::ZERO).unwrap();
                // deliver_event has returned: the epoch bump is complete
                // before any worker passes this barrier.
                settled.wait();
                probed.wait();
            }
        });
        assert_eq!(sack.current_state_name(), "normal");
    }
}
