//! Striped (per-thread sharded) statistics counters.
//!
//! The hook-path counters in [`crate::SackStats`] used to be single
//! `AtomicU64`s: correct, but every concurrent task bounced the same cache
//! line on every `file_permission` call. A [`ShardedCounter`] spreads the
//! increments over [`STRIPES`] cache-line-padded atomics — each thread
//! hashes to a stable stripe — and folds them on read. Reads (the
//! securityfs `stats` node, tests) are rare and tolerate the fold cost;
//! writes are the hot path and now touch a line shared with ~1/16th of the
//! threads instead of all of them.
//!
//! The API deliberately mirrors the `AtomicU64` subset the call sites used
//! (`fetch_add` / `load`), so swapping the field type did not change any
//! increment or read site.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of stripes; a power of two so thread ids fold with a mask.
pub const STRIPES: usize = 16;

/// One cache-line-padded stripe.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Monotonic id source for thread → stripe assignment.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread stripe index.
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// A monotonically increasing counter striped across cache lines.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    stripes: [Stripe; STRIPES],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> ShardedCounter {
        ShardedCounter::default()
    }

    /// Adds `val` to the calling thread's stripe. Returns the previous
    /// value of *that stripe* (mirroring `AtomicU64::fetch_add`; callers
    /// on the hook path discard it).
    pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
        let idx = STRIPE.try_with(|s| *s).unwrap_or(0);
        self.stripes[idx].0.fetch_add(val, order)
    }

    /// Folds all stripes into the counter's total.
    pub fn load(&self, order: Ordering) -> u64 {
        self.stripes.iter().map(|stripe| stripe.0.load(order)).sum()
    }

    /// Resets every stripe to zero (test support).
    pub fn store(&self, val: u64, order: Ordering) {
        for (i, stripe) in self.stripes.iter().enumerate() {
            stripe.0.store(if i == 0 { val } else { 0 }, order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn folds_to_the_total() {
        let c = ShardedCounter::new();
        for _ in 0..100 {
            c.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(c.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn store_resets() {
        let c = ShardedCounter::new();
        c.fetch_add(7, Ordering::Relaxed);
        c.store(0, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 0);
        c.store(3, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }
}
