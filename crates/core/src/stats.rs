//! Striped (per-thread sharded) statistics counters.
//!
//! The hook-path counters in [`crate::SackStats`] used to be single
//! `AtomicU64`s: correct, but every concurrent task bounced the same cache
//! line on every `file_permission` call. A [`ShardedCounter`] spreads the
//! increments over [`STRIPES`] cache-line-padded atomics — each thread
//! hashes to a stable stripe — and folds them on read. Reads (the
//! securityfs `stats` node, tests) are rare and tolerate the fold cost;
//! writes are the hot path and now touch a line shared with ~1/16th of the
//! threads instead of all of them.
//!
//! The API deliberately mirrors the `AtomicU64` subset the call sites used
//! (`fetch_add` / `load`), so swapping the field type did not change any
//! increment or read site.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of stripes; a power of two so thread ids fold with a mask.
pub const STRIPES: usize = 16;

/// One cache-line-padded stripe.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Monotonic id source for thread → stripe assignment.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread stripe index.
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// A monotonically increasing counter striped across cache lines.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    stripes: [Stripe; STRIPES],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> ShardedCounter {
        ShardedCounter::default()
    }

    /// Adds `val` to the calling thread's stripe. Returns the previous
    /// value of *that stripe* (mirroring `AtomicU64::fetch_add`; callers
    /// on the hook path discard it).
    pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
        let idx = STRIPE.try_with(|s| *s).unwrap_or(0);
        self.stripes[idx].0.fetch_add(val, order)
    }

    /// Folds all stripes into the counter's total.
    pub fn load(&self, order: Ordering) -> u64 {
        self.stripes.iter().map(|stripe| stripe.0.load(order)).sum()
    }

    /// Resets every stripe to zero (test support).
    pub fn store(&self, val: u64, order: Ordering) {
        for (i, stripe) in self.stripes.iter().enumerate() {
            stripe.0.store(if i == 0 { val } else { 0 }, order);
        }
    }

    /// Folds a whole family of counters in one stripe-major pass.
    ///
    /// The securityfs `stats` and `metrics` nodes read every counter at
    /// once; folding counter-major re-walks the stripe array per counter
    /// and touches each counter's cache lines in row order. Stripe-major
    /// iteration visits each stripe index across all counters before
    /// moving on, which both halves the pointer chasing and yields a
    /// *consistent pass*: stripe `s` of every counter is read before any
    /// stripe `s+1`. Returns the totals in `counters` order.
    pub fn snapshot_all(counters: &[&ShardedCounter], order: Ordering) -> Vec<u64> {
        let mut totals = vec![0u64; counters.len()];
        for stripe in 0..STRIPES {
            for (total, counter) in totals.iter_mut().zip(counters) {
                *total += counter.stripes[stripe].0.load(order);
            }
        }
        totals
    }
}

/// Number of log2 latency buckets: bucket 0 holds 0 ns, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)` ns; the top bucket also absorbs anything larger
/// (2^38 ns ≈ 4.5 min, far beyond any hook latency).
pub const HIST_BUCKETS: usize = 40;

/// One cache-line-aligned histogram stripe: a full bucket array plus the
/// running sum of recorded values, so percentile *and* mean come out of the
/// same snapshot.
#[repr(align(64))]
#[derive(Debug)]
struct HistStripe {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistStripe {
    fn default() -> Self {
        HistStripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A lock-free log2-bucketed latency histogram.
///
/// Same striping discipline as [`ShardedCounter`]: each recording thread
/// lands on a stable cache-line-padded stripe, so concurrent `record`
/// calls from different stripes never contend; [`LatencyHistogram::snapshot`]
/// folds the stripes on the rare read path.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    stripes: [HistStripe; STRIPES],
}

/// The log2 bucket a nanosecond value falls into.
pub fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, for rendering and interpolation.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency observation. Lock-free; relaxed ordering is
    /// sufficient because snapshots only need eventual counts.
    pub fn record(&self, ns: u64) {
        let idx = STRIPE.try_with(|s| *s).unwrap_or(0);
        let stripe = &self.stripes[idx];
        stripe.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Folds every stripe into a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for stripe in &self.stripes {
            for (total, bucket) in snap.buckets.iter_mut().zip(&stripe.buckets) {
                *total += bucket.load(Ordering::Relaxed);
            }
            snap.sum += stripe.sum.load(Ordering::Relaxed);
        }
        snap
    }
}

/// An owned, mergeable histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values in nanoseconds.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Accumulates `other` into `self` (bucket-wise addition), so per-hook
    /// snapshots roll up into per-verdict or global distributions.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Mean of the recorded values, in nanoseconds.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimates the `p`-quantile (`0.0 < p <= 1.0`) by linear
    /// interpolation inside the log2 bucket containing the target rank.
    /// Returns 0 for an empty snapshot. The estimate is exact for bucket
    /// boundaries and at most one bucket-width off inside a bucket — the
    /// standard HDR-style trade-off for a fixed-size lock-free layout.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (p * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                let lower = if i <= 1 { i as u64 } else { 1u64 << (i - 1) };
                let upper = bucket_upper_bound(i).max(lower);
                let into = (target - cumulative) as f64 / n as f64;
                return lower + ((upper - lower) as f64 * into) as u64;
            }
            cumulative += n;
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn folds_to_the_total() {
        let c = ShardedCounter::new();
        for _ in 0..100 {
            c.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(c.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn store_resets() {
        let c = ShardedCounter::new();
        c.fetch_add(7, Ordering::Relaxed);
        c.store(0, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 0);
        c.store(3, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn snapshot_all_matches_individual_loads() {
        let counters: Vec<ShardedCounter> = (0..5).map(|_| ShardedCounter::new()).collect();
        for (i, c) in counters.iter().enumerate() {
            for _ in 0..(i + 1) * 10 {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }
        let refs: Vec<&ShardedCounter> = counters.iter().collect();
        let totals = ShardedCounter::snapshot_all(&refs, Ordering::Relaxed);
        let individual: Vec<u64> = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(totals, individual);
        assert_eq!(totals, vec![10, 20, 30, 40, 50]);
        assert!(ShardedCounter::snapshot_all(&[], Ordering::Relaxed).is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 2);
        assert_eq!(bucket_upper_bound(10), 1024);
    }

    #[test]
    fn histogram_records_and_counts() {
        let h = LatencyHistogram::new();
        for ns in [0u64, 1, 3, 100, 100, 5000] {
            h.record(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum, 5204);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[bucket_of(100)], 2);
        assert!((snap.mean() - 5204.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_bucketwise_sum() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record(ns);
        }
        for ns in [1000u64, 2000] {
            b.record(ns);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum, 60 + 3000);
        // Merging in the other order gives the identical snapshot.
        let mut other = b.snapshot();
        other.merge(&a.snapshot());
        assert_eq!(merged, other);
    }

    #[test]
    fn percentiles_are_ordered_and_bracketed() {
        let h = LatencyHistogram::new();
        // 90 fast observations (~64 ns) and 10 slow ones (~65 µs).
        for _ in 0..90 {
            h.record(64);
        }
        for _ in 0..10 {
            h.record(65_000);
        }
        let snap = h.snapshot();
        let p50 = snap.percentile(0.50);
        let p95 = snap.percentile(0.95);
        let p99 = snap.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
        // p50 lands in the bucket containing 64 ns: [64, 128).
        assert!((64..128).contains(&p50), "p50={p50}");
        // p95/p99 land in the bucket containing 65 000 ns: [32768, 65536).
        assert!((32_768..65_536).contains(&p95), "p95={p95}");
        assert!((32_768..65_536).contains(&p99), "p99={p99}");
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = HistogramSnapshot::default();
        assert!(empty.is_empty());
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);

        let h = LatencyHistogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.percentile(1.0), 0);

        let h2 = LatencyHistogram::new();
        for _ in 0..4 {
            h2.record(u64::MAX);
        }
        let top = h2.snapshot().percentile(0.99);
        assert_eq!(top, bucket_upper_bound(HIST_BUCKETS - 1));
    }
}
