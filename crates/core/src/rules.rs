//! SACK permissions and MAC rules — the `Permissions` and `Per_Rules`
//! policy interfaces (Table I), and their compiled, per-state form.
//!
//! SACK mediates only *protected objects*: paths matched by at least one
//! rule anywhere in the policy. For a protected object, access is granted
//! only if the **current situation state's** permission set maps to a rule
//! that allows it — deny-by-default, following the principle of least
//! privilege and optimistic access control (break-the-glass in emergencies).

use std::fmt;

use sack_apparmor::glob::Glob;
use sack_apparmor::profile::FilePerms;

/// Index of a SACK permission within its policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PermissionId(pub usize);

/// A named coarse-grained SACK permission (e.g. `CONTROL_CAR_DOORS`),
/// bridging user-space permission vocabulary and kernel MAC rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permission {
    /// Permission name.
    pub name: String,
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Subject selector of a MAC rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubjectMatch {
    /// Any subject.
    Any,
    /// Subjects whose executable path matches the glob.
    ExeGlob(Glob),
    /// Subjects with this uid.
    Uid(u32),
    /// Subjects confined under this (AppArmor) profile. Only meaningful in
    /// SACK-enhanced-AppArmor deployments; independent SACK resolves it via
    /// the profile oracle it is configured with.
    Profile(String),
}

impl fmt::Display for SubjectMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectMatch::Any => f.write_str("subject=*"),
            SubjectMatch::ExeGlob(g) => write!(f, "subject={g}"),
            SubjectMatch::Uid(uid) => write!(f, "uid={uid}"),
            SubjectMatch::Profile(p) => write!(f, "subject=profile:{p}"),
        }
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleEffect {
    /// Grants the listed permissions.
    Allow,
    /// Forbids them, overriding any allow in the same state.
    Deny,
}

/// One MAC rule from the `Per_Rules` interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacRule {
    /// Who the rule applies to.
    pub subject: SubjectMatch,
    /// Object path pattern.
    pub object: Glob,
    /// File permissions granted/denied.
    pub perms: FilePerms,
    /// Allow or deny.
    pub effect: RuleEffect,
}

impl MacRule {
    /// Creates an allow rule for any subject.
    ///
    /// # Errors
    ///
    /// Glob compilation errors.
    pub fn allow_any(
        object: &str,
        perms: FilePerms,
    ) -> Result<MacRule, sack_apparmor::glob::ParseGlobError> {
        Ok(MacRule {
            subject: SubjectMatch::Any,
            object: Glob::compile(object)?,
            perms,
            effect: RuleEffect::Allow,
        })
    }

    /// Creates an allow rule restricted to executables matching `exe`.
    ///
    /// # Errors
    ///
    /// Glob compilation errors.
    pub fn allow_exe(
        exe: &str,
        object: &str,
        perms: FilePerms,
    ) -> Result<MacRule, sack_apparmor::glob::ParseGlobError> {
        Ok(MacRule {
            subject: SubjectMatch::ExeGlob(Glob::compile(exe)?),
            object: Glob::compile(object)?,
            perms,
            effect: RuleEffect::Allow,
        })
    }
}

impl fmt::Display for MacRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let effect = match self.effect {
            RuleEffect::Allow => "allow",
            RuleEffect::Deny => "deny",
        };
        write!(
            f,
            "{effect} {} {} {}",
            self.subject, self.object, self.perms
        )
    }
}

/// Snapshot of the acting subject, assembled from the kernel's `HookCtx`
/// plus (optionally) the confining profile name.
#[derive(Debug, Clone)]
pub struct SubjectCtx<'a> {
    /// Subject uid.
    pub uid: u32,
    /// Executable path, if the task has exec'd.
    pub exe: Option<&'a str>,
    /// Confining AppArmor profile, when a profile oracle is configured.
    pub profile: Option<&'a str>,
}

impl SubjectMatch {
    /// Tests the selector against a subject.
    pub fn matches(&self, subject: &SubjectCtx<'_>) -> bool {
        match self {
            SubjectMatch::Any => true,
            SubjectMatch::ExeGlob(glob) => subject.exe.is_some_and(|exe| glob.matches(exe)),
            SubjectMatch::Uid(uid) => subject.uid == *uid,
            SubjectMatch::Profile(name) => subject.profile == Some(name.as_str()),
        }
    }
}

/// The compiled rules active in one situation state:
/// `MR_i = g(f(SS_i))` precomputed at policy load.
#[derive(Debug, Default)]
pub struct StateRuleSet {
    allow: Vec<MacRule>,
    deny: Vec<MacRule>,
}

impl StateRuleSet {
    /// Builds the set from the rules of a state's granted permissions.
    pub fn build<'a>(rules: impl IntoIterator<Item = &'a MacRule>) -> StateRuleSet {
        let mut set = StateRuleSet::default();
        for rule in rules {
            match rule.effect {
                RuleEffect::Allow => set.allow.push(rule.clone()),
                RuleEffect::Deny => set.deny.push(rule.clone()),
            }
        }
        set
    }

    /// Number of rules (allow + deny).
    pub fn len(&self) -> usize {
        self.allow.len() + self.deny.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.allow.is_empty() && self.deny.is_empty()
    }

    /// Decides a request against this state's rules: allowed iff the
    /// requested permissions are covered by matching allow rules and not
    /// intersected by any matching deny rule.
    pub fn permits(&self, subject: &SubjectCtx<'_>, path: &str, requested: FilePerms) -> bool {
        for rule in &self.deny {
            if rule.perms.intersects(requested)
                && rule.object.matches(path)
                && rule.subject.matches(subject)
            {
                return false;
            }
        }
        let mut granted = FilePerms::empty();
        for rule in &self.allow {
            if rule.object.matches(path) && rule.subject.matches(subject) {
                granted = granted.union(rule.perms);
                if granted.contains(requested) {
                    return true;
                }
            }
        }
        granted.contains(requested)
    }
}

/// The set of object patterns SACK protects — accesses to paths outside
/// this set are not mediated (SACK is a restriction framework for
/// situation-sensitive resources, not a general confinement system).
///
/// Membership tests are on the `file_permission` hot path for *every* file
/// access in the system, so patterns are bucketed by their literal first
/// path component: an access to an unrelated subtree costs one hash lookup
/// regardless of how many rules the policy carries (this is what keeps the
/// paper's Table III rule-count sweep flat).
#[derive(Debug, Default)]
pub struct ProtectedSet {
    buckets: std::collections::HashMap<String, Vec<Glob>>,
    global: Vec<Glob>,
    len: usize,
}

/// The first path component of `prefix` when it is fully literal (i.e. the
/// prefix extends past its closing `/`).
fn literal_first_component(prefix: &str) -> Option<&str> {
    let rest = prefix.strip_prefix('/')?;
    let idx = rest.find('/')?;
    Some(&rest[..idx])
}

impl ProtectedSet {
    /// Builds the set from every object glob in the policy.
    pub fn build<'a>(globs: impl IntoIterator<Item = &'a Glob>) -> ProtectedSet {
        let mut unique: Vec<Glob> = Vec::new();
        for glob in globs {
            if !unique.iter().any(|g| g.source() == glob.source()) {
                unique.push(glob.clone());
            }
        }
        let mut set = ProtectedSet {
            len: unique.len(),
            ..ProtectedSet::default()
        };
        for glob in unique {
            match literal_first_component(glob.literal_prefix()) {
                Some(comp) => set.buckets.entry(comp.to_string()).or_default().push(glob),
                None => set.global.push(glob),
            }
        }
        set
    }

    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is protected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `path` is a protected object.
    pub fn contains(&self, path: &str) -> bool {
        if !self.buckets.is_empty() {
            if let Some(comp) = path
                .strip_prefix('/')
                .and_then(|rest| rest.split('/').next())
            {
                if let Some(bucket) = self.buckets.get(comp) {
                    if bucket.iter().any(|g| g.matches(path)) {
                        return true;
                    }
                }
            }
        }
        self.global.iter().any(|g| g.matches(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subject(exe: Option<&str>) -> SubjectCtx<'_> {
        SubjectCtx {
            uid: 1000,
            exe,
            profile: None,
        }
    }

    #[test]
    fn subject_match_variants() {
        let any = SubjectMatch::Any;
        assert!(any.matches(&subject(None)));

        let exe = SubjectMatch::ExeGlob(Glob::compile("/usr/bin/rescue*").unwrap());
        assert!(exe.matches(&subject(Some("/usr/bin/rescue_daemon"))));
        assert!(!exe.matches(&subject(Some("/usr/bin/media"))));
        assert!(!exe.matches(&subject(None)));

        let uid = SubjectMatch::Uid(1000);
        assert!(uid.matches(&subject(None)));
        assert!(!SubjectMatch::Uid(0).matches(&subject(None)));

        let prof = SubjectMatch::Profile("rescue".into());
        assert!(!prof.matches(&subject(None)));
        let s = SubjectCtx {
            uid: 0,
            exe: None,
            profile: Some("rescue"),
        };
        assert!(prof.matches(&s));
    }

    #[test]
    fn state_rules_deny_by_default() {
        let set = StateRuleSet::build(&[]);
        assert!(set.is_empty());
        assert!(!set.permits(&subject(None), "/dev/car/door0", FilePerms::WRITE));
        // Empty request is vacuously permitted.
        assert!(set.permits(&subject(None), "/dev/car/door0", FilePerms::empty()));
    }

    #[test]
    fn allow_rules_accumulate() {
        let rules = [
            MacRule::allow_any("/dev/car/door*", FilePerms::READ).unwrap(),
            MacRule::allow_any("/dev/car/door*", FilePerms::WRITE).unwrap(),
        ];
        let set = StateRuleSet::build(rules.iter());
        assert!(set.permits(
            &subject(None),
            "/dev/car/door0",
            FilePerms::READ | FilePerms::WRITE
        ));
        assert!(!set.permits(&subject(None), "/dev/car/door0", FilePerms::IOCTL));
    }

    #[test]
    fn deny_overrides_allow() {
        let rules = [
            MacRule::allow_any("/dev/car/**", FilePerms::all()).unwrap(),
            MacRule {
                subject: SubjectMatch::Any,
                object: Glob::compile("/dev/car/door0").unwrap(),
                perms: FilePerms::WRITE,
                effect: RuleEffect::Deny,
            },
        ];
        let set = StateRuleSet::build(rules.iter());
        assert!(!set.permits(&subject(None), "/dev/car/door0", FilePerms::WRITE));
        assert!(set.permits(&subject(None), "/dev/car/door0", FilePerms::READ));
        assert!(set.permits(&subject(None), "/dev/car/door1", FilePerms::WRITE));
    }

    #[test]
    fn subject_restricted_rule() {
        let rules = [MacRule::allow_exe(
            "/usr/bin/rescue*",
            "/dev/car/**",
            FilePerms::WRITE | FilePerms::IOCTL,
        )
        .unwrap()];
        let set = StateRuleSet::build(rules.iter());
        assert!(set.permits(
            &subject(Some("/usr/bin/rescue_daemon")),
            "/dev/car/door0",
            FilePerms::IOCTL
        ));
        assert!(!set.permits(
            &subject(Some("/usr/bin/malware")),
            "/dev/car/door0",
            FilePerms::IOCTL
        ));
    }

    #[test]
    fn protected_set_membership_and_dedup() {
        let globs = [
            Glob::compile("/dev/car/**").unwrap(),
            Glob::compile("/etc/vehicle.conf").unwrap(),
            Glob::compile("/dev/car/**").unwrap(),
        ];
        let set = ProtectedSet::build(globs.iter());
        assert_eq!(set.len(), 2, "duplicate patterns are deduplicated");
        assert!(set.contains("/dev/car/door0"));
        assert!(set.contains("/etc/vehicle.conf"));
        assert!(!set.contains("/tmp/file"));
    }

    #[test]
    fn protected_set_handles_wildcard_first_component() {
        let globs = [
            Glob::compile("/**/shadow").unwrap(),
            Glob::compile("/dev/car/**").unwrap(),
        ];
        let set = ProtectedSet::build(globs.iter());
        assert!(set.contains("/etc/shadow"), "global pattern still matches");
        assert!(set.contains("/a/b/shadow"));
        assert!(set.contains("/dev/car/door0"));
        assert!(!set.contains("/dev/audio"));
    }

    #[test]
    fn rule_display() {
        let r = MacRule::allow_exe("/usr/bin/r*", "/dev/car/**", FilePerms::WRITE).unwrap();
        assert_eq!(r.to_string(), "allow subject=/usr/bin/r* /dev/car/** w");
    }
}
