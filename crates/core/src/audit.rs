//! SACK's audit facility: a bounded in-kernel ring of denial records,
//! readable through `/sys/kernel/security/SACK/audit`.
//!
//! Situation-aware denials are only debuggable if the record says *which
//! situation* the kernel was in — a plain `EACCES` from a rule that exists
//! only in some states would otherwise be unreproducible. Every record
//! therefore carries the situation state at denial time.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

use parking_lot::Mutex;

use sack_apparmor::profile::FilePerms;
use sack_kernel::types::Pid;

/// Default ring capacity.
pub const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// One denial record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Simulated time of the denial.
    pub at: Duration,
    /// Denied task.
    pub pid: Pid,
    /// Denied task's uid.
    pub uid: u32,
    /// Executable of the task, if it had exec'd.
    pub exe: Option<String>,
    /// Object path.
    pub path: String,
    /// Requested permissions.
    pub requested: FilePerms,
    /// Situation state at denial time.
    pub state: String,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:?} DENIED {} uid={} exe={} path={} requested={} state={}",
            self.at,
            self.pid,
            self.uid,
            self.exe.as_deref().unwrap_or("?"),
            self.path,
            self.requested,
            self.state
        )
    }
}

/// Bounded denial ring.
#[derive(Debug)]
pub struct AuditLog {
    ring: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
    total: std::sync::atomic::AtomicU64,
}

impl AuditLog {
    /// Creates a log with the default capacity.
    pub fn new() -> AuditLog {
        AuditLog::with_capacity(DEFAULT_AUDIT_CAPACITY)
    }

    /// Creates a log bounded to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> AuditLog {
        assert!(capacity > 0, "audit capacity must be non-zero");
        AuditLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            total: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: AuditRecord) {
        self.total
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total denials ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Renders the retained records as text (the `audit` node's content).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for record in self.ring.lock().iter() {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> AuditRecord {
        AuditRecord {
            at: Duration::from_millis(i),
            pid: Pid(i as u32),
            uid: 1000,
            exe: Some("/usr/bin/app".to_string()),
            path: format!("/dev/car/door{i}"),
            requested: FilePerms::WRITE,
            state: "driving".to_string(),
        }
    }

    #[test]
    fn push_and_snapshot() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.push(record(1));
        log.push(record(2));
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].pid, Pid(1));
        assert_eq!(log.total(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = AuditLog::with_capacity(3);
        for i in 0..5 {
            log.push(record(i));
        }
        let records = log.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].pid, Pid(2), "oldest two evicted");
        assert_eq!(log.total(), 5, "total counts evicted records");
    }

    #[test]
    fn render_is_line_per_record() {
        let log = AuditLog::new();
        log.push(record(7));
        let text = log.render();
        assert!(text.contains("DENIED"));
        assert!(text.contains("/dev/car/door7"));
        assert!(text.contains("state=driving"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = AuditLog::with_capacity(0);
    }
}
