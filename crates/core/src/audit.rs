//! SACK's audit facility: a bounded in-kernel ring of denial records,
//! readable through `/sys/kernel/security/SACK/audit`.
//!
//! Situation-aware denials are only debuggable if the record says *which
//! situation* the kernel was in — a plain `EACCES` from a rule that exists
//! only in some states would otherwise be unreproducible. Every record
//! therefore carries the situation state at denial time.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

use parking_lot::Mutex;

use sack_apparmor::profile::FilePerms;
use sack_kernel::types::Pid;

/// Default ring capacity.
pub const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// One denial record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number, assigned by [`AuditLog::push`] (the value
    /// passed in is overwritten). Readers detect dropped denials by gaps:
    /// retained records always have contiguous sequence numbers, so a
    /// `seq_first` greater than 0 means the first `seq_first` records were
    /// evicted.
    pub seq: u64,
    /// Simulated time of the denial.
    pub at: Duration,
    /// Denied task.
    pub pid: Pid,
    /// Denied task's uid.
    pub uid: u32,
    /// Executable of the task, if it had exec'd.
    pub exe: Option<String>,
    /// Object path.
    pub path: String,
    /// Requested permissions.
    pub requested: FilePerms,
    /// Situation state at denial time.
    pub state: String,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq={} t={:?} DENIED {} uid={} exe={} path={} requested={} state={}",
            self.seq,
            self.at,
            self.pid,
            self.uid,
            self.exe.as_deref().unwrap_or("?"),
            self.path,
            self.requested,
            self.state
        )
    }
}

/// Bounded denial ring.
#[derive(Debug)]
pub struct AuditLog {
    ring: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
    total: std::sync::atomic::AtomicU64,
    lost: std::sync::atomic::AtomicU64,
}

impl AuditLog {
    /// Creates a log with the default capacity.
    pub fn new() -> AuditLog {
        AuditLog::with_capacity(DEFAULT_AUDIT_CAPACITY)
    }

    /// Creates a log bounded to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> AuditLog {
        assert!(capacity > 0, "audit capacity must be non-zero");
        AuditLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            total: std::sync::atomic::AtomicU64::new(0),
            lost: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Appends a record, evicting the oldest when full. Assigns and returns
    /// the record's monotonic sequence number; the sequence is allocated
    /// under the ring lock so retained records are always seq-ordered and
    /// contiguous.
    pub fn push(&self, mut record: AuditRecord) -> u64 {
        let mut ring = self.ring.lock();
        let seq = self
            .total
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        record.seq = seq;
        if ring.len() == self.capacity {
            ring.pop_front();
            self.lost.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        ring.push_back(record);
        seq
    }

    /// Snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total denials ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records evicted from the ring before anyone could read them.
    pub fn lost_records(&self) -> u64 {
        self.lost.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Renders the retained records as text (the `audit` node's content).
    ///
    /// The first line is a header surfacing the overflow accounting, so a
    /// reader can tell whether the window it sees is complete:
    /// `# audit total=<N> lost=<M> seq_first=<a> seq_last=<b>`
    /// (`seq_first`/`seq_last` are `-` while the ring is empty).
    pub fn render(&self) -> String {
        let ring = self.ring.lock();
        let (first, last) = match (ring.front(), ring.back()) {
            (Some(f), Some(l)) => (f.seq.to_string(), l.seq.to_string()),
            _ => ("-".to_string(), "-".to_string()),
        };
        let mut out = format!(
            "# audit total={} lost={} seq_first={} seq_last={}\n",
            self.total(),
            self.lost_records(),
            first,
            last
        );
        for record in ring.iter() {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> AuditRecord {
        AuditRecord {
            seq: 0, // assigned by push
            at: Duration::from_millis(i),
            pid: Pid(i as u32),
            uid: 1000,
            exe: Some("/usr/bin/app".to_string()),
            path: format!("/dev/car/door{i}"),
            requested: FilePerms::WRITE,
            state: "driving".to_string(),
        }
    }

    #[test]
    fn push_and_snapshot() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.push(record(1));
        log.push(record(2));
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].pid, Pid(1));
        assert_eq!(log.total(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = AuditLog::with_capacity(3);
        for i in 0..5 {
            log.push(record(i));
        }
        let records = log.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].pid, Pid(2), "oldest two evicted");
        assert_eq!(log.total(), 5, "total counts evicted records");
        assert_eq!(log.lost_records(), 2, "evictions counted as lost");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "retained seqs stay contiguous");
    }

    #[test]
    fn push_assigns_monotonic_seqs() {
        let log = AuditLog::new();
        assert_eq!(log.push(record(1)), 0);
        assert_eq!(log.push(record(2)), 1);
        let records = log.records();
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(log.lost_records(), 0);
    }

    #[test]
    fn render_is_header_plus_line_per_record() {
        let log = AuditLog::new();
        log.push(record(7));
        let text = log.render();
        assert!(text.contains("DENIED"));
        assert!(text.contains("/dev/car/door7"));
        assert!(text.contains("state=driving"));
        assert_eq!(text.lines().count(), 2, "header + one record");
        assert_eq!(
            text.lines().next().unwrap(),
            "# audit total=1 lost=0 seq_first=0 seq_last=0"
        );
        assert!(text.lines().nth(1).unwrap().starts_with("seq=0 "));
    }

    #[test]
    fn render_header_reports_losses() {
        let log = AuditLog::with_capacity(2);
        for i in 0..5 {
            log.push(record(i));
        }
        let text = log.render();
        assert_eq!(
            text.lines().next().unwrap(),
            "# audit total=5 lost=3 seq_first=3 seq_last=4"
        );
    }

    #[test]
    fn empty_render_has_placeholder_header() {
        let log = AuditLog::new();
        assert_eq!(
            log.render(),
            "# audit total=0 lost=0 seq_first=- seq_last=-\n"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = AuditLog::with_capacity(0);
    }
}
