//! The fleet aggregator: metricsd-style pull-fold of per-instance
//! telemetry into cohort and fleet rollups.
//!
//! Topology (DESIGN.md §13): every registered kernel instance keeps its own
//! `SackTracing` recorder; on each [`FleetAggregator::tick`] the aggregator
//! captures a [`TelemetrySnapshot`] per live instance, folds the captures
//! into per-cohort rollups and one fleet-level snapshot, and remembers each
//! instance's previous capture so the tick also yields exact per-cohort
//! *deltas* — the stream the anomaly detectors consume. Snapshot merge is
//! associative and commutative, so the fold order (per-cohort trees here, a
//! flat serial fold in the differential tests) never changes the result.
//!
//! Membership is weak: a dead instance (its kernel or module dropped
//! mid-fold) contributes its last capture to the cumulative rollup and is
//! reported in `dead`, never unwrapped.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use sack_core::{Sack, SackTracing, TelemetrySnapshot};
use sack_kernel::kernel::Kernel;
use sack_kernel::trace::{TraceHub, Tracepoint};
use sack_kernel::{InstanceId, InstanceRegistry};

/// One member's aggregator-side state.
struct Member {
    cohort: String,
    kernel: Weak<Kernel>,
    sack: Weak<Sack>,
    /// The member's previous capture, for per-tick deltas.
    last: Mutex<Option<TelemetrySnapshot>>,
}

/// Per-cohort result of one aggregation tick.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Cohort label.
    pub cohort: String,
    /// Instances captured live this tick.
    pub live: usize,
    /// Registered instances whose kernel or module has died.
    pub dead: usize,
    /// Fold of every member's latest capture (monotone totals).
    pub cumulative: TelemetrySnapshot,
    /// Fold of every live member's change since the previous tick.
    pub delta: TelemetrySnapshot,
}

/// Result of one [`FleetAggregator::tick`].
#[derive(Debug, Clone)]
pub struct FleetTick {
    /// Monotonic tick number, starting at 1.
    pub tick: u64,
    /// Fold of every cohort's cumulative rollup.
    pub fleet: TelemetrySnapshot,
    /// Per-cohort rollups, keyed by cohort label.
    pub cohorts: BTreeMap<String, CohortReport>,
}

/// The fleet-level telemetry plane: registry, tick folding and the single
/// Prometheus endpoint for O(1000) in-process kernel instances.
pub struct FleetAggregator {
    /// Fleet-level control-plane hub: rollout decisions and fleet events
    /// are emitted here (and mirrored to affected instances).
    hub: Arc<TraceHub>,
    /// Fleet-level recorder: flight-records every rollout decision.
    tracing: Arc<SackTracing>,
    registry: InstanceRegistry,
    members: RwLock<BTreeMap<InstanceId, Member>>,
    ticks: AtomicU64,
    alerts: Mutex<BTreeMap<&'static str, u64>>,
}

impl FleetAggregator {
    /// Creates an empty aggregator with its own (enabled) fleet trace hub.
    pub fn new() -> Arc<FleetAggregator> {
        let hub = TraceHub::new();
        hub.set_enabled(true);
        let tracing = SackTracing::attach(Arc::clone(&hub));
        Arc::new(FleetAggregator {
            hub,
            tracing,
            registry: InstanceRegistry::new(),
            members: RwLock::new(BTreeMap::new()),
            ticks: AtomicU64::new(0),
            alerts: Mutex::new(BTreeMap::new()),
        })
    }

    /// The fleet-level trace hub (carries the `fleet_rollout_*` family).
    pub fn hub(&self) -> &Arc<TraceHub> {
        &self.hub
    }

    /// The fleet-level recorder; its flight replays rollout decisions.
    pub fn tracing(&self) -> &Arc<SackTracing> {
        &self.tracing
    }

    /// The underlying kernel instance registry.
    pub fn registry(&self) -> &InstanceRegistry {
        &self.registry
    }

    /// Registers one kernel + its SACK module under `cohort`. Installs and
    /// instance-stamps the module's tracing if the caller has not already
    /// attached it. Holds only weak handles: the aggregator never keeps an
    /// instance alive.
    pub fn register(&self, kernel: &Arc<Kernel>, sack: &Arc<Sack>, cohort: &str) -> InstanceId {
        let tracing = sack.install_tracing(Arc::clone(kernel.trace()));
        tracing.set_instance(kernel.instance().0);
        let id = self.registry.register(kernel, cohort);
        self.members.write().insert(
            id,
            Member {
                cohort: cohort.to_string(),
                kernel: Arc::downgrade(kernel),
                sack: Arc::downgrade(sack),
                last: Mutex::new(None),
            },
        );
        id
    }

    /// Registered member count (live or dead).
    pub fn len(&self) -> usize {
        self.members.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.members.read().is_empty()
    }

    /// The live SACK modules of one cohort, in instance order — the rollout
    /// driver's push/rollback surface.
    pub fn cohort_sacks(&self, cohort: &str) -> Vec<(InstanceId, Arc<Sack>)> {
        self.members
            .read()
            .iter()
            .filter(|(_, m)| m.cohort == cohort)
            .filter_map(|(id, m)| m.sack.upgrade().map(|s| (*id, s)))
            .collect()
    }

    /// The live trace hubs of one cohort — rollout decisions are mirrored
    /// here so each instance's flight recorder explains its own policy flips.
    pub fn cohort_hubs(&self, cohort: &str) -> Vec<Arc<TraceHub>> {
        self.members
            .read()
            .values()
            .filter(|m| m.cohort == cohort)
            .filter_map(|m| m.kernel.upgrade().map(|k| Arc::clone(k.trace())))
            .collect()
    }

    /// Every live member's trace hub.
    pub fn all_hubs(&self) -> Vec<Arc<TraceHub>> {
        self.members
            .read()
            .values()
            .filter_map(|m| m.kernel.upgrade().map(|k| Arc::clone(k.trace())))
            .collect()
    }

    /// Every live SACK module, in instance order.
    pub fn all_sacks(&self) -> Vec<(InstanceId, Arc<Sack>)> {
        self.members
            .read()
            .iter()
            .filter_map(|(id, m)| m.sack.upgrade().map(|s| (*id, s)))
            .collect()
    }

    /// The distinct cohort labels, sorted.
    pub fn cohorts(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .members
            .read()
            .values()
            .map(|m| m.cohort.clone())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Bumps the per-kind alert counter (exposed on the fleet endpoint).
    pub fn record_alert(&self, kind: &'static str) {
        *self.alerts.lock().entry(kind).or_insert(0) += 1;
    }

    /// The last flight-recorder entries of `cohort`'s lossiest live member
    /// (falling back to its first), rendered — the replay excerpt attached
    /// to a [`crate::FleetAlert`].
    pub fn flight_excerpt(&self, cohort: &str, max_entries: usize) -> Vec<String> {
        let members = self.members.read();
        let mut best: Option<(u64, Arc<Sack>)> = None;
        for member in members.values().filter(|m| m.cohort == cohort) {
            let Some(sack) = member.sack.upgrade() else {
                continue;
            };
            let dropped = sack
                .tracing()
                .map(|t| t.flight().dropped())
                .unwrap_or_default();
            if best.as_ref().is_none_or(|(d, _)| dropped > *d) {
                best = Some((dropped, sack));
            }
        }
        let Some((_, sack)) = best else {
            return Vec::new();
        };
        let Some(tracing) = sack.tracing() else {
            return Vec::new();
        };
        let entries = tracing.flight().snapshot();
        entries
            .iter()
            .rev()
            .take(max_entries)
            .rev()
            .map(|e| format!("seq={} producer={} {}", e.seq, e.producer, e.event))
            .collect()
    }

    /// One aggregation tick: captures every live member, folds cohort and
    /// fleet rollups, and advances each member's delta base. Dead members
    /// contribute their last capture to the cumulative fold and are counted
    /// in `dead` — never unwrapped, never a panic.
    pub fn tick(&self) -> FleetTick {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let members = self.members.read();
        let mut cohorts: BTreeMap<String, CohortReport> = BTreeMap::new();
        for member in members.values() {
            let report = cohorts
                .entry(member.cohort.clone())
                .or_insert_with(|| CohortReport {
                    cohort: member.cohort.clone(),
                    live: 0,
                    dead: 0,
                    cumulative: TelemetrySnapshot::default(),
                    delta: TelemetrySnapshot::default(),
                });
            let mut last = member.last.lock();
            // `kernel` going away also counts as death even if the module
            // Arc is still held somewhere: the vehicle is gone.
            let alive = member.kernel.strong_count() > 0;
            let tracing = member.sack.upgrade().filter(|_| alive).and_then(|sack| {
                // One instance can momentarily lack tracing if the caller
                // raced registration; treat it as dead for this tick.
                sack.tracing().cloned()
            });
            match tracing {
                Some(tracing) => {
                    let snapshot = TelemetrySnapshot::capture(&tracing);
                    let delta = match last.as_ref() {
                        Some(prev) => snapshot.delta_since(prev),
                        None => snapshot.clone(),
                    };
                    report.live += 1;
                    report.cumulative.merge(&snapshot);
                    report.delta.merge(&delta);
                    *last = Some(snapshot);
                }
                None => {
                    report.dead += 1;
                    if let Some(prev) = last.as_ref() {
                        report.cumulative.merge(prev);
                    }
                }
            }
        }
        drop(members);
        let mut fleet = TelemetrySnapshot::default();
        for report in cohorts.values() {
            fleet.merge(&report.cumulative);
        }
        FleetTick {
            tick,
            fleet,
            cohorts,
        }
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Renders the fleet Prometheus endpoint: every family carries
    /// `# HELP`/`# TYPE`, rollups are labelled by `cohort`, and the
    /// per-instance families by `instance` + `cohort`. Scraping performs a
    /// fresh fold without advancing the detector delta bases.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let members = self.members.read();

        // Capture without touching `last`: scrapes must not eat the deltas
        // the detectors are watching.
        struct Row {
            instance: u64,
            cohort: String,
            snap: Option<TelemetrySnapshot>,
        }
        let rows: Vec<Row> = members
            .iter()
            .map(|(id, m)| Row {
                instance: id.0,
                cohort: m.cohort.clone(),
                snap: match (m.kernel.strong_count() > 0, m.sack.upgrade()) {
                    (true, Some(sack)) => sack.tracing().map(|t| TelemetrySnapshot::capture(t)),
                    _ => m.last.lock().clone(),
                },
            })
            .collect();
        drop(members);

        let mut by_cohort: BTreeMap<&str, (usize, usize, TelemetrySnapshot)> = BTreeMap::new();
        let mut fleet = TelemetrySnapshot::default();
        for row in &rows {
            let entry = row.cohort.as_str();
            let slot = by_cohort
                .entry(entry)
                .or_insert_with(|| (0, 0, TelemetrySnapshot::default()));
            match &row.snap {
                Some(snap) => {
                    slot.0 += 1;
                    slot.2.merge(snap);
                    fleet.merge(snap);
                }
                None => slot.1 += 1,
            }
        }

        let _ = writeln!(
            out,
            "# HELP sack_fleet_instances Live registered instances per cohort."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_instances gauge");
        for (cohort, (live, _, _)) in &by_cohort {
            let _ = writeln!(out, "sack_fleet_instances{{cohort=\"{cohort}\"}} {live}");
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_instances_dead Registered instances whose kernel died."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_instances_dead gauge");
        for (cohort, (_, dead, _)) in &by_cohort {
            let _ = writeln!(
                out,
                "sack_fleet_instances_dead{{cohort=\"{cohort}\"}} {dead}"
            );
        }
        let _ = writeln!(out, "# HELP sack_fleet_ticks Aggregation ticks completed.");
        let _ = writeln!(out, "# TYPE sack_fleet_ticks counter");
        let _ = writeln!(out, "sack_fleet_ticks {}", self.ticks());
        let _ = writeln!(
            out,
            "# HELP sack_fleet_alerts_total Fleet alerts raised per detector kind."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_alerts_total counter");
        for (kind, count) in self.alerts.lock().iter() {
            let _ = writeln!(out, "sack_fleet_alerts_total{{kind=\"{kind}\"}} {count}");
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_tracepoint_fired_total Fleet-wide events per tracepoint."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_tracepoint_fired_total counter");
        for point in Tracepoint::ALL {
            let _ = writeln!(
                out,
                "sack_fleet_tracepoint_fired_total{{point=\"{}\"}} {}",
                point.name(),
                fleet.point(point)
            );
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_denials_total Hook denials per cohort."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_denials_total counter");
        for (cohort, (_, _, snap)) in &by_cohort {
            let _ = writeln!(
                out,
                "sack_fleet_denials_total{{cohort=\"{cohort}\"}} {}",
                snap.denials()
            );
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_transitions_total SSM transitions per cohort."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_transitions_total counter");
        for (cohort, (_, _, snap)) in &by_cohort {
            let _ = writeln!(
                out,
                "sack_fleet_transitions_total{{cohort=\"{cohort}\"}} {}",
                snap.transitions()
            );
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_flight_dropped_total Flight records lost per cohort."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_flight_dropped_total counter");
        for (cohort, (_, _, snap)) in &by_cohort {
            let _ = writeln!(
                out,
                "sack_fleet_flight_dropped_total{{cohort=\"{cohort}\"}} {}",
                snap.flight_dropped
            );
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_instance_hook_exits_total Hook dispatches per instance."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_instance_hook_exits_total counter");
        for row in &rows {
            if let Some(snap) = &row.snap {
                let _ = writeln!(
                    out,
                    "sack_fleet_instance_hook_exits_total{{instance=\"{}\",cohort=\"{}\"}} {}",
                    row.instance,
                    row.cohort,
                    snap.hook_exits()
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_instance_denials_total Hook denials per instance."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_instance_denials_total counter");
        for row in &rows {
            if let Some(snap) = &row.snap {
                let _ = writeln!(
                    out,
                    "sack_fleet_instance_denials_total{{instance=\"{}\",cohort=\"{}\"}} {}",
                    row.instance,
                    row.cohort,
                    snap.denials()
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP sack_fleet_hook_latency_ns Hook dispatch latency per cohort, nanoseconds."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_hook_latency_ns histogram");
        for (cohort, (_, _, snap)) in &by_cohort {
            let hist = snap.hook_latency();
            let mut cumulative = 0u64;
            for (i, n) in hist.buckets.iter().enumerate() {
                cumulative += n;
                if *n > 0 {
                    let _ = writeln!(
                        out,
                        "sack_fleet_hook_latency_ns_bucket{{cohort=\"{cohort}\",le=\"{}\"}} {cumulative}",
                        sack_core::stats::bucket_upper_bound(i)
                    );
                }
            }
            let _ = writeln!(
                out,
                "sack_fleet_hook_latency_ns_bucket{{cohort=\"{cohort}\",le=\"+Inf\"}} {cumulative}"
            );
            let _ = writeln!(
                out,
                "sack_fleet_hook_latency_ns_sum{{cohort=\"{cohort}\"}} {}",
                hist.sum
            );
            let _ = writeln!(
                out,
                "sack_fleet_hook_latency_ns_count{{cohort=\"{cohort}\"}} {cumulative}"
            );
        }
        let fleet_hist = fleet.hook_latency();
        let _ = writeln!(
            out,
            "# HELP sack_fleet_hook_latency_p50_ns Fleet-level hook latency p50."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_hook_latency_p50_ns gauge");
        let _ = writeln!(
            out,
            "sack_fleet_hook_latency_p50_ns {}",
            fleet_hist.percentile(0.50)
        );
        let _ = writeln!(
            out,
            "# HELP sack_fleet_hook_latency_p95_ns Fleet-level hook latency p95."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_hook_latency_p95_ns gauge");
        let _ = writeln!(
            out,
            "sack_fleet_hook_latency_p95_ns {}",
            fleet_hist.percentile(0.95)
        );
        let _ = writeln!(
            out,
            "# HELP sack_fleet_hook_latency_p99_ns Fleet-level hook latency p99."
        );
        let _ = writeln!(out, "# TYPE sack_fleet_hook_latency_p99_ns gauge");
        let _ = writeln!(
            out,
            "sack_fleet_hook_latency_p99_ns {}",
            fleet_hist.percentile(0.99)
        );
        out
    }
}

impl fmt::Debug for FleetAggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetAggregator")
            .field("members", &self.len())
            .field("ticks", &self.ticks())
            .finish()
    }
}
