//! Streaming anomaly detectors over per-cohort telemetry deltas.
//!
//! Each detector consumes the per-cohort delta stream produced by
//! [`FleetAggregator::tick`](crate::FleetAggregator::tick) and emits a typed
//! [`FleetAlert`] naming the offending cohort, with a flight-recorder
//! excerpt from that cohort's lossiest instance so an operator (or the
//! rollout driver) can replay the seconds before the anomaly.
//!
//! The denial-rate detector keeps a per-cohort EWMA baseline; the first
//! observation primes the baseline without alerting, so a rollout driver
//! that ticks once before pushing gets a traffic-calibrated floor for free.

use std::collections::BTreeMap;
use std::fmt;

use crate::aggregator::{FleetAggregator, FleetTick};

/// The typed kind of a fleet anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAlertKind {
    /// Per-tick denial count spiked above the EWMA baseline.
    DenialSpike,
    /// Decision-cache hit rate collapsed under sustained lookups.
    HitRateCollapse,
    /// Situation-transition rate exceeded the storm threshold.
    TransitionStorm,
    /// A flight recorder overflowed (records were dropped) this tick.
    FlightOverflow,
}

impl FleetAlertKind {
    /// Stable label used in metrics and alert rendering.
    pub fn name(self) -> &'static str {
        match self {
            FleetAlertKind::DenialSpike => "denial_spike",
            FleetAlertKind::HitRateCollapse => "hit_rate_collapse",
            FleetAlertKind::TransitionStorm => "transition_storm",
            FleetAlertKind::FlightOverflow => "flight_overflow",
        }
    }
}

impl fmt::Display for FleetAlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One anomaly raised by the detector bank.
#[derive(Debug, Clone)]
pub struct FleetAlert {
    /// What tripped.
    pub kind: FleetAlertKind,
    /// The offending cohort.
    pub cohort: String,
    /// Aggregation tick at which the anomaly was observed.
    pub tick: u64,
    /// Human-readable cause, with the numbers that tripped the threshold.
    pub detail: String,
    /// Rendered tail of the cohort's lossiest flight recorder.
    pub flight_excerpt: Vec<String>,
}

impl fmt::Display for FleetAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[tick {}] {} cohort={}: {}",
            self.tick, self.kind, self.cohort, self.detail
        )
    }
}

/// Thresholds for the detector bank. `Default` is tuned for the in-process
/// simulation: small floors so tests can trip detectors deterministically,
/// EWMA smoothing close to the metricsd convention.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// EWMA smoothing factor for the denial baseline (0 < alpha <= 1).
    pub denial_alpha: f64,
    /// Spike multiple over baseline that raises [`FleetAlertKind::DenialSpike`].
    pub denial_spike_factor: f64,
    /// Absolute per-tick denial floor below which spikes are ignored.
    pub denial_min: u64,
    /// Minimum cache lookups per tick before hit rate is judged.
    pub hit_rate_min_lookups: u64,
    /// Hit-rate floor; below it [`FleetAlertKind::HitRateCollapse`] fires.
    pub hit_rate_min: f64,
    /// Per-tick transition count that raises [`FleetAlertKind::TransitionStorm`].
    pub transition_storm: u64,
    /// Flight entries attached to each alert.
    pub excerpt_len: usize,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            denial_alpha: 0.3,
            denial_spike_factor: 4.0,
            denial_min: 8,
            hit_rate_min_lookups: 128,
            hit_rate_min: 0.25,
            transition_storm: 256,
            excerpt_len: 8,
        }
    }
}

/// Per-cohort streaming state plus the thresholds: feed it every
/// [`FleetTick`] and collect alerts.
#[derive(Debug)]
pub struct DetectorBank {
    config: DetectorConfig,
    /// EWMA of per-tick denials, keyed by cohort. Absent until primed by
    /// the cohort's first observation.
    denial_baseline: BTreeMap<String, f64>,
}

impl DetectorBank {
    /// A bank with the given thresholds and no primed baselines.
    pub fn new(config: DetectorConfig) -> DetectorBank {
        DetectorBank {
            config,
            denial_baseline: BTreeMap::new(),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs every detector over one tick's per-cohort deltas. Alerts are
    /// also counted on `aggregator`'s Prometheus endpoint.
    pub fn observe(&mut self, tick: &FleetTick, aggregator: &FleetAggregator) -> Vec<FleetAlert> {
        let mut alerts = Vec::new();
        for (cohort, report) in &tick.cohorts {
            if report.live == 0 {
                continue;
            }
            let delta = &report.delta;

            // Denial-rate spike: EWMA baseline, primed on first sight.
            let denials = delta.denials();
            match self.denial_baseline.get(cohort).copied() {
                None => {
                    self.denial_baseline.insert(cohort.clone(), denials as f64);
                }
                Some(baseline) => {
                    let threshold = (baseline * self.config.denial_spike_factor)
                        .max(self.config.denial_min as f64);
                    if denials as f64 > threshold {
                        alerts.push(self.alert(
                            FleetAlertKind::DenialSpike,
                            cohort,
                            tick.tick,
                            format!(
                                "denials={denials}/tick vs baseline={baseline:.1} \
                                 (threshold {threshold:.1})"
                            ),
                            aggregator,
                        ));
                    }
                    let updated = self.config.denial_alpha * denials as f64
                        + (1.0 - self.config.denial_alpha) * baseline;
                    self.denial_baseline.insert(cohort.clone(), updated);
                }
            }

            // Cache hit-rate collapse under sustained lookups.
            let hits = delta.cache_hits();
            let lookups = hits + delta.cache_misses();
            if lookups >= self.config.hit_rate_min_lookups {
                let rate = hits as f64 / lookups as f64;
                if rate < self.config.hit_rate_min {
                    alerts.push(self.alert(
                        FleetAlertKind::HitRateCollapse,
                        cohort,
                        tick.tick,
                        format!(
                            "hit rate {rate:.3} over {lookups} lookups \
                             (floor {:.3})",
                            self.config.hit_rate_min
                        ),
                        aggregator,
                    ));
                }
            }

            // Transition storm.
            let transitions = delta.transitions();
            if transitions >= self.config.transition_storm {
                alerts.push(self.alert(
                    FleetAlertKind::TransitionStorm,
                    cohort,
                    tick.tick,
                    format!(
                        "{transitions} transitions/tick (threshold {})",
                        self.config.transition_storm
                    ),
                    aggregator,
                ));
            }

            // Flight-ring overflow: any loss this tick is an anomaly.
            if delta.flight_dropped > 0 {
                let worst = delta
                    .flight_dropped_by_producer
                    .iter()
                    .max_by_key(|(_, n)| **n)
                    .map(|(p, n)| format!(" worst producer {p} lost {n}"))
                    .unwrap_or_default();
                alerts.push(self.alert(
                    FleetAlertKind::FlightOverflow,
                    cohort,
                    tick.tick,
                    format!("{} flight records dropped;{worst}", delta.flight_dropped),
                    aggregator,
                ));
            }
        }
        alerts
    }

    fn alert(
        &self,
        kind: FleetAlertKind,
        cohort: &str,
        tick: u64,
        detail: String,
        aggregator: &FleetAggregator,
    ) -> FleetAlert {
        aggregator.record_alert(kind.name());
        FleetAlert {
            kind,
            cohort: cohort.to_string(),
            tick,
            detail,
            flight_excerpt: aggregator.flight_excerpt(cohort, self.config.excerpt_len),
        }
    }
}
