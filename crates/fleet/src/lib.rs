//! `sack-fleet` — the fleet telemetry plane (DESIGN.md §13).
//!
//! One vehicle runs one SACK kernel; a fleet backend watches thousands.
//! This crate closes that loop for the in-process reproduction:
//!
//! * [`FleetAggregator`] registers O(1000) kernel instances, pull-folds
//!   their [`TelemetrySnapshot`]s on a tick into per-cohort and fleet
//!   rollups, and re-exposes everything through a single Prometheus
//!   endpoint with `instance`/`cohort` labels;
//! * [`DetectorBank`] streams the per-tick deltas through four anomaly
//!   detectors — denial-rate spike (EWMA baseline), cache hit-rate
//!   collapse, transition storm, flight-ring overflow — each raising a
//!   typed [`FleetAlert`] with a flight-recorder excerpt;
//! * [`RolloutDriver`] stages a candidate policy cohort-by-cohort with
//!   the detectors as the promotion gate: clean soak windows promote,
//!   any alert republishes the prior policy over the existing RCU reload
//!   path, and every decision is a `fleet_rollout_*` tracepoint.
//!
//! Aggregation leans entirely on snapshot merge being associative and
//! commutative: the per-cohort fold trees here produce bit-identical
//! results to a flat serial fold, which the differential tests exploit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregator;
pub mod detect;
pub mod rollout;

pub use aggregator::{CohortReport, FleetAggregator, FleetTick};
pub use detect::{DetectorBank, DetectorConfig, FleetAlert, FleetAlertKind};
pub use rollout::{RolloutConfig, RolloutDriver, RolloutStatus};

#[doc(no_inline)]
pub use sack_core::TelemetrySnapshot;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sack_core::{Sack, TelemetrySnapshot};
    use sack_kernel::cred::Credentials;
    use sack_kernel::kernel::{Kernel, KernelBuilder};
    use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
    use sack_kernel::path::KPath;
    use sack_kernel::trace::Tracepoint;
    use sack_kernel::types::Pid;

    use super::*;

    /// Grants read on the car device tree in every situation.
    const BASE_POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { CAR; }
        state_per { normal: CAR; emergency: CAR; }
        per_rules { CAR: allow subject=* /dev/car/** r; }
    "#;

    /// Candidate that (deliberately) revokes door reads: the car tree stays
    /// in the protected set (the rule still covers it) but only grants
    /// writes, so reads start failing the moment it lands on a cohort.
    const NARROW_POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { CAR; }
        state_per { normal: CAR; emergency: CAR; }
        per_rules { CAR: allow subject=* /dev/car/** w; }
    "#;

    fn boot(policy: &str) -> (Arc<Kernel>, Arc<Sack>) {
        let sack = Sack::independent(policy).expect("test policy must compile");
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).expect("attach");
        kernel.trace().set_enabled(true);
        (kernel, sack)
    }

    /// Dispatches `n` door reads through the kernel's LSM stack (so the
    /// `hook_*` tracepoints fire) and returns how many were granted.
    fn read_door(kernel: &Kernel, n: usize) -> usize {
        open_door(kernel, n, AccessMask::READ)
    }

    /// Dispatches `n` door writes — never granted by the test policies.
    fn deny_door(kernel: &Kernel, n: usize) -> usize {
        n - open_door(kernel, n, AccessMask::WRITE)
    }

    fn open_door(kernel: &Kernel, n: usize, mask: AccessMask) -> usize {
        let ctx = HookCtx::new(Pid(4321), Credentials::user(1000, 1000), None);
        let path = KPath::new("/dev/car/door0").expect("path");
        let obj = ObjectRef::regular(&path);
        (0..n)
            .filter(|_| kernel.lsm().file_open(&ctx, &obj, mask).is_ok())
            .count()
    }

    fn fleet(cohorts: &[(&str, usize)]) -> (Arc<FleetAggregator>, Vec<(Arc<Kernel>, Arc<Sack>)>) {
        let agg = FleetAggregator::new();
        let mut instances = Vec::new();
        for (cohort, n) in cohorts {
            for _ in 0..*n {
                let (kernel, sack) = boot(BASE_POLICY);
                agg.register(&kernel, &sack, cohort);
                instances.push((kernel, sack));
            }
        }
        (agg, instances)
    }

    #[test]
    fn tick_folds_cohorts_and_matches_serial_fold() {
        let (agg, instances) = fleet(&[("canary", 2), ("wave-1", 3)]);
        for (kernel, _) in &instances {
            assert_eq!(read_door(kernel, 10), 10);
        }
        let tick = agg.tick();
        assert_eq!(tick.tick, 1);
        assert_eq!(tick.cohorts["canary"].live, 2);
        assert_eq!(tick.cohorts["wave-1"].live, 3);
        assert!(tick.cohorts["canary"].cumulative.hook_exits() >= 20);
        // The tree fold must equal a flat serial fold of fresh captures.
        let mut serial = TelemetrySnapshot::default();
        for (_, sack) in &instances {
            let tracing = sack.tracing().expect("tracing installed");
            let mut snap = TelemetrySnapshot::capture(tracing);
            // capture() stamps a fresh generation; normalize it away so the
            // comparison only sees the monotone counters.
            for generation in snap.instances.values_mut() {
                *generation = 0;
            }
            serial.merge(&snap);
        }
        let mut folded = tick.fleet.clone();
        for generation in folded.instances.values_mut() {
            *generation = 0;
        }
        assert_eq!(folded, serial);
        assert_eq!(
            folded.hook_latency().percentile(0.99),
            serial.hook_latency().percentile(0.99)
        );
    }

    #[test]
    fn dead_instance_mid_fold_is_reported_not_panicked() {
        let (agg, mut instances) = fleet(&[("canary", 3)]);
        for (kernel, _) in &instances {
            read_door(kernel, 5);
        }
        agg.tick();
        instances.pop();
        let tick = agg.tick();
        assert_eq!(tick.cohorts["canary"].live, 2);
        assert_eq!(tick.cohorts["canary"].dead, 1);
        // The dead member's last capture still counts toward the rollup.
        assert!(tick.cohorts["canary"].cumulative.hook_exits() >= 15);
    }

    #[test]
    fn prometheus_endpoint_pairs_help_and_type_for_every_family() {
        let (agg, instances) = fleet(&[("canary", 1), ("wave-1", 1)]);
        read_door(&instances[0].0, 4);
        agg.tick();
        agg.record_alert("denial_spike");
        let text = agg.render_prometheus();
        let mut families = 0;
        let mut last_help: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                last_help = rest.split_whitespace().next().map(str::to_string);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().expect("family name");
                assert_eq!(
                    last_help.as_deref(),
                    Some(name),
                    "family {name} must carry HELP immediately before TYPE"
                );
                families += 1;
            }
        }
        assert!(families >= 10, "expected a rich endpoint, got {families}");
        assert!(text.contains("sack_fleet_instances{cohort=\"canary\"} 1"));
        assert!(text.contains("cohort=\"wave-1\""));
        assert!(text.contains("sack_fleet_instance_hook_exits_total{instance=\""));
        assert!(text.contains("sack_fleet_alerts_total{kind=\"denial_spike\"} 1"));
    }

    #[test]
    fn denial_spike_detector_primes_then_fires_with_excerpt() {
        let (agg, instances) = fleet(&[("canary", 1)]);
        let kernel = &instances[0].0;
        let mut bank = DetectorBank::new(DetectorConfig::default());

        // Tick 1 primes the EWMA baseline: no alert even though the count
        // is nonzero from the bank's point of view.
        read_door(kernel, 50);
        let alerts = bank.observe(&agg.tick(), &agg);
        assert!(alerts.is_empty(), "first observation must only prime");

        // A denial burst (writes are never granted) must trip the spike.
        assert_eq!(deny_door(kernel, 64), 64);
        let alerts = bank.observe(&agg.tick(), &agg);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        let alert = &alerts[0];
        assert_eq!(alert.kind, FleetAlertKind::DenialSpike);
        assert_eq!(alert.cohort, "canary");
        assert!(
            !alert.flight_excerpt.is_empty(),
            "alert must carry a flight excerpt"
        );
    }

    #[test]
    fn rollout_promotes_cohort_by_cohort_on_clean_telemetry() {
        let (agg, instances) = fleet(&[("canary", 2), ("wave-1", 2)]);
        let config = RolloutConfig {
            soak_ticks: 2,
            ..RolloutConfig::default()
        };
        let mut driver = RolloutDriver::new(
            Arc::clone(&agg),
            vec!["canary".to_string(), "wave-1".to_string()],
            BASE_POLICY,
            BASE_POLICY,
            config,
        );
        let mut steps = 0;
        while !driver.finished() {
            for (kernel, _) in &instances {
                read_door(kernel, 5);
            }
            driver.step();
            steps += 1;
            assert!(steps < 32, "rollout must converge");
        }
        assert_eq!(driver.status(), RolloutStatus::Promoted);
        let hub = agg.hub();
        assert_eq!(hub.fired(Tracepoint::FleetRolloutBegin), 1);
        assert_eq!(hub.fired(Tracepoint::FleetRolloutPush), 2);
        assert_eq!(hub.fired(Tracepoint::FleetRolloutPromote), 2);
        assert_eq!(hub.fired(Tracepoint::FleetRolloutRollback), 0);
        assert_eq!(hub.fired(Tracepoint::FleetRolloutComplete), 1);
        // Decisions are mirrored into member flight recorders.
        let tracing = instances[0].1.tracing().expect("tracing");
        assert!(tracing
            .flight()
            .snapshot()
            .iter()
            .any(|e| e.event.tracepoint() == Tracepoint::FleetRolloutPush));
    }

    #[test]
    fn rollout_rolls_back_on_canary_denial_spike() {
        let (agg, instances) = fleet(&[("canary", 2), ("wave-1", 2)]);
        let config = RolloutConfig {
            soak_ticks: 4,
            ..RolloutConfig::default()
        };
        let mut driver = RolloutDriver::new(
            Arc::clone(&agg),
            vec!["canary".to_string(), "wave-1".to_string()],
            NARROW_POLICY,
            BASE_POLICY,
            config,
        );
        // Step 1: prime + push to canary. The candidate revokes door reads,
        // so ordinary canary traffic now shows up as a denial spike.
        driver.step();
        for (kernel, _) in &instances[..2] {
            assert_eq!(read_door(kernel, 40), 0, "candidate must deny doors");
        }
        for (kernel, _) in &instances[2..] {
            assert_eq!(read_door(kernel, 40), 40, "wave-1 still on prior");
        }
        driver.step();
        let status = driver.status();
        let RolloutStatus::RolledBack { cohort, reason } = status else {
            panic!("expected rollback, got {status}");
        };
        assert_eq!(cohort, "canary");
        assert!(reason.contains("denial_spike"), "{reason}");
        // Rollback republished the prior policy: door reads work again.
        for (kernel, _) in &instances {
            assert_eq!(read_door(kernel, 8), 8, "prior policy restored");
        }
        let hub = agg.hub();
        assert_eq!(hub.fired(Tracepoint::FleetRolloutRollback), 1);
        assert_eq!(hub.fired(Tracepoint::FleetRolloutComplete), 1);
        // The fleet flight recorder replays the decision trail.
        let decisions: Vec<Tracepoint> = agg
            .tracing()
            .flight()
            .snapshot()
            .iter()
            .map(|e| e.event.tracepoint())
            .filter(|p| {
                matches!(
                    p,
                    Tracepoint::FleetRolloutBegin
                        | Tracepoint::FleetRolloutPush
                        | Tracepoint::FleetRolloutRollback
                        | Tracepoint::FleetRolloutComplete
                )
            })
            .collect();
        assert_eq!(
            decisions,
            vec![
                Tracepoint::FleetRolloutBegin,
                Tracepoint::FleetRolloutPush,
                Tracepoint::FleetRolloutRollback,
                Tracepoint::FleetRolloutComplete,
            ]
        );
    }
}
