//! Health-gated staged policy rollout.
//!
//! The driver pushes a candidate policy to the first (canary) cohort, then
//! watches the anomaly detectors over a configurable soak window; each
//! clean window promotes the next cohort, and *any* alert anywhere in the
//! fleet republishes the prior `ActivePolicy` (through the existing RCU
//! reload path) on every upgraded instance. Every decision — begin, push,
//! promote, rollback, complete — is emitted as a `fleet_rollout_*`
//! tracepoint on the fleet hub and mirrored to the affected instances'
//! hubs, so both the fleet flight recorder and each instance's own ring
//! explain why its policy changed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sack_kernel::trace::TraceEvent;

use crate::aggregator::FleetAggregator;
use crate::detect::{DetectorBank, DetectorConfig, FleetAlert};

/// Monotonic rollout identifier source.
static NEXT_ROLLOUT: AtomicU64 = AtomicU64::new(1);

/// Knobs for one staged rollout.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Clean aggregation ticks a cohort must soak before promotion.
    pub soak_ticks: u64,
    /// Detector thresholds used for the health gate.
    pub detectors: DetectorConfig,
}

impl Default for RolloutConfig {
    fn default() -> RolloutConfig {
        RolloutConfig {
            soak_ticks: 3,
            detectors: DetectorConfig::default(),
        }
    }
}

/// Where a rollout currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutStatus {
    /// The candidate is live on `cohort`, which has soaked `ticks_clean`
    /// of the required window.
    Soaking {
        /// Cohort currently under observation.
        cohort: String,
        /// Clean ticks accumulated so far.
        ticks_clean: u64,
    },
    /// Every cohort promoted; the candidate is fleet-wide.
    Promoted,
    /// An alert fired; every upgraded instance runs the prior policy again.
    RolledBack {
        /// The cohort the triggering alert named.
        cohort: String,
        /// Rendering of the triggering alert.
        reason: String,
    },
}

impl fmt::Display for RolloutStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutStatus::Soaking {
                cohort,
                ticks_clean,
            } => write!(f, "soaking cohort={cohort} clean={ticks_clean}"),
            RolloutStatus::Promoted => f.write_str("promoted"),
            RolloutStatus::RolledBack { cohort, reason } => {
                write!(f, "rolled back at cohort={cohort}: {reason}")
            }
        }
    }
}

enum Stage {
    NotStarted,
    Soaking { cohort_idx: usize, ticks_clean: u64 },
    Done { promoted: bool },
}

/// Drives one candidate policy cohort-by-cohort across the fleet with the
/// detectors as the promotion gate.
pub struct RolloutDriver {
    id: u64,
    aggregator: Arc<FleetAggregator>,
    /// Stage order; index 0 is the canary.
    cohorts: Vec<String>,
    candidate: String,
    prior: String,
    config: RolloutConfig,
    bank: DetectorBank,
    stage: Stage,
    /// Indices into `cohorts` currently running the candidate.
    upgraded: Vec<usize>,
    alerts: Vec<FleetAlert>,
}

impl RolloutDriver {
    /// Plans a rollout of `candidate` over `cohorts` (canary first),
    /// remembering `prior` as the rollback target.
    pub fn new(
        aggregator: Arc<FleetAggregator>,
        cohorts: Vec<String>,
        candidate: &str,
        prior: &str,
        config: RolloutConfig,
    ) -> RolloutDriver {
        RolloutDriver {
            id: NEXT_ROLLOUT.fetch_add(1, Ordering::Relaxed),
            aggregator,
            cohorts,
            candidate: candidate.to_string(),
            prior: prior.to_string(),
            bank: DetectorBank::new(config.detectors.clone()),
            config,
            stage: Stage::NotStarted,
            upgraded: Vec::new(),
            alerts: Vec::new(),
        }
    }

    /// This rollout's identifier (stamped on every tracepoint it emits).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Every alert observed so far, in firing order.
    pub fn alerts(&self) -> &[FleetAlert] {
        &self.alerts
    }

    /// Current status.
    pub fn status(&self) -> RolloutStatus {
        match &self.stage {
            Stage::NotStarted => RolloutStatus::Soaking {
                cohort: self.cohorts.first().cloned().unwrap_or_default(),
                ticks_clean: 0,
            },
            Stage::Soaking {
                cohort_idx,
                ticks_clean,
            } => RolloutStatus::Soaking {
                cohort: self.cohorts[*cohort_idx].clone(),
                ticks_clean: *ticks_clean,
            },
            Stage::Done { promoted: true } => RolloutStatus::Promoted,
            Stage::Done { promoted: false } => match self.alerts.first() {
                Some(alert) => RolloutStatus::RolledBack {
                    cohort: alert.cohort.clone(),
                    reason: alert.to_string(),
                },
                None => RolloutStatus::RolledBack {
                    cohort: String::new(),
                    reason: "rollout aborted".to_string(),
                },
            },
        }
    }

    /// True once the rollout has promoted everywhere or rolled back.
    pub fn finished(&self) -> bool {
        matches!(self.stage, Stage::Done { .. })
    }

    /// Advances the rollout by one aggregation tick.
    ///
    /// The first call primes the detector baselines from current traffic,
    /// emits `fleet_rollout_begin`, and pushes the candidate to the canary
    /// cohort. Each later call folds the fleet, runs the detectors, and
    /// either extends the soak, promotes the next cohort, or rolls the
    /// whole fleet back. Callers drive hook traffic between steps.
    pub fn step(&mut self) -> RolloutStatus {
        match self.stage {
            Stage::Done { .. } => return self.status(),
            Stage::NotStarted => {
                // Baseline-priming fold: the first observation of each
                // cohort seeds its EWMA without alerting.
                let tick = self.aggregator.tick();
                let _ = self.bank.observe(&tick, &self.aggregator);
                self.emit_all(TraceEvent::FleetRolloutBegin {
                    rollout: self.id,
                    cohorts: self.cohorts.len(),
                });
                self.push(0);
                self.stage = Stage::Soaking {
                    cohort_idx: 0,
                    ticks_clean: 0,
                };
                return self.status();
            }
            Stage::Soaking { .. } => {}
        }

        let tick = self.aggregator.tick();
        let alerts = self.bank.observe(&tick, &self.aggregator);
        if !alerts.is_empty() {
            self.alerts.extend(alerts);
            self.rollback();
            return self.status();
        }

        let Stage::Soaking {
            cohort_idx,
            ticks_clean,
        } = &mut self.stage
        else {
            unreachable!("soaking checked above");
        };
        *ticks_clean += 1;
        if *ticks_clean < self.config.soak_ticks {
            return self.status();
        }

        // Clean window: promote this cohort and push the next (or finish).
        let idx = *cohort_idx;
        let cohort = self.cohorts[idx].clone();
        let soak = *ticks_clean;
        self.emit_cohort(
            &cohort,
            TraceEvent::FleetRolloutPromote {
                rollout: self.id,
                cohort: cohort.clone(),
                soak_ticks: soak,
            },
        );
        if idx + 1 < self.cohorts.len() {
            self.push(idx + 1);
            self.stage = Stage::Soaking {
                cohort_idx: idx + 1,
                ticks_clean: 0,
            };
        } else {
            self.emit_all(TraceEvent::FleetRolloutComplete {
                rollout: self.id,
                promoted: true,
            });
            self.stage = Stage::Done { promoted: true };
        }
        self.status()
    }

    /// Publishes the candidate on every live instance of cohort `idx`.
    fn push(&mut self, idx: usize) {
        let cohort = self.cohorts[idx].clone();
        let sacks = self.aggregator.cohort_sacks(&cohort);
        let mut pushed = 0usize;
        for (_, sack) in &sacks {
            if sack.reload_policy(&self.candidate).is_ok() {
                pushed += 1;
            }
        }
        self.upgraded.push(idx);
        self.emit_cohort(
            &cohort,
            TraceEvent::FleetRolloutPush {
                rollout: self.id,
                cohort: cohort.clone(),
                instances: pushed,
            },
        );
    }

    /// Republishes the prior policy on every upgraded cohort (newest
    /// first), emitting one rollback decision per cohort.
    fn rollback(&mut self) {
        let reason = self
            .alerts
            .first()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "unknown".to_string());
        for idx in self.upgraded.clone().into_iter().rev() {
            let cohort = self.cohorts[idx].clone();
            let sacks = self.aggregator.cohort_sacks(&cohort);
            let mut reverted = 0usize;
            for (_, sack) in &sacks {
                if sack.reload_policy(&self.prior).is_ok() {
                    reverted += 1;
                }
            }
            self.emit_cohort(
                &cohort,
                TraceEvent::FleetRolloutRollback {
                    rollout: self.id,
                    cohort: cohort.clone(),
                    reason: reason.clone(),
                    instances: reverted,
                },
            );
        }
        self.upgraded.clear();
        self.emit_all(TraceEvent::FleetRolloutComplete {
            rollout: self.id,
            promoted: false,
        });
        self.stage = Stage::Done { promoted: false };
    }

    /// Emits on the fleet hub and every member hub.
    fn emit_all(&self, event: TraceEvent) {
        self.aggregator.hub().emit(&event);
        for hub in self.aggregator.all_hubs() {
            hub.emit(&event);
        }
    }

    /// Emits on the fleet hub and the named cohort's member hubs.
    fn emit_cohort(&self, cohort: &str, event: TraceEvent) {
        self.aggregator.hub().emit(&event);
        for hub in self.aggregator.cohort_hubs(cohort) {
            hub.emit(&event);
        }
    }
}

impl fmt::Debug for RolloutDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RolloutDriver")
            .field("id", &self.id)
            .field("cohorts", &self.cohorts)
            .field("status", &self.status())
            .finish()
    }
}
