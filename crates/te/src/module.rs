//! The type-enforcement LSM: per-task domains, exec transitions, and
//! allow-rule mediation of the file hooks.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use sack_apparmor::profile::FilePerms;
use sack_kernel::error::{Errno, KernelError, KernelResult};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectKind, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;

use crate::policy::{TePolicy, TypeId};

/// The TE security module.
pub struct TypeEnforcement {
    policy: Arc<TePolicy>,
    domains: RwLock<HashMap<Pid, TypeId>>,
}

impl TypeEnforcement {
    /// Creates the module over a parsed policy. Tasks start unconfined and
    /// enter domains through `domain_transition` rules at exec.
    pub fn new(policy: Arc<TePolicy>) -> Arc<TypeEnforcement> {
        Arc::new(TypeEnforcement {
            policy,
            domains: RwLock::new(HashMap::new()),
        })
    }

    /// The policy.
    pub fn policy(&self) -> &Arc<TePolicy> {
        &self.policy
    }

    /// The domain of a task (unconfined when untracked).
    pub fn domain_of(&self, pid: Pid) -> TypeId {
        self.domains
            .read()
            .get(&pid)
            .copied()
            .unwrap_or(self.policy.unconfined())
    }

    /// Administratively places a task in a domain.
    ///
    /// # Errors
    ///
    /// `EINVAL` for undeclared domain names.
    pub fn set_domain(&self, pid: Pid, domain: &str) -> KernelResult<()> {
        let ty = self
            .policy
            .type_id(domain)
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "te"))?;
        self.domains.write().insert(pid, ty);
        Ok(())
    }

    fn check(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, requested: FilePerms) -> KernelResult<()> {
        if matches!(obj.kind, ObjectKind::Pipe | ObjectKind::Socket) {
            return Ok(());
        }
        let subject = self.domain_of(ctx.pid);
        if subject == self.policy.unconfined() {
            return Ok(());
        }
        let object = self.policy.label_of(obj.path.as_str());
        if self.policy.permits(subject, object, requested) {
            Ok(())
        } else {
            Err(KernelError::with_context(Errno::EACCES, "te"))
        }
    }
}

impl SecurityModule for TypeEnforcement {
    fn name(&self) -> &'static str {
        "te"
    }

    fn file_open(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, mask: AccessMask) -> KernelResult<()> {
        self.check(ctx, obj, FilePerms::from_access_mask(mask))
    }

    fn file_permission(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        self.check(ctx, obj, FilePerms::from_access_mask(mask))
    }

    fn file_ioctl(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, _cmd: u32) -> KernelResult<()> {
        self.check(ctx, obj, FilePerms::IOCTL)
    }

    fn file_mmap(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, _mask: AccessMask) -> KernelResult<()> {
        self.check(ctx, obj, FilePerms::MMAP)
    }

    fn bprm_committed(&self, ctx: &HookCtx, exe: &KPath) {
        let from = self.domain_of(ctx.pid);
        if let Some(to) = self.policy.transition_for(from, exe.as_str()) {
            self.domains.write().insert(ctx.pid, to);
        }
    }

    fn task_alloc(&self, ctx: &HookCtx, child: Pid) -> KernelResult<()> {
        let domain = self.domain_of(ctx.pid);
        if domain != self.policy.unconfined() {
            self.domains.write().insert(child, domain);
        }
        Ok(())
    }

    fn task_free(&self, pid: Pid) {
        self.domains.write().remove(&pid);
    }
}

impl fmt::Debug for TypeEnforcement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypeEnforcement")
            .field("policy", &self.policy)
            .field("confined", &self.domains.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_kernel::cred::Credentials;
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::types::Mode;
    use sack_kernel::{Gid, Uid};

    const POLICY: &str = r#"
        type media_t;
        type media_exec_t;
        type audio_dev_t;
        label /usr/bin/media* media_exec_t;
        label /dev/car/audio audio_dev_t;
        domain_transition unconfined_t media_exec_t media_t;
        allow media_t audio_dev_t { read write };
        allow media_t media_exec_t { read execute };
    "#;

    fn boot() -> (Arc<sack_kernel::Kernel>, Arc<TypeEnforcement>) {
        let policy = Arc::new(TePolicy::parse(POLICY).unwrap());
        let te = TypeEnforcement::new(policy);
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&te) as Arc<dyn SecurityModule>)
            .boot();
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/dev/car").unwrap())
            .unwrap();
        for (path, mode) in [
            ("/dev/car/audio", Mode(0o666)),
            ("/dev/car/door0", Mode(0o666)),
            ("/usr/bin/media_app", Mode::EXEC),
        ] {
            kernel
                .vfs()
                .create_file(&KPath::new(path).unwrap(), mode, Uid::ROOT, Gid(0))
                .unwrap();
        }
        (kernel, te)
    }

    #[test]
    fn exec_transitions_into_domain_and_confines() {
        let (kernel, te) = boot();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        assert_eq!(te.policy().type_name(te.domain_of(p.pid())), "unconfined_t");
        p.exec("/usr/bin/media_app").unwrap();
        assert_eq!(te.policy().type_name(te.domain_of(p.pid())), "media_t");
        // Allowed: audio read/write.
        assert!(p.open("/dev/car/audio", OpenFlags::read_write()).is_ok());
        // Denied: door device (no rule for media_t on unlabeled-or-door).
        let err = p
            .open("/dev/car/door0", OpenFlags::read_only())
            .unwrap_err();
        assert_eq!(err.context(), Some("te"));
        // Denied: everything unlabeled, including /tmp.
        assert!(p.write_file("/tmp/x", b"1").is_err());
    }

    #[test]
    fn fork_inherits_domain_and_exit_cleans_up() {
        let (kernel, te) = boot();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        p.exec("/usr/bin/media_app").unwrap();
        let child = p.fork().unwrap();
        assert_eq!(te.policy().type_name(te.domain_of(child.pid())), "media_t");
        let pid = child.pid();
        child.exit();
        assert_eq!(te.policy().type_name(te.domain_of(pid)), "unconfined_t");
    }

    #[test]
    fn unconfined_tasks_are_unrestricted() {
        let (kernel, _te) = boot();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        assert!(p.write_file("/tmp/anything", b"1").is_ok());
        assert!(p.open("/dev/car/door0", OpenFlags::read_only()).is_ok());
    }

    #[test]
    fn set_domain_admin_api() {
        let (kernel, te) = boot();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        te.set_domain(p.pid(), "media_t").unwrap();
        assert!(p.open("/dev/car/audio", OpenFlags::read_only()).is_ok());
        assert!(p.write_file("/tmp/x", b"1").is_err());
        assert!(te.set_domain(p.pid(), "ghost_t").is_err());
    }
}
