//! Type-enforcement policy: types, labeling rules, domain transitions and
//! allow rules, with a small SELinux-flavoured text syntax.
//!
//! ```text
//! type media_t;
//! type media_exec_t;
//! type audio_dev_t;
//! label /usr/bin/media* media_exec_t;
//! label /dev/car/audio audio_dev_t;
//! domain_transition unconfined_t media_exec_t media_t;
//! allow media_t audio_dev_t { read write ioctl };
//! ```

use std::collections::HashMap;
use std::fmt;

use sack_apparmor::dfa::{Dfa, DfaBuilder, DfaStats};
use sack_apparmor::glob::Glob;
use sack_apparmor::profile::FilePerms;

/// Index of a type within its policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub usize);

/// The built-in subject type for unconfined tasks; allowed everything.
pub const UNCONFINED: &str = "unconfined_t";

/// The built-in object type for paths matched by no labeling rule.
pub const UNLABELED: &str = "unlabeled_t";

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTeError {
    /// 1-based line.
    pub line: usize,
    message: String,
}

impl ParseTeError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTeError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTeError {}

/// A compiled TE policy.
pub struct TePolicy {
    types: Vec<String>,
    index: HashMap<String, TypeId>,
    labeling: Vec<(Glob, TypeId)>,
    /// All labeling globs merged into one DFA (built by the same
    /// `sack-apparmor` builder the MAC matchers use); accepting states
    /// carry the first-match type resolved at parse time.
    label_dfa: Dfa<TypeId>,
    transitions: Vec<(TypeId, TypeId, TypeId)>,
    allows: HashMap<(TypeId, TypeId), FilePerms>,
}

impl TePolicy {
    /// Parses policy text.
    ///
    /// # Errors
    ///
    /// [`ParseTeError`] for unknown statements, undeclared types, or
    /// malformed rules.
    pub fn parse(text: &str) -> Result<TePolicy, ParseTeError> {
        let mut policy = TePolicy {
            types: Vec::new(),
            index: HashMap::new(),
            labeling: Vec::new(),
            label_dfa: DfaBuilder::new().build(|_| TypeId(0)),
            transitions: Vec::new(),
            allows: HashMap::new(),
        };
        policy.declare(UNCONFINED);
        policy.declare(UNLABELED);

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            // Statements are `;`-terminated; several may share a line.
            for statement in line.split(';') {
                let line = statement.trim();
                if line.is_empty() {
                    continue;
                }
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("type") => {
                        let name = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing type name"))?;
                        if policy.index.contains_key(name) {
                            return Err(ParseTeError::new(
                                lineno,
                                format!("duplicate type `{name}`"),
                            ));
                        }
                        policy.declare(name);
                    }
                    Some("label") => {
                        let pattern = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing label pattern"))?;
                        let ty = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing label type"))?;
                        let ty = policy.lookup(ty, lineno)?;
                        let glob = Glob::compile(pattern)
                            .map_err(|e| ParseTeError::new(lineno, e.to_string()))?;
                        policy.labeling.push((glob, ty));
                    }
                    Some("domain_transition") => {
                        let from = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing source domain"))?;
                        let entry = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing entrypoint type"))?;
                        let to = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing target domain"))?;
                        let from = policy.lookup(from, lineno)?;
                        let entry = policy.lookup(entry, lineno)?;
                        let to = policy.lookup(to, lineno)?;
                        policy.transitions.push((from, entry, to));
                    }
                    Some("allow") => {
                        let subj = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing subject type"))?;
                        let obj = words
                            .next()
                            .ok_or_else(|| ParseTeError::new(lineno, "missing object type"))?;
                        let subj = policy.lookup(subj, lineno)?;
                        let obj = policy.lookup(obj, lineno)?;
                        let rest: String = words.collect::<Vec<_>>().join(" ");
                        let perms =
                            parse_av_perms(&rest).map_err(|m| ParseTeError::new(lineno, m))?;
                        let entry = policy
                            .allows
                            .entry((subj, obj))
                            .or_insert(FilePerms::empty());
                        *entry = entry.union(perms);
                    }
                    Some(other) => {
                        return Err(ParseTeError::new(
                            lineno,
                            format!("unknown statement `{other}`"),
                        ))
                    }
                    None => {}
                }
            }
        }
        // Compile the labeling rules into one unified DFA. Labeling is
        // first-match-wins, and accepting tags arrive sorted by rule
        // index, so the lowest tag is the winning rule.
        let unlabeled = policy.index[UNLABELED];
        let mut builder = DfaBuilder::new();
        for (tag, (glob, _)) in policy.labeling.iter().enumerate() {
            builder.add_glob(glob, tag as u32);
        }
        policy.label_dfa = builder.build(|tags| {
            tags.first()
                .map(|&tag| policy.labeling[tag as usize].1)
                .unwrap_or(unlabeled)
        });
        Ok(policy)
    }

    fn declare(&mut self, name: &str) -> TypeId {
        let id = TypeId(self.types.len());
        self.types.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str, line: usize) -> Result<TypeId, ParseTeError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| ParseTeError::new(line, format!("undeclared type `{name}`")))
    }

    /// The id of a declared type, if any.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.index.get(name).copied()
    }

    /// Name of a type.
    ///
    /// # Panics
    ///
    /// Panics for ids from another policy.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.types[id.0]
    }

    /// The unconfined subject type.
    pub fn unconfined(&self) -> TypeId {
        self.index[UNCONFINED]
    }

    /// Labels a path: first matching labeling rule wins, else `unlabeled_t`.
    ///
    /// Resolved by one walk of the pre-compiled labeling DFA — O(|path|)
    /// independent of how many labeling rules the policy holds.
    pub fn label_of(&self, path: &str) -> TypeId {
        *self.label_dfa.eval(path)
    }

    /// Labels a path with the original linear scan, kept as the
    /// differential-testing oracle for [`TePolicy::label_of`].
    pub fn label_of_scan(&self, path: &str) -> TypeId {
        self.labeling
            .iter()
            .find(|(glob, _)| glob.matches(path))
            .map(|(_, ty)| *ty)
            .unwrap_or(self.index[UNLABELED])
    }

    /// Size statistics of the labeling DFA, for diagnostics.
    pub fn label_dfa_stats(&self) -> DfaStats {
        self.label_dfa.stats()
    }

    /// The domain a task in `from` enters when exec'ing `exe`: SELinux
    /// semantics — the transition is keyed on the executable's *label*
    /// (its entrypoint type), not on the path directly.
    pub fn transition_for(&self, from: TypeId, exe: &str) -> Option<TypeId> {
        let entry = self.label_of(exe);
        self.transitions
            .iter()
            .find(|(f, e, _)| *f == from && *e == entry)
            .map(|(_, _, to)| *to)
    }

    /// Access decision: unconfined subjects pass; everything else needs an
    /// allow rule covering the requested permissions.
    pub fn permits(&self, subject: TypeId, object: TypeId, requested: FilePerms) -> bool {
        if subject == self.unconfined() {
            return true;
        }
        self.allows
            .get(&(subject, object))
            .is_some_and(|granted| granted.contains(requested))
    }

    /// Number of declared types (including the two built-ins).
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of allow rules.
    pub fn allow_count(&self) -> usize {
        self.allows.len()
    }

    /// Iterates the labeling rules in match order (first match wins).
    ///
    /// Static analyzers use this to reason about which object types a path
    /// pattern can carry without enumerating concrete paths.
    pub fn labeling_rules(&self) -> impl Iterator<Item = (&Glob, TypeId)> {
        self.labeling.iter().map(|(glob, ty)| (glob, *ty))
    }

    /// Iterates the allow rules as `(subject, object, granted)` triples.
    pub fn allow_rules(&self) -> impl Iterator<Item = (TypeId, TypeId, FilePerms)> + '_ {
        self.allows
            .iter()
            .map(|((subj, obj), perms)| (*subj, *obj, *perms))
    }
}

impl fmt::Debug for TePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TePolicy")
            .field("types", &self.types.len())
            .field("labels", &self.labeling.len())
            .field("allows", &self.allows.len())
            .finish()
    }
}

/// Parses `{ read write ioctl }` (or a single bare word) into permissions.
fn parse_av_perms(text: &str) -> Result<FilePerms, String> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .unwrap_or(text)
        .trim();
    if inner.is_empty() {
        return Err("empty permission set".to_string());
    }
    let mut perms = FilePerms::empty();
    for word in inner.split_whitespace() {
        perms = perms.union(match word {
            "read" => FilePerms::READ,
            "write" => FilePerms::WRITE,
            "append" => FilePerms::APPEND,
            "execute" => FilePerms::EXEC,
            "map" => FilePerms::MMAP,
            "ioctl" => FilePerms::IOCTL,
            other => return Err(format!("unknown permission `{other}`")),
        });
    }
    Ok(perms)
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: &str = r#"
        # media player confinement
        type media_t;
        type media_exec_t;
        type audio_dev_t;
        type door_dev_t;
        label /usr/bin/media* media_exec_t;
        label /dev/car/audio audio_dev_t;
        label /dev/car/door* door_dev_t;
        domain_transition unconfined_t media_exec_t media_t;
        allow media_t audio_dev_t { read write ioctl };
        allow media_t door_dev_t { read };
    "#;

    #[test]
    fn parses_and_decides() {
        let p = TePolicy::parse(POLICY).unwrap();
        assert_eq!(p.type_count(), 6); // 4 declared + 2 built-ins
        assert_eq!(p.allow_count(), 2);
        let media = p.type_id("media_t").unwrap();
        let audio = p.label_of("/dev/car/audio");
        let door = p.label_of("/dev/car/door0");
        assert_eq!(p.type_name(audio), "audio_dev_t");
        assert!(p.permits(media, audio, FilePerms::WRITE | FilePerms::IOCTL));
        assert!(p.permits(media, door, FilePerms::READ));
        assert!(!p.permits(media, door, FilePerms::WRITE));
        // No rule for unlabeled objects.
        let unlabeled = p.label_of("/etc/passwd");
        assert_eq!(p.type_name(unlabeled), UNLABELED);
        assert!(!p.permits(media, unlabeled, FilePerms::READ));
        // Unconfined passes everything.
        assert!(p.permits(p.unconfined(), door, FilePerms::all()));
    }

    #[test]
    fn domain_transition_lookup() {
        let p = TePolicy::parse(POLICY).unwrap();
        let media = p.type_id("media_t").unwrap();
        assert_eq!(
            p.transition_for(p.unconfined(), "/usr/bin/media_app"),
            Some(media)
        );
        assert_eq!(p.transition_for(p.unconfined(), "/usr/bin/other"), None);
        assert_eq!(p.transition_for(media, "/usr/bin/media_app"), None);
    }

    #[test]
    fn first_label_match_wins() {
        let p = TePolicy::parse("type a_t; type b_t; label /dev/** a_t; label /dev/car/** b_t;")
            .unwrap();
        assert_eq!(p.type_name(p.label_of("/dev/car/door0")), "a_t");
    }

    #[test]
    fn label_dfa_agrees_with_scan() {
        let p = TePolicy::parse(POLICY).unwrap();
        for path in [
            "/usr/bin/mediaplayer",
            "/usr/bin/media",
            "/dev/car/audio",
            "/dev/car/door0",
            "/dev/car/door",
            "/dev/car/window0",
            "/etc/passwd",
            "",
        ] {
            assert_eq!(p.label_of(path), p.label_of_scan(path), "path `{path}`");
        }
        assert!(p.label_dfa_stats().states > 1);
    }

    #[test]
    fn allow_rules_accumulate() {
        let p =
            TePolicy::parse("type s_t; type o_t; allow s_t o_t { read }; allow s_t o_t { write };")
                .unwrap();
        let s = p.type_id("s_t").unwrap();
        let o = p.type_id("o_t").unwrap();
        assert!(p.permits(s, o, FilePerms::READ | FilePerms::WRITE));
    }

    #[test]
    fn parse_errors() {
        assert!(TePolicy::parse("type unconfined_t;")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        assert!(TePolicy::parse("label /x ghost_t;")
            .unwrap_err()
            .to_string()
            .contains("undeclared"));
        assert!(TePolicy::parse("allow a b { read };")
            .unwrap_err()
            .to_string()
            .contains("undeclared"));
        assert!(
            TePolicy::parse("type a_t; type b_t; allow a_t b_t { fly };")
                .unwrap_err()
                .to_string()
                .contains("unknown permission")
        );
        assert!(TePolicy::parse("frobnicate;")
            .unwrap_err()
            .to_string()
            .contains("unknown statement"));
        let err = TePolicy::parse("type ok_t;\nlabel /x[ ok_t;").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn single_bare_permission_accepted() {
        let p = TePolicy::parse("type s_t; type o_t; allow s_t o_t read;").unwrap();
        let s = p.type_id("s_t").unwrap();
        let o = p.type_id("o_t").unwrap();
        assert!(p.permits(s, o, FilePerms::READ));
    }
}
