//! # sack-te — minimal SELinux-style type enforcement
//!
//! A second baseline MAC model for the simulated kernel, alongside the
//! AppArmor-style module: the paper notes that "most security modules are
//! based on the type enforcement (TE) model" and that SACK's LSM-stacking
//! compatibility is generic. This crate makes that claim testable: a small
//! TE module (types, path labeling, exec domain transitions, allow rules)
//! that stacks with SACK exactly like AppArmor does
//! (`tests/te_stacking.rs` at the workspace root).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use sack_te::{TePolicy, TypeEnforcement};
//! use sack_kernel::{KernelBuilder, Credentials, SecurityModule, Mode, Uid, Gid};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let policy = Arc::new(TePolicy::parse(r#"
//!     type app_t;
//!     type app_exec_t;
//!     type data_t;
//!     label /usr/bin/app app_exec_t;
//!     label /data/** data_t;
//!     domain_transition unconfined_t app_exec_t app_t;
//!     allow app_t data_t { read write };
//!     allow app_t app_exec_t { read execute };
//! "#)?);
//! let te = TypeEnforcement::new(policy);
//! let kernel = KernelBuilder::new()
//!     .security_module(te.clone() as Arc<dyn SecurityModule>)
//!     .boot();
//! kernel.vfs().mkdir_all(&"/data".parse()?)?;
//! kernel.vfs().create_file(&"/usr/bin/app".parse()?, Mode::EXEC, Uid::ROOT, Gid(0))?;
//! kernel.vfs().create_file(&"/data/file".parse()?, Mode(0o666), Uid::ROOT, Gid(0))?;
//! let proc = kernel.spawn(Credentials::user(1000, 1000));
//! proc.exec("/usr/bin/app")?; // enters app_t
//! assert!(proc.read_to_vec("/data/file").is_ok());      // allowed by TE
//! assert!(proc.write_file("/tmp/x", b"n").is_err());    // unlabeled: denied
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod module;
pub mod policy;

pub use module::TypeEnforcement;
pub use policy::{ParseTeError, TePolicy, TypeId, UNCONFINED, UNLABELED};
