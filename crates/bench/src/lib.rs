//! # sack-bench — shared fixtures for the paper-reproduction benchmarks
//!
//! The Criterion targets in `benches/` regenerate every table and figure of
//! the SACK paper's evaluation (see `DESIGN.md` §3 for the experiment
//! index). This library crate holds the fixtures they share.

#![warn(missing_docs)]

use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_kernel::types::Fd;
use sack_kernel::uctx::UserContext;
use sack_lmbench::testbed::{LsmConfig, TestBed, TestBedOptions};

/// The non-baseline configurations of Table II, with display labels.
pub fn table2_configs() -> Vec<(&'static str, LsmConfig)> {
    vec![
        ("apparmor-baseline", LsmConfig::AppArmor),
        ("sack-enhanced-apparmor", LsmConfig::SackEnhancedAppArmor),
        ("independent-sack", LsmConfig::IndependentSack),
    ]
}

/// Boots a testbed for a Table II column.
pub fn boot_config(config: LsmConfig) -> TestBed {
    TestBed::boot(&TestBedOptions::new(config))
}

/// Boots the Table III sweep point: SACK-enhanced AppArmor with `rules`
/// synthetic SACK rules.
pub fn boot_rule_count(rules: usize) -> TestBed {
    TestBed::boot(&TestBedOptions::new(LsmConfig::SackEnhancedAppArmor).with_sack_rules(rules))
}

/// Boots the Fig. 3a sweep point: independent SACK (the worst case, per the
/// paper) with `states` situation states.
pub fn boot_state_count(states: usize) -> TestBed {
    TestBed::boot(&TestBedOptions::new(LsmConfig::IndependentSack).with_sack_states(states))
}

/// A kernel running independent SACK with the two-state high/low-speed
/// policy of the Fig. 3b experiment, plus an event-writer process holding
/// `CAP_MAC_ADMIN` with its SACKfs descriptor already open.
pub struct TransitionBed {
    /// The kernel under test.
    pub kernel: Arc<Kernel>,
    /// The SACK module.
    pub sack: Arc<Sack>,
    /// Workload process (reads the speed-gated file).
    pub reader: UserContext,
    /// Event-writer process (the SDS stand-in).
    pub writer: UserContext,
    /// Open descriptor on `/sys/kernel/security/SACK/events`.
    pub events_fd: Fd,
}

/// The Fig. 3b policy: access to the critical file is allowed only in the
/// low-speed situation.
pub const SPEED_POLICY: &str = r#"
states { low_speed_state = 0; high_speed_state = 1; }
events { high_speed; low_speed; }
transitions {
    low_speed_state -high_speed-> high_speed_state;
    high_speed_state -low_speed-> low_speed_state;
}
initial low_speed_state;
permissions { ACCESS_CRITICAL; }
state_per { low_speed_state: ACCESS_CRITICAL; }
per_rules { ACCESS_CRITICAL: allow subject=* /etc/critical.conf r; }
"#;

impl TransitionBed {
    /// Boots the Fig. 3b environment.
    ///
    /// # Panics
    ///
    /// Panics on setup failure (fixed inputs; failure is a harness bug).
    pub fn boot() -> TransitionBed {
        let sack = Sack::independent(SPEED_POLICY).expect("speed policy loads");
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).expect("sackfs attach");
        let root = kernel.spawn(Credentials::root());
        root.write_file("/etc/critical.conf", b"speed-gated content")
            .expect("create critical file");
        root.exit();
        let reader = kernel.spawn(Credentials::user(1000, 1000));
        let writer =
            kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
        let events_fd = writer
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .expect("open events node");
        TransitionBed {
            kernel,
            sack,
            reader,
            writer,
            events_fd,
        }
    }

    /// Delivers one low→high→low transition pair.
    ///
    /// # Panics
    ///
    /// Panics if the event write fails (harness bug).
    pub fn toggle_speed(&self) {
        self.writer
            .write(self.events_fd, b"high_speed\nlow_speed\n")
            .expect("event write");
    }

    /// One unit of the measured workload: read the critical file (allowed
    /// in the low-speed state).
    ///
    /// # Panics
    ///
    /// Panics if the read fails while in the low-speed state.
    pub fn read_critical(&self) {
        let data = self
            .reader
            .read_to_vec("/etc/critical.conf")
            .expect("low-speed read");
        std::hint::black_box(data);
    }
}

impl std::fmt::Debug for TransitionBed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionBed")
            .field("state", &self.sack.current_state_name())
            .finish()
    }
}

/// The Fig. 3b policy in enhanced-AppArmor form: the critical-file rule is
/// injected into (and retracted from) the `speedapp` profile on every
/// transition.
pub const SPEED_POLICY_ENHANCED: &str = r#"
states { low_speed_state = 0; high_speed_state = 1; }
events { high_speed; low_speed; }
transitions {
    low_speed_state -high_speed-> high_speed_state;
    high_speed_state -low_speed-> low_speed_state;
}
initial low_speed_state;
permissions { ACCESS_CRITICAL; }
state_per { low_speed_state: ACCESS_CRITICAL; }
per_rules { ACCESS_CRITICAL: allow subject=profile:speedapp /etc/critical.conf r; }
"#;

/// Fig. 3b environment in SACK-enhanced-AppArmor mode: every situation
/// transition performs real policy work (profile patch + recompile +
/// confinement refresh), which is where the paper's frequency-dependent
/// overhead comes from.
pub struct EnhancedTransitionBed {
    /// The kernel under test.
    pub kernel: Arc<Kernel>,
    /// The SACK module (enhanced mode).
    pub sack: Arc<Sack>,
    /// Workload process, confined under the `speedapp` profile.
    pub reader: UserContext,
    /// Event-writer process.
    pub writer: UserContext,
    /// Open descriptor on the SACKfs events node.
    pub events_fd: Fd,
}

impl EnhancedTransitionBed {
    /// Boots the enhanced Fig. 3b environment.
    ///
    /// # Panics
    ///
    /// Panics on setup failure (fixed inputs; failure is a harness bug).
    pub fn boot() -> EnhancedTransitionBed {
        let db = Arc::new(sack_apparmor::PolicyDb::new());
        // No /etc access in the base profile: the critical-file rule exists
        // only while SACK injects it (low-speed state).
        db.load_text("profile speedapp { /tmp/** rw, /usr/** rxm, }")
            .expect("profile parses");
        let apparmor = sack_apparmor::AppArmor::new(Arc::clone(&db));
        let sack = Sack::enhanced_apparmor(SPEED_POLICY_ENHANCED, Arc::clone(&apparmor))
            .expect("enhanced speed policy loads");
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).expect("sackfs attach");
        let root = kernel.spawn(Credentials::root());
        root.write_file("/etc/critical.conf", b"speed-gated content")
            .expect("create critical file");
        root.exit();
        let reader = kernel.spawn(Credentials::user(1000, 1000));
        apparmor
            .set_profile(reader.pid(), "speedapp")
            .expect("confine reader");
        let writer =
            kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
        let events_fd = writer
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .expect("open events node");
        EnhancedTransitionBed {
            kernel,
            sack,
            reader,
            writer,
            events_fd,
        }
    }

    /// Delivers one low→high→low transition pair (each leg patches the
    /// AppArmor profile).
    ///
    /// # Panics
    ///
    /// Panics if the event write fails (harness bug).
    pub fn toggle_speed(&self) {
        self.writer
            .write(self.events_fd, b"high_speed\nlow_speed\n")
            .expect("event write");
    }

    /// One unit of the measured workload.
    ///
    /// # Panics
    ///
    /// Panics if the read fails while in the low-speed state.
    pub fn read_critical(&self) {
        let data = self
            .reader
            .read_to_vec("/etc/critical.conf")
            .expect("low-speed read");
        std::hint::black_box(data);
    }
}

impl std::fmt::Debug for EnhancedTransitionBed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnhancedTransitionBed")
            .field("state", &self.sack.current_state_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_bed_gating_works() {
        let bed = TransitionBed::boot();
        bed.read_critical(); // low-speed: allowed
        bed.writer.write(bed.events_fd, b"high_speed\n").unwrap();
        assert!(bed.reader.read_to_vec("/etc/critical.conf").is_err());
        bed.writer.write(bed.events_fd, b"low_speed\n").unwrap();
        bed.read_critical();
    }

    #[test]
    fn toggle_returns_to_low_speed() {
        let bed = TransitionBed::boot();
        bed.toggle_speed();
        assert_eq!(bed.sack.current_state_name(), "low_speed_state");
        bed.read_critical();
    }

    #[test]
    fn enhanced_transition_bed_gating_works() {
        let bed = EnhancedTransitionBed::boot();
        bed.read_critical(); // low-speed: rule injected at boot
        bed.writer.write(bed.events_fd, b"high_speed\n").unwrap();
        let err = bed.reader.read_to_vec("/etc/critical.conf").unwrap_err();
        assert_eq!(
            err.context(),
            Some("apparmor"),
            "enhanced mode denies via AppArmor"
        );
        bed.writer.write(bed.events_fd, b"low_speed\n").unwrap();
        bed.read_critical();
        bed.toggle_speed();
        bed.read_critical();
    }

    #[test]
    fn sweep_fixtures_boot() {
        boot_rule_count(10);
        boot_state_count(5);
        for (_, config) in table2_configs() {
            boot_config(config);
        }
    }
}
