//! **Table II** — LMBench operations under the three LSM configurations
//! (AppArmor baseline, SACK-enhanced AppArmor, independent SACK), plus the
//! no-LSM kernel for reference.
//!
//! Per-operation Criterion groups; compare the per-config lines within a
//! group to read off the paper's percentage columns. The full-table text
//! report (all 17 rows) is produced by `examples/lmbench_report.rs`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_bench::{boot_config, table2_configs};
use sack_kernel::file::OpenFlags;
use sack_lmbench::testbed::LsmConfig;
use sack_lmbench::workload::REREAD_FILE;

fn configs() -> Vec<(&'static str, LsmConfig)> {
    let mut all = vec![("no-lsm", LsmConfig::NoLsm)];
    all.extend(table2_configs());
    all
}

fn bench_syscall(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/syscall");
    for (label, config) in configs() {
        let bed = boot_config(config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| std::hint::black_box(bed.proc().null_syscall()));
        });
    }
    group.finish();
}

fn bench_stat(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/stat");
    for (label, config) in configs() {
        let bed = boot_config(config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| bed.proc().stat("/usr/bin/true").expect("stat"));
        });
    }
    group.finish();
}

fn bench_open_close(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/open_close");
    for (label, config) in configs() {
        let bed = boot_config(config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| {
                let fd = bed
                    .proc()
                    .open(REREAD_FILE, OpenFlags::read_only())
                    .expect("open");
                bed.proc().close(fd).expect("close");
            });
        });
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/read_1b");
    for (label, config) in configs() {
        let bed = boot_config(config);
        let fd = bed
            .proc()
            .open(REREAD_FILE, OpenFlags::read_only())
            .expect("open");
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            let mut buf = [0u8; 1];
            b.iter(|| {
                bed.proc().seek(fd, 0).expect("seek");
                bed.proc().read(fd, &mut buf).expect("read");
            });
        });
    }
    group.finish();
}

fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/fork");
    group.sample_size(10);
    for (label, config) in configs() {
        let bed = boot_config(config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| {
                let child = bed.proc().fork().expect("fork");
                child.exit();
            });
        });
    }
    group.finish();
}

fn bench_file_create_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/file_create_delete_0k");
    group.sample_size(10);
    for (label, config) in configs() {
        let bed = boot_config(config);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| {
                let path = format!("/tmp/bench/t2_{i}");
                i += 1;
                let fd = bed
                    .proc()
                    .open(&path, OpenFlags::create_new())
                    .expect("create");
                bed.proc().close(fd).expect("close");
                bed.proc().unlink(&path).expect("unlink");
            });
        });
    }
    group.finish();
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = table2;
    config = config_criterion();
    targets = bench_syscall, bench_stat, bench_open_close, bench_read,
              bench_fork, bench_file_create_delete
}
criterion_main!(table2);
