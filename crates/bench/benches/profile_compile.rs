//! **Reload-latency benchmarks (DESIGN.md §12)** — the cost of swapping
//! a whole profile bundle into the `PolicyDb`, swept across table sizes
//! and compile strategies:
//!
//! * `bulk_compile_{100,1000,10000}/{serial,parallel}` — an eager bulk
//!   load of N distinct-bodied profiles with the worker pool pinned to 1
//!   (the pre-pipeline serial baseline) versus sized to the host.
//! * `lazy_reload_1000/load` — the same 1000-profile bundle loaded in
//!   lazy mode: stubs only, zero DFA builds, the reload critical path.
//! * `lazy_reload_1000/cold_attach` — lazy load plus the first hook
//!   touch on one profile: the end-to-end latency from "reload starts"
//!   to "first confined decision through a compiled DFA".
//!
//! `scripts/bench_gate.sh` extracts every arm and enforces the
//! parallel-over-serial floor at 1k (normalised to the host's cores;
//! single-core runners are exempt) and the cold-attach ceiling as a
//! fraction of the serial 1k rebuild.
//!
//! Every generated profile has a *distinct* body — the profile index is
//! baked into each glob — so content dedup cannot collapse the workload,
//! and every pattern draws on one fixed byte vocabulary (letters in
//! `p/dir/sub`, digits, `/`, `*`) so no load ever splits the shared
//! byte-class alphabet mid-sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_apparmor::profile::{FilePerms, PathRule, Profile};
use sack_apparmor::{CompileMode, PolicyDb};

const RULES_PER_PROFILE: usize = 4;

/// `n` profiles, each with [`RULES_PER_PROFILE`] rules whose globs embed
/// the profile index — distinct bodies by construction.
fn distinct_profiles(n: usize) -> Vec<Profile> {
    (0..n)
        .map(|i| {
            let mut profile = Profile::new(&format!("p{i}"));
            for r in 0..RULES_PER_PROFILE {
                profile.path_rules.push(
                    PathRule::allow(
                        &format!("/p{i}/dir{}/sub{r}/**", r % 2),
                        FilePerms::READ | FilePerms::WRITE,
                    )
                    .expect("generated pattern compiles"),
                );
            }
            profile
        })
        .collect()
}

fn eager_db(workers: usize) -> PolicyDb {
    let db = PolicyDb::new();
    db.set_compile_workers(workers);
    db
}

/// Eager bulk load, serial vs parallel, across table sizes.
fn bench_bulk_compile(c: &mut Criterion) {
    for &n in &[100usize, 1000, 10000] {
        let profiles = distinct_profiles(n);
        let mut group = c.benchmark_group(format!("bulk_compile_{n}"));
        group.bench_with_input(BenchmarkId::from_parameter("serial"), &profiles, |b, p| {
            b.iter(|| {
                let db = eager_db(1);
                std::hint::black_box(db.load_many(p.clone()));
                debug_assert_eq!(db.compile_count(), n as u64);
            });
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("parallel"),
            &profiles,
            |b, p| {
                b.iter(|| {
                    // 0 = size the pool to the host (available_parallelism).
                    let db = eager_db(0);
                    std::hint::black_box(db.load_many(p.clone()));
                    debug_assert_eq!(db.compile_count(), n as u64);
                });
            },
        );
        group.finish();
    }
}

/// Lazy reload: stub installation only, and stub installation plus one
/// first-touch compile (the cold-attach path a hook pays after a
/// reload).
fn bench_lazy_reload(c: &mut Criterion) {
    let profiles = distinct_profiles(1000);
    let mut group = c.benchmark_group("lazy_reload_1000");
    group.bench_with_input(BenchmarkId::from_parameter("load"), &profiles, |b, p| {
        b.iter(|| {
            let db = PolicyDb::new();
            db.set_compile_mode(CompileMode::Lazy);
            std::hint::black_box(db.load_many(p.clone()));
            debug_assert_eq!(db.compile_count(), 0);
        });
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("cold_attach"),
        &profiles,
        |b, p| {
            b.iter(|| {
                let db = PolicyDb::new();
                db.set_compile_mode(CompileMode::Lazy);
                db.load_many(p.clone());
                // First confined decision: compiles exactly this profile.
                let compiled = db.get("p42").expect("profile loaded");
                std::hint::black_box(compiled.rules().evaluate_dfa("/p42/dir0/sub0/x"));
                debug_assert_eq!(db.compile_count(), 1);
            });
        },
    );
    group.finish();
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = profile_compile;
    config = config_criterion();
    targets = bench_bulk_compile, bench_lazy_reload
}
criterion_main!(profile_compile);
