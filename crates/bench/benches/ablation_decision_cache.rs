//! **Ablation (DESIGN.md §5.3, §7)** — the SACK hook hot path three ways
//! on the same policy: warm epoch-tagged cache, uncached unified per-state
//! DFA walk, and uncached linear scan (protected-set match + per-state
//! rule walk), plus a 100/1k/10k rule-count sweep pitting the DFA cold
//! path against the scan.
//!
//! Drives the LSM hooks directly with a fabricated [`HookCtx`] so the
//! numbers isolate the module's decision cost from VFS bookkeeping. The
//! final section boots a full kernel and dumps the module's sackfs `stats`
//! node, whose `cache_hits`/`cache_misses` counters feed
//! `scripts/bench_gate.sh`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_core::{Sack, SackPolicy};
use sack_kernel::cred::Credentials;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;
use sack_lmbench::workload::synthetic_independent_policy;

/// Acceptance configuration from the issue: a 100-rule policy.
const STATES: usize = 4;
const RULES: usize = 100;

fn build_sack() -> Arc<Sack> {
    let text = synthetic_independent_policy(STATES, RULES);
    assert!(
        SackPolicy::parse(&text)
            .unwrap()
            .compile()
            .unwrap()
            .rule_count()
            >= RULES,
        "workload must generate at least {RULES} rules"
    );
    Sack::independent(&text).unwrap()
}

fn hook_ctx(pid: u32) -> HookCtx {
    HookCtx::new(
        Pid(pid),
        Credentials::user(1000, 1000),
        Some(KPath::new("/usr/bin/app").unwrap()),
    )
}

/// One protected path per cached decision; `/protected/area0/s0/**` is
/// granted `rw` in the initial state `s0`.
fn protected_path(i: usize) -> KPath {
    KPath::new(&format!("/protected/area0/s0/devices/dev{i}")).unwrap()
}

fn bench_single_path(c: &mut Criterion) {
    let ctx = hook_ctx(4242);
    let path = protected_path(0);
    let obj = ObjectRef::regular(&path);

    let mut group = c.benchmark_group(format!("ablation_cache/{RULES}rules_single"));
    {
        let sack = build_sack();
        sack.set_decision_cache_enabled(true);
        sack.file_open(&ctx, &obj, AccessMask::READ).unwrap(); // warm
        group.bench_with_input(BenchmarkId::from_parameter("warm-cache"), &sack, |b, s| {
            b.iter(|| criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap());
        });
    }
    {
        let sack = build_sack();
        sack.set_decision_cache_enabled(false);
        group.bench_with_input(
            BenchmarkId::from_parameter("uncached-dfa"),
            &sack,
            |b, s| {
                b.iter(|| criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap());
            },
        );
        sack.set_dfa_matcher_enabled(false);
        group.bench_with_input(
            BenchmarkId::from_parameter("uncached-scan"),
            &sack,
            |b, s| {
                b.iter(|| criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap());
            },
        );
    }
    group.finish();
}

/// A task touching a working set of distinct files (all cacheable): the
/// realistic shape of the paper's door/window device loop.
fn bench_working_set(c: &mut Criterion) {
    const SET: usize = 64;
    let ctx = hook_ctx(4243);
    let paths: Vec<KPath> = (0..SET).map(protected_path).collect();

    let mut group = c.benchmark_group(format!("ablation_cache/{RULES}rules_wset{SET}"));
    {
        let sack = build_sack();
        sack.set_decision_cache_enabled(true);
        for path in &paths {
            sack.file_open(&ctx, &ObjectRef::regular(path), AccessMask::READ)
                .unwrap();
        }
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("warm-cache"), &sack, |b, s| {
            b.iter(|| {
                let obj = ObjectRef::regular(&paths[i % SET]);
                i = i.wrapping_add(1);
                criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap();
            });
        });
        let hits = sack
            .stats()
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed);
        let misses = sack
            .stats()
            .cache_misses
            .load(std::sync::atomic::Ordering::Relaxed);
        // Parsed by scripts/bench_gate.sh.
        println!(
            "cache_hit_rate {:.6}",
            hits as f64 / (hits + misses).max(1) as f64
        );
    }
    {
        let sack = build_sack();
        sack.set_decision_cache_enabled(false);
        sack.set_dfa_matcher_enabled(false);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter("uncached-scan"),
            &sack,
            |b, s| {
                b.iter(|| {
                    let obj = ObjectRef::regular(&paths[i % SET]);
                    i = i.wrapping_add(1);
                    criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap();
                });
            },
        );
    }
    group.finish();
}

/// The tentpole measurement: uncached DFA walk versus uncached linear scan
/// as the rule count grows 100 → 1k → 10k. One policy bed per rule count;
/// the two arms toggle the matcher on the same module instance so they see
/// identical policy objects. Group names (`sweepNrules`) are chosen so the
/// gate's substring matching cannot collide across counts.
fn bench_rule_sweep(c: &mut Criterion) {
    let ctx = hook_ctx(4244);

    for rules in [100usize, 1_000, 10_000] {
        let text = synthetic_independent_policy(STATES, rules);
        let sack = Sack::independent(&text).unwrap();
        sack.set_decision_cache_enabled(false);

        // Probe the *median* rule of the active state's block: a first-rule
        // path lets the linear scan short-circuit immediately and would
        // flatter it; the DFA walk costs the same wherever the rule sits.
        let median_area = rules / STATES / 2;
        let path = KPath::new(&format!("/protected/area{median_area}/s0/devices/dev0")).unwrap();
        let obj = ObjectRef::regular(&path);

        let mut group = c.benchmark_group(format!("ablation_cache/sweep{rules}rules"));
        sack.set_dfa_matcher_enabled(true);
        group.bench_with_input(
            BenchmarkId::from_parameter("uncached-dfa"),
            &sack,
            |b, s| {
                b.iter(|| criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap());
            },
        );
        sack.set_dfa_matcher_enabled(false);
        group.bench_with_input(
            BenchmarkId::from_parameter("uncached-scan"),
            &sack,
            |b, s| {
                b.iter(|| criterion::black_box(s.file_open(&ctx, &obj, AccessMask::READ)).unwrap());
            },
        );
        group.finish();
    }
}

/// End-to-end sanity: the counters surface through the sackfs `stats` node
/// of a booted kernel, and the cache keeps real syscall decisions intact.
fn dump_sackfs_stats() {
    let sack = build_sack();
    let kernel = sack_kernel::KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/protected/area0/s0").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/protected/area0/s0/devices").unwrap(),
            sack_kernel::Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let task = kernel.spawn(Credentials::user(1000, 1000));
    for _ in 0..100 {
        task.read_to_vec("/protected/area0/s0/devices").unwrap();
    }
    let stats = task.read_to_vec("/sys/kernel/security/SACK/stats").unwrap();
    print!("{}", String::from_utf8_lossy(&stats));
}

fn bench_decision_cache(c: &mut Criterion) {
    bench_single_path(c);
    bench_working_set(c);
    bench_rule_sweep(c);
    dump_sackfs_stats();
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = ablation_cache;
    config = config_criterion();
    targets = bench_decision_cache
}
criterion_main!(ablation_cache);
