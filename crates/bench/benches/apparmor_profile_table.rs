//! **Profile-table benchmarks (DESIGN.md §7.1)** — the AppArmor
//! `PolicyDb` after DFA compilation behind `Rcu<ProfileTable>`:
//!
//! * `profile_table_1000rules` — one hook-path match through a profile's
//!   compiled DFA versus the naive scan-every-rule baseline, at the
//!   1k-rule profile size the paper's Table 3 sweeps.
//! * `recompile_100profiles` — the cost of a single-rule profile edit on
//!   a 100-profile table: incremental recompilation (only the touched
//!   profile's DFA rebuilds; the shared alphabet is reused) versus the
//!   full-reload baseline that recompiles the world.
//!
//! `scripts/bench_gate.sh` extracts both groups and enforces the
//! DFA-vs-scan and incremental-vs-full speedup floors.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_apparmor::profile::{FilePerms, PathRule, Profile};
use sack_apparmor::PolicyDb;

/// A profile with `n` rules spread over `n / 8 + 1` top-level
/// directories, drawing on a fixed byte vocabulary so that every
/// generated profile compiles against the same byte-class alphabet.
fn synthetic_profile(name: &str, n: usize) -> Profile {
    let mut profile = Profile::new(name);
    let dirs = n / 8 + 1;
    for i in 0..n {
        let dir = i % dirs;
        profile.path_rules.push(
            PathRule::allow(
                &format!("/dir{dir}/sub{i}/**"),
                FilePerms::READ | FilePerms::WRITE,
            )
            .expect("generated pattern compiles"),
        );
    }
    profile
}

/// One access check against a 1000-rule profile loaded through the
/// `PolicyDb`: the unified-DFA walk the hook takes when the matcher is
/// enabled, versus the legacy scan it falls back to when disabled.
fn bench_hook_match(c: &mut Criterion) {
    let db = PolicyDb::new();
    db.load(synthetic_profile("big", 1000));
    let compiled = db.get("big").expect("profile loaded");
    // A path matching one rule: the scan baseline still walks the whole
    // list because later rules could contribute permission bits.
    let path = "/dir0/sub0/file.txt";

    let mut group = c.benchmark_group("profile_table_1000rules");
    group.bench_with_input(BenchmarkId::from_parameter("dfa"), &compiled, |b, p| {
        b.iter(|| std::hint::black_box(p.rules().evaluate_dfa(path)));
    });
    group.bench_with_input(BenchmarkId::from_parameter("scan"), &compiled, |b, p| {
        b.iter(|| std::hint::black_box(p.rules().evaluate_scan(path)));
    });
    group.finish();
}

/// A single-rule edit on a 100-profile table. The incremental arm
/// patches one profile twice per iteration (push a rule, then pop it in
/// a separate patch — two genuine edits, so the table round-trips to its
/// starting contents); the full-reload arm rebuilds the entire table
/// from scratch, which is what every edit cost before incremental
/// recompilation.
fn bench_recompile(c: &mut Criterion) {
    let profiles: Vec<Profile> = (0..100)
        .map(|i| synthetic_profile(&format!("app{i}"), 10))
        .collect();

    let mut group = c.benchmark_group("recompile_100profiles");
    let db = PolicyDb::new();
    for profile in &profiles {
        db.load(profile.clone());
    }
    // The pushed rule reuses bytes already in the shared alphabet, so
    // neither edit splits a byte class — the steady-state editing case.
    let extra = PathRule::allow("/dir0/sub999/**", FilePerms::READ).expect("pattern compiles");
    group.bench_with_input(BenchmarkId::from_parameter("incremental"), &db, |b, db| {
        b.iter(|| {
            db.patch("app42", |p| p.path_rules.push(extra.clone()))
                .expect("profile exists");
            db.patch("app42", |p| {
                p.path_rules.pop();
            })
            .expect("profile exists");
        });
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("full"),
        &profiles,
        |b, profiles| {
            b.iter(|| {
                let db = PolicyDb::new();
                for profile in profiles {
                    db.load(profile.clone());
                }
                std::hint::black_box(db.revision())
            });
        },
    );
    group.finish();
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = profile_table;
    config = config_criterion();
    targets = bench_hook_match, bench_recompile
}
criterion_main!(profile_table);
