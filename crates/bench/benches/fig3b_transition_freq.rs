//! **Fig. 3(b)** — overhead of file access while situation-state
//! transitions happen at different frequencies (the paper measures 0.93%
//! at a 1000 ms period).
//!
//! Setup exactly as in the paper: two situations, high-speed and
//! low-speed; a critical file is readable only in the low-speed situation;
//! the state toggles at the given period while the workload reads the file.
//!
//! The sweep parameter is the transition period expressed as *file accesses
//! per transition pair*: a simulated file access costs on the order of
//! 1 µs, so a 1 ms period corresponds to ~1 000 accesses between
//! transitions, and 1 000 ms to ~1 000 000. Criterion reports the mean
//! time per access including the amortized transition cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_bench::{EnhancedTransitionBed, TransitionBed};

/// (label, accesses between transition pairs); `u64::MAX` = never
/// transitions, the baseline.
const PERIODS: [(&str, u64); 7] = [
    ("baseline-no-transitions", u64::MAX),
    ("0.01ms", 10),
    ("0.1ms", 100),
    ("1ms", 1_000),
    ("10ms", 10_000),
    ("100ms", 100_000),
    ("1000ms", 1_000_000),
];

fn bench_transition_frequency_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b/independent_sack");
    for (label, accesses_per_toggle) in PERIODS {
        let bed = TransitionBed::boot();
        let mut counter = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| {
                counter += 1;
                if accesses_per_toggle != u64::MAX && counter.is_multiple_of(accesses_per_toggle) {
                    bed.toggle_speed();
                }
                bed.read_critical();
            });
        });
    }
    group.finish();
}

/// The enhanced-AppArmor variant: each transition performs real policy
/// work (profile patch, recompile, confinement refresh), so the overhead
/// rises visibly with frequency — the paper's Fig. 3(b) curve.
fn bench_transition_frequency_enhanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b/sack_enhanced_apparmor");
    for (label, accesses_per_toggle) in PERIODS {
        let bed = EnhancedTransitionBed::boot();
        let mut counter = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(label), &bed, |b, bed| {
            b.iter(|| {
                counter += 1;
                if accesses_per_toggle != u64::MAX && counter.is_multiple_of(accesses_per_toggle) {
                    bed.toggle_speed();
                }
                bed.read_critical();
            });
        });
    }
    group.finish();
}

/// The raw cost of one transition pair in each mode, to put the amortized
/// numbers in context (independent: two atomic swaps; enhanced: two
/// profile patches).
fn bench_transition_pair_cost(c: &mut Criterion) {
    let bed = TransitionBed::boot();
    c.bench_function("fig3b/transition_pair_cost/independent", |b| {
        b.iter(|| bed.toggle_speed());
    });
    let bed = EnhancedTransitionBed::boot();
    c.bench_function("fig3b/transition_pair_cost/enhanced", |b| {
        b.iter(|| bed.toggle_speed());
    });
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = fig3b;
    config = config_criterion();
    targets = bench_transition_frequency_independent,
              bench_transition_frequency_enhanced,
              bench_transition_pair_cost
}
criterion_main!(fig3b);
