//! **Fig. 3(a)** — runtime overhead of file operations as the number of
//! situation states grows (independent SACK, the worst case per the paper,
//! which reports ~1.8% at 100 states).
//!
//! SACK precompiles `g(f(SS_i))` per state, so the per-access cost is
//! independent of the state count; the sweep verifies that design holds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_bench::boot_state_count;
use sack_kernel::file::OpenFlags;
use sack_lmbench::workload::REREAD_FILE;

const STATE_COUNTS: [usize; 6] = [2, 5, 10, 25, 50, 100];

fn bench_file_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a/file_read_1b");
    for states in STATE_COUNTS {
        let bed = boot_state_count(states);
        let fd = bed
            .proc()
            .open(REREAD_FILE, OpenFlags::read_only())
            .expect("open");
        group.bench_with_input(BenchmarkId::from_parameter(states), &bed, |b, bed| {
            let mut buf = [0u8; 1];
            b.iter(|| {
                bed.proc().seek(fd, 0).expect("seek");
                bed.proc().read(fd, &mut buf).expect("read");
            });
        });
    }
    group.finish();
}

fn bench_open_close(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a/open_close");
    for states in STATE_COUNTS {
        let bed = boot_state_count(states);
        group.bench_with_input(BenchmarkId::from_parameter(states), &bed, |b, bed| {
            b.iter(|| {
                let fd = bed
                    .proc()
                    .open(REREAD_FILE, OpenFlags::read_only())
                    .expect("open");
                bed.proc().close(fd).expect("close");
            });
        });
    }
    group.finish();
}

fn bench_file_create_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a/file_create_delete_0k");
    group.sample_size(10);
    for states in STATE_COUNTS {
        let bed = boot_state_count(states);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(states), &bed, |b, bed| {
            b.iter(|| {
                let path = format!("/tmp/bench/f3a_{i}");
                i += 1;
                let fd = bed
                    .proc()
                    .open(&path, OpenFlags::create_new())
                    .expect("create");
                bed.proc().close(fd).expect("close");
                bed.proc().unlink(&path).expect("unlink");
            });
        });
    }
    group.finish();
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = fig3a;
    config = config_criterion();
    targets = bench_file_read, bench_open_close, bench_file_create_delete
}
criterion_main!(fig3a);
