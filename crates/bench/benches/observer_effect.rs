//! **Observer effect (DESIGN.md §8)** — what sack-trace costs on the warm
//! hook path, in three arms on the same 100-rule policy:
//!
//! * `baseline` — tracing never attached: the pristine hot path.
//! * `tracing-disabled` — recorder attached, hub off: what everyone pays
//!   all the time. The acceptance bar is ≤5% over baseline
//!   (`scripts/bench_gate.sh`, `MAX_TRACE_OVERHEAD`).
//! * `tracing-enabled` — hub on: full emission, latency histograms, and
//!   flight capture on denials.
//!
//! Decisions are driven through the kernel's [`LsmStack`] dispatch — not
//! the module directly — so the measured guard is the real one: the
//! dispatch macro's `hook_enter`/`hook_exit` probes plus the module's
//! cache-hit probe. A final `flight_saturated` group measures the denial
//! path with the flight ring past capacity (every record an overwrite),
//! the worst case for the EXPERIMENTS.md overhead table.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_core::Sack;
use sack_kernel::cred::Credentials;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;
use sack_kernel::{Kernel, KernelBuilder};
use sack_lmbench::workload::synthetic_independent_policy;

const STATES: usize = 4;
const RULES: usize = 100;

/// Tracing configuration for one bench arm.
enum Arm {
    Baseline,
    Disabled,
    Enabled,
}

fn boot(arm: &Arm) -> (Arc<Kernel>, Arc<Sack>) {
    let text = synthetic_independent_policy(STATES, RULES);
    let sack = Sack::independent(&text).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    match arm {
        Arm::Baseline => {}
        Arm::Disabled => {
            sack.install_tracing(Arc::clone(kernel.trace()));
        }
        Arm::Enabled => {
            sack.install_tracing(Arc::clone(kernel.trace()));
            kernel.trace().set_enabled(true);
        }
    }
    (kernel, sack)
}

fn hook_ctx(pid: u32) -> HookCtx {
    HookCtx::new(
        Pid(pid),
        Credentials::user(1000, 1000),
        Some(KPath::new("/usr/bin/app").unwrap()),
    )
}

fn bench_warm_hook(c: &mut Criterion) {
    let ctx = hook_ctx(7001);
    let path = KPath::new("/protected/area0/s0/devices/dev0").unwrap();
    let obj = ObjectRef::regular(&path);

    let mut group = c.benchmark_group("observer_effect/warm_hook");
    for (name, arm) in [
        ("baseline", Arm::Baseline),
        ("tracing-disabled", Arm::Disabled),
        ("tracing-enabled", Arm::Enabled),
    ] {
        let (kernel, _sack) = boot(&arm);
        let lsm = kernel.lsm();
        lsm.file_open(&ctx, &obj, AccessMask::READ).unwrap(); // warm the cache
        group.bench_with_input(BenchmarkId::from_parameter(name), &lsm, |b, lsm| {
            b.iter(|| criterion::black_box(lsm.file_open(&ctx, &obj, AccessMask::READ)).unwrap());
        });
    }
    group.finish();
}

fn bench_flight_saturated(c: &mut Criterion) {
    let ctx = hook_ctx(7002);
    // A path the synthetic policy protects but never grants: every probe
    // is a denial, so every probe appends an audit record and a flight
    // entry (hook_exit deny + audit_emit), overwriting once saturated.
    let path = KPath::new("/protected/area0/s1/devices/dev0").unwrap();
    let obj = ObjectRef::regular(&path);

    let mut group = c.benchmark_group("observer_effect/flight_saturated");
    let (kernel, sack) = boot(&Arm::Enabled);
    let lsm = kernel.lsm();
    assert!(
        lsm.file_open(&ctx, &obj, AccessMask::WRITE).is_err(),
        "saturation arm needs a denied probe"
    );
    let flight_capacity = sack.tracing().unwrap().flight().capacity() as u64;
    // Past capacity, every further denial overwrites a slot.
    for _ in 0..flight_capacity {
        let _ = lsm.file_open(&ctx, &obj, AccessMask::WRITE);
    }
    group.bench_with_input(
        BenchmarkId::from_parameter("tracing-enabled"),
        &lsm,
        |b, lsm| {
            b.iter(|| {
                criterion::black_box(lsm.file_open(&ctx, &obj, AccessMask::WRITE)).unwrap_err()
            });
        },
    );
    assert!(
        sack.tracing().unwrap().flight().dropped() > 0,
        "the ring must actually have been overwriting during the run"
    );
    group.finish();
}

fn bench_observer_effect(c: &mut Criterion) {
    bench_warm_hook(c);
    bench_flight_saturated(c);
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = observer_effect;
    config = config_criterion();
    targets = bench_observer_effect
}
criterion_main!(observer_effect);
