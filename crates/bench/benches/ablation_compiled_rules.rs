//! **Ablation (DESIGN.md §5.1)** — per-state precompiled rule sets
//! (`g(f(SS_i))` materialized at policy load, swapped by pointer on
//! transition) versus the naive alternative of filtering the full
//! `(state, permission, rule)` table on every access.
//!
//! This is the design decision behind the paper's C3 ("situation-aware
//! adaptive policy enforcement with low runtime overhead").

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_apparmor::profile::FilePerms;
use sack_core::rules::{StateRuleSet, SubjectCtx};
use sack_core::{CompiledPolicy, SackPolicy};
use sack_lmbench::workload::synthetic_independent_policy;

fn compile(states: usize, rules: usize) -> CompiledPolicy {
    SackPolicy::parse(&synthetic_independent_policy(states, rules))
        .expect("generated policy parses")
        .compile()
        .expect("generated policy compiles")
}

/// The naive enforcement path: rebuild the decision from the permission
/// mapping on every access instead of using the precompiled per-state set.
fn naive_permits(
    policy: &CompiledPolicy,
    state: sack_core::StateId,
    subject: &SubjectCtx<'_>,
    path: &str,
    requested: FilePerms,
) -> bool {
    let set = StateRuleSet::build(
        policy
            .permissions_of(state)
            .iter()
            .flat_map(|perm| policy.rules_of(*perm).iter()),
    );
    set.permits(subject, path, requested)
}

fn bench_enforcement_paths(c: &mut Criterion) {
    let subject = SubjectCtx {
        uid: 1000,
        exe: Some("/usr/bin/app"),
        profile: None,
    };
    // A protected path that matches a rule in state s0.
    let path = "/protected/area0/s0/devices/x";

    for (states, rules) in [(4usize, 40usize), (10, 200), (50, 1000)] {
        let policy = compile(states, rules);
        let state = policy.space().state_id("s0").expect("state exists");
        let label = format!("{states}states_{rules}rules");

        let mut group = c.benchmark_group(format!("ablation_compiled/{label}"));
        group.bench_with_input(
            BenchmarkId::from_parameter("precompiled"),
            &policy,
            |b, policy| {
                let rules = policy.state_rules(state);
                b.iter(|| std::hint::black_box(rules.permits(&subject, path, FilePerms::READ)));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter("naive-rebuild"),
            &policy,
            |b, policy| {
                b.iter(|| {
                    std::hint::black_box(naive_permits(
                        policy,
                        state,
                        &subject,
                        path,
                        FilePerms::READ,
                    ))
                });
            },
        );
        group.finish();
    }
}

/// Transition cost under each design: precompiled sets make a transition an
/// atomic index move; the naive design pays nothing at transition time (its
/// cost is on every access instead). Measured for completeness.
fn bench_transition_cost(c: &mut Criterion) {
    let bed = sack_bench::TransitionBed::boot();
    c.bench_function("ablation_compiled/transition_swap", |b| {
        b.iter(|| bed.toggle_speed());
    });
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = ablation_compiled;
    config = config_criterion();
    targets = bench_enforcement_paths, bench_transition_cost
}
criterion_main!(ablation_compiled);
