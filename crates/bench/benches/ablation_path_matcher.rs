//! **Ablation (DESIGN.md §5.2)** — the bucketed path-rule index
//! ([`sack_apparmor::CompiledRules::evaluate`]) versus a naive
//! scan-every-rule matcher (`evaluate_scan`), across profile sizes.
//!
//! AppArmor's per-access match is on the hottest path in the system
//! (`file_permission` fires on every read/write), so this is where the
//! baseline's — and therefore SACK-enhanced AppArmor's — overhead lives.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_apparmor::profile::{FilePerms, PathRule};
use sack_apparmor::CompiledRules;

/// Builds `n` rules spread over `n / 8 + 1` top-level directories.
fn synthetic_rules(n: usize) -> Vec<PathRule> {
    let dirs = n / 8 + 1;
    (0..n)
        .map(|i| {
            let dir = i % dirs;
            PathRule::allow(
                &format!("/dir{dir}/sub{i}/**"),
                FilePerms::READ | FilePerms::WRITE,
            )
            .expect("generated pattern compiles")
        })
        .collect()
}

fn bench_matchers(c: &mut Criterion) {
    for n in [10usize, 100, 1000] {
        let rules = synthetic_rules(n);
        let compiled = CompiledRules::build(&rules);
        // A path matching one of the rules, and one matching none.
        let hit = "/dir0/sub0/file.txt";
        let miss = "/elsewhere/file.txt";

        let mut group = c.benchmark_group(format!("ablation_matcher/{n}rules"));
        for (case, path) in [("hit", hit), ("miss", miss)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("indexed/{case}")),
                &compiled,
                |b, compiled| {
                    b.iter(|| std::hint::black_box(compiled.evaluate(path)));
                },
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("scan/{case}")),
                &compiled,
                |b, compiled| {
                    b.iter(|| std::hint::black_box(compiled.evaluate_scan(path)));
                },
            );
        }
        group.finish();
    }
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = ablation_matcher;
    config = config_criterion();
    targets = bench_matchers
}
criterion_main!(ablation_matcher);
