//! **§IV-B "Situation awareness latency"** — the user→kernel transmission
//! latency of a situation event through SACKfs. The paper reports an
//! average of ~5.4 µs across four event kinds with 100% accuracy.
//!
//! Measured here as the full path: `write(2)` on
//! `/sys/kernel/security/SACK/events` → capability check → SSM delivery →
//! state-rules switch. Four event kinds, as in the paper (two of which
//! transition, two of which are known-but-non-matching).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_bench::TransitionBed;
use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use std::sync::Arc;

/// Four situation events over a four-state machine.
const FOUR_EVENT_POLICY: &str = r#"
states { a = 0; b = 1; c = 2; d = 3; }
events { crash; park; driver_left; resolved; }
transitions {
    a -crash-> b;
    b -resolved-> a;
    a -park-> c;
    c -driver_left-> d;
    d -crash-> b;
    c -resolved-> a;
    d -resolved-> a;
}
initial a;
permissions { P; }
state_per { b: P; }
per_rules { P: allow subject=* /dev/car/** wi; }
"#;

fn bench_event_kinds(c: &mut Criterion) {
    let sack = Sack::independent(FOUR_EVENT_POLICY).expect("policy loads");
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).expect("attach");
    let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let fd = sds
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .expect("open events");

    let mut group = c.benchmark_group("latency/event_transmission");
    // Each iteration delivers the event and its inverse so the machine
    // returns to a known state (two transmissions per iteration).
    for (label, payload) in [
        ("crash+resolved", &b"crash\nresolved\n"[..]),
        ("park+resolved", &b"park\nresolved\n"[..]),
        (
            "driver_left (often no-match)",
            &b"driver_left\nresolved\n"[..],
        ),
        ("resolved (no-match)", &b"resolved\n"[..]),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), payload, |b, payload| {
            b.iter(|| sds.write(fd, payload).expect("event write"));
        });
    }
    group.finish();

    // Accuracy check, as in the paper (100% of transmitted events are
    // received by the SSM): delivered counter must match what we sent.
    let active = sack.active();
    let stats_before = active.ssm.delivered_count();
    for _ in 0..1000 {
        sds.write(fd, b"crash\nresolved\n").expect("write");
    }
    let delivered = sack.active().ssm.delivered_count() - stats_before;
    assert_eq!(delivered, 2000, "event transmission accuracy must be 100%");
}

/// Kernel-internal SSM delivery alone (no syscall), isolating the
/// securityfs crossing cost by comparison with the group above.
fn bench_ssm_only(c: &mut Criterion) {
    let bed = TransitionBed::boot();
    c.bench_function("latency/ssm_delivery_only", |b| {
        b.iter(|| {
            bed.sack
                .deliver_event("high_speed", Duration::ZERO)
                .expect("deliver");
            bed.sack
                .deliver_event("low_speed", Duration::ZERO)
                .expect("deliver");
        });
    });
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = latency;
    config = config_criterion();
    targets = bench_event_kinds, bench_ssm_only
}
criterion_main!(latency);
