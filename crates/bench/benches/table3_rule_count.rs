//! **Table III** — overhead as the number of SACK rules grows
//! (0 / 10 / 100 / 500 / 1000), SACK-enhanced-AppArmor configuration.
//!
//! The paper finds the rule count has negligible effect; here the
//! per-access cost is an O(1) protected-set bucket lookup plus AppArmor's
//! profile match, so the lines should stay flat.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sack_bench::boot_rule_count;
use sack_kernel::file::OpenFlags;
use sack_lmbench::workload::REREAD_FILE;

const RULE_COUNTS: [usize; 5] = [0, 10, 100, 500, 1000];

fn bench_open_close(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/open_close");
    for rules in RULE_COUNTS {
        let bed = boot_rule_count(rules);
        group.bench_with_input(BenchmarkId::from_parameter(rules), &bed, |b, bed| {
            b.iter(|| {
                let fd = bed
                    .proc()
                    .open(REREAD_FILE, OpenFlags::read_only())
                    .expect("open");
                bed.proc().close(fd).expect("close");
            });
        });
    }
    group.finish();
}

fn bench_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/io_1b");
    for rules in RULE_COUNTS {
        let bed = boot_rule_count(rules);
        let fd = bed
            .proc()
            .open(REREAD_FILE, OpenFlags::read_only())
            .expect("open");
        group.bench_with_input(BenchmarkId::from_parameter(rules), &bed, |b, bed| {
            let mut buf = [0u8; 1];
            b.iter(|| {
                bed.proc().seek(fd, 0).expect("seek");
                bed.proc().read(fd, &mut buf).expect("read");
            });
        });
    }
    group.finish();
}

fn bench_file_create_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/file_create_delete_0k");
    group.sample_size(10);
    for rules in RULE_COUNTS {
        let bed = boot_rule_count(rules);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(rules), &bed, |b, bed| {
            b.iter(|| {
                let path = format!("/tmp/bench/t3_{i}");
                i += 1;
                let fd = bed
                    .proc()
                    .open(&path, OpenFlags::create_new())
                    .expect("create");
                bed.proc().close(fd).expect("close");
                bed.proc().unlink(&path).expect("unlink");
            });
        });
    }
    group.finish();
}

fn bench_stat(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/stat");
    for rules in RULE_COUNTS {
        let bed = boot_rule_count(rules);
        group.bench_with_input(BenchmarkId::from_parameter(rules), &bed, |b, bed| {
            b.iter(|| bed.proc().stat("/usr/bin/true").expect("stat"));
        });
    }
    group.finish();
}

fn config_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = table3;
    config = config_criterion();
    targets = bench_open_close, bench_io, bench_file_create_delete, bench_stat
}
criterion_main!(table3);
