//! Exhaustive interleaving checks over the lock-free hot-path models,
//! at the scale the issue's acceptance bar demands: at least two
//! readers, one writer, and a policy-epoch bump — proven over *every*
//! schedule, with known-bad mutations producing concrete
//! counterexamples.

use sack_analyze::{
    explore, CacheConfig, CacheModel, Model, ProfileTableConfig, RcuConfig, RcuModel,
    RcuProfileTableModel,
};

const DEPTH: usize = 96;

#[test]
fn rcu_two_readers_one_writer_two_updates_is_safe() {
    let stats = explore(&RcuModel::new(RcuConfig::correct(2, 2)), DEPTH)
        .unwrap_or_else(|v| panic!("counterexample found: {v}"));
    assert!(stats.complete_schedules > 0);
}

#[test]
fn rcu_three_readers_exhaust_without_violation() {
    let stats = explore(&RcuModel::new(RcuConfig::correct(3, 1)), DEPTH)
        .unwrap_or_else(|v| panic!("counterexample found: {v}"));
    assert!(stats.complete_schedules > 0);
}

#[test]
fn rcu_without_validation_has_a_use_after_free_schedule() {
    let config = RcuConfig {
        skip_validation: true,
        ..RcuConfig::correct(2, 2)
    };
    let violation =
        explore(&RcuModel::new(config), DEPTH).expect_err("mutated model must be caught");
    assert!(violation.message.contains("use-after-free"), "{violation}");
    assert!(!violation.schedule.is_empty(), "trace must be replayable");
}

#[test]
fn rcu_without_hazard_scan_has_a_use_after_free_schedule() {
    let config = RcuConfig {
        skip_hazard_scan: true,
        ..RcuConfig::correct(2, 2)
    };
    let violation =
        explore(&RcuModel::new(config), DEPTH).expect_err("mutated model must be caught");
    assert!(violation.message.contains("use-after-free"), "{violation}");
}

#[test]
fn rcu_counterexample_replays_deterministically() {
    let config = RcuConfig {
        skip_hazard_scan: true,
        ..RcuConfig::correct(2, 2)
    };
    let violation = explore(&RcuModel::new(config), DEPTH).unwrap_err();
    // Replay the reported schedule step by step from the initial state:
    // the final step must reproduce exactly the reported violation.
    let mut model = RcuModel::new(config);
    let (last, prefix) = violation.schedule.split_last().unwrap();
    for &thread in prefix {
        assert!(model.enabled(thread), "schedule must stay enabled");
        model.step(thread).expect("violation only at the last step");
    }
    let err = model.step(*last).expect_err("last step must violate");
    assert_eq!(err, violation.message);
}

#[test]
fn cache_two_readers_across_epoch_bump_is_linearizable() {
    let stats = explore(&CacheModel::new(CacheConfig::correct(2)), DEPTH)
        .unwrap_or_else(|v| panic!("counterexample found: {v}"));
    assert!(stats.complete_schedules > 0);
    // The search is genuinely exhaustive, not a lucky corner: well over
    // a hundred distinct states survive memoisation for two readers
    // plus the reloading writer.
    assert!(stats.states > 100, "only {} states explored", stats.states);
}

#[test]
fn cache_three_readers_across_epoch_bump_is_linearizable() {
    explore(&CacheModel::new(CacheConfig::correct(3)), DEPTH)
        .unwrap_or_else(|v| panic!("counterexample found: {v}"));
}

#[test]
fn cache_without_verifier_serves_a_stale_grant() {
    let config = CacheConfig {
        skip_verifier: true,
        ..CacheConfig::correct(2)
    };
    let violation =
        explore(&CacheModel::new(config), DEPTH).expect_err("mutated model must be caught");
    assert!(violation.message.contains("linearizability"), "{violation}");
    assert!(!violation.schedule.is_empty());
}

#[test]
fn cache_invalidate_traces_once_per_epoch_bump_over_every_schedule() {
    // The faithful writer emits exactly one `cache_invalidate` after the
    // bump; this holds on every interleaving with concurrent readers.
    let stats = explore(&CacheModel::new(CacheConfig::correct(2)), DEPTH)
        .unwrap_or_else(|v| panic!("counterexample found: {v}"));
    assert!(stats.complete_schedules > 0);
}

#[test]
fn cache_invalidate_per_slot_over_emission_is_caught() {
    let config = CacheConfig {
        invalidate_per_slot: true,
        trace_slots: 3,
        ..CacheConfig::correct(2)
    };
    let violation =
        explore(&CacheModel::new(config), DEPTH).expect_err("mutated model must be caught");
    assert!(
        violation
            .message
            .contains("exactly once per bump, not per slot"),
        "{violation}"
    );
    assert!(!violation.schedule.is_empty(), "trace must be replayable");
}

#[test]
fn profile_table_replace_with_two_hooks_is_safe() {
    let model = RcuProfileTableModel::new(ProfileTableConfig::correct(2));
    let stats = explore(&model, DEPTH).unwrap_or_else(|v| panic!("counterexample found: {v}"));
    assert!(stats.complete_schedules > 0);
    assert!(stats.states > 100, "only {} states explored", stats.states);
}

#[test]
fn profile_table_replace_with_three_hooks_is_safe() {
    let model = RcuProfileTableModel::new(ProfileTableConfig::correct(3));
    explore(&model, DEPTH).unwrap_or_else(|v| panic!("counterexample found: {v}"));
}

#[test]
fn profile_table_split_publish_tears_a_hook_read() {
    let config = ProfileTableConfig {
        split_publish: true,
        ..ProfileTableConfig::correct(2)
    };
    let violation = explore(&RcuProfileTableModel::new(config), DEPTH)
        .expect_err("mutated model must be caught");
    assert!(
        violation.message.contains("torn profile-table read"),
        "{violation}"
    );
    assert!(!violation.schedule.is_empty());
}

#[test]
fn profile_table_without_epoch_bump_serves_a_stale_grant() {
    let config = ProfileTableConfig {
        skip_epoch_bump: true,
        ..ProfileTableConfig::correct(2)
    };
    let violation = explore(&RcuProfileTableModel::new(config), DEPTH)
        .expect_err("mutated model must be caught");
    assert!(violation.message.contains("linearizability"), "{violation}");
}

#[test]
fn profile_table_early_epoch_bump_caches_a_pre_replace_grant() {
    let config = ProfileTableConfig {
        epoch_before_publish: true,
        ..ProfileTableConfig::correct(2)
    };
    let violation = explore(&RcuProfileTableModel::new(config), DEPTH)
        .expect_err("mutated model must be caught");
    assert!(violation.message.contains("linearizability"), "{violation}");
}

#[test]
fn profile_table_counterexample_replays_deterministically() {
    let config = ProfileTableConfig {
        skip_epoch_bump: true,
        ..ProfileTableConfig::correct(2)
    };
    let violation = explore(&RcuProfileTableModel::new(config), DEPTH).unwrap_err();
    let mut model = RcuProfileTableModel::new(config);
    let (last, prefix) = violation.schedule.split_last().unwrap();
    for &thread in prefix {
        assert!(model.enabled(thread), "schedule must stay enabled");
        model.step(thread).expect("violation only at the last step");
    }
    let err = model.step(*last).expect_err("last step must violate");
    assert_eq!(err, violation.message);
}
