//! Seeded-defect detection and zero-false-positive guarantees for the
//! static analyzer.
//!
//! Each `detects_*` test plants exactly one defect class in an
//! otherwise-clean policy and asserts the analyzer reports it (and only
//! it). The `shipped_*` tests run the analyzer over the real vehicle
//! bundle from `sack-vehicle` and require a completely clean report —
//! the zero-false-positive bar from the paper's tooling claims.

use sack_analyze::analyzer::{
    CHECK_PRIVILEGE_WIDENING, CHECK_PROFILE_WIDE_OPEN, CHECK_TE_WIDE_OPEN, CHECK_UNKNOWN_PROFILE,
};
use sack_analyze::{Analyzer, Report};
use sack_apparmor::parser::parse_profiles;
use sack_core::SackPolicy;
use sack_te::TePolicy;
use sack_vehicle::policies::{
    VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY, VEHICLE_SACK_POLICY,
};

fn analyze(policy: &str) -> Report {
    let policy = SackPolicy::parse(policy).expect("test policy must parse");
    Analyzer::new(&policy).run()
}

fn analyze_stacked(policy: &str, profiles: &str) -> Report {
    let policy = SackPolicy::parse(policy).expect("test policy must parse");
    let profiles = parse_profiles(profiles).expect("test profiles must parse");
    Analyzer::new(&policy).with_profiles(&profiles).run()
}

/// A minimal clean scaffold the defect tests perturb.
const CLEAN: &str = r#"
states { normal = 0; emergency = 1; }
events { crash; resolved; }
transitions {
    normal -crash-> emergency;
    emergency -resolved-> normal;
}
initial normal;
permissions { READ; RESCUE; }
state_per {
    normal: READ;
    emergency: READ, RESCUE;
}
per_rules {
    READ: allow subject=* /dev/car/** r;
    RESCUE: allow subject=/usr/bin/rescue* /dev/car/door* wi;
}
"#;

#[test]
fn clean_scaffold_is_clean() {
    let report = analyze(CLEAN);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn detects_unreachable_ssm_state() {
    // `limp_home` has transitions out but none in, and is not initial.
    let report = analyze(
        r#"
states { normal = 0; emergency = 1; limp_home = 2; }
events { crash; resolved; }
transitions {
    normal -crash-> emergency;
    emergency -resolved-> normal;
    limp_home -resolved-> normal;
}
initial normal;
permissions { READ; }
state_per { *: READ; }
per_rules { READ: allow subject=* /dev/car/** r; }
"#,
    );
    let hits: Vec<_> = report.by_check("unreachable-state").collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert!(hits[0].message.contains("limp_home"));
}

#[test]
fn detects_shadowed_mac_rule() {
    // The broad rw rule makes the later, narrower door rule dead.
    let report = analyze(
        r#"
states { normal = 0; emergency = 1; }
events { crash; resolved; }
transitions {
    normal -crash-> emergency;
    emergency -resolved-> normal;
}
initial normal;
permissions { READ; }
state_per { *: READ; }
per_rules {
    READ:
        allow subject=* /dev/car/** rw;
        allow subject=* /dev/car/door* r;
}
"#,
    );
    let hits: Vec<_> = report.by_check("shadowed-rule").collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
    let provenance = hits[0]
        .provenance
        .as_ref()
        .expect("shadowing has provenance");
    assert!(provenance.rule.contains("/dev/car/door*"));
}

#[test]
fn detects_allow_deny_conflict_on_overlapping_globs() {
    let report = analyze(
        r#"
states { normal = 0; emergency = 1; }
events { crash; resolved; }
transitions {
    normal -crash-> emergency;
    emergency -resolved-> normal;
}
initial normal;
permissions { READ; }
state_per { *: READ; }
per_rules {
    READ:
        allow subject=* /dev/car/door* w;
        deny subject=* /dev/car/** w;
}
"#,
    );
    let hits: Vec<_> = report.by_check("allow-deny-overlap").collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
}

#[test]
fn detects_stacking_hole_in_apparmor_profile() {
    // RESCUE is emergency-gated on door writes, but the stacked profile
    // statically allows rw on all of /dev/car/** — SACK's gate is moot
    // for tasks confined by that profile.
    let profiles = r#"
profile media_app /usr/bin/media_app {
    /usr/bin/media_app rx,
    /dev/car/** rw,
}
"#;
    let report = analyze_stacked(CLEAN, profiles);
    let hits: Vec<_> = report.by_check(CHECK_PROFILE_WIDE_OPEN).collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert!(hits[0].message.contains("media_app"));
    assert!(hits[0].message.contains("emergency"));

    // A blanket same-profile deny closes the hole.
    let fenced = r#"
profile media_app /usr/bin/media_app {
    /usr/bin/media_app rx,
    /dev/car/** rw,
    deny /dev/car/** w,
}
"#;
    let report = analyze_stacked(CLEAN, fenced);
    assert!(
        report.by_check(CHECK_PROFILE_WIDE_OPEN).count() == 0,
        "{}",
        report.render()
    );
}

#[test]
fn read_only_profiles_are_not_stacking_holes() {
    // r-only access to a wi-gated path shares no permission: no finding.
    let profiles = r#"
profile media_app /usr/bin/media_app {
    /dev/car/** r,
}
"#;
    let report = analyze_stacked(CLEAN, profiles);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn detects_privilege_widening() {
    // WIPE is granted to *any* subject, but only in emergency — a
    // situation flip hands every task write access it never had.
    let report = analyze(
        r#"
states { normal = 0; emergency = 1; }
events { crash; resolved; }
transitions {
    normal -crash-> emergency;
    emergency -resolved-> normal;
}
initial normal;
permissions { READ; WIPE; }
state_per {
    normal: READ;
    emergency: READ, WIPE;
}
per_rules {
    READ: allow subject=* /dev/car/** r;
    WIPE: allow subject=* /dev/car/** w;
}
"#,
    );
    let hits: Vec<_> = report.by_check(CHECK_PRIVILEGE_WIDENING).collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert!(hits[0].message.contains("WIPE"));
    // The subject-scoped RESCUE-style grant in CLEAN is exempt.
    assert!(analyze(CLEAN).by_check(CHECK_PRIVILEGE_WIDENING).count() == 0);
}

#[test]
fn detects_te_stacking_hole() {
    let policy = SackPolicy::parse(CLEAN).unwrap();
    let te = TePolicy::parse(
        r#"
type media_t;
type car_dev_t;
label /dev/car/** car_dev_t;
allow media_t car_dev_t { read write ioctl };
"#,
    )
    .unwrap();
    let report = Analyzer::new(&policy).with_te(&te).run();
    let hits: Vec<_> = report.by_check(CHECK_TE_WIDE_OPEN).collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert!(hits[0].message.contains("media_t"));

    // Read-only TE access to the gated path is fine.
    let te = TePolicy::parse(
        r#"
type media_t;
type car_dev_t;
label /dev/car/** car_dev_t;
allow media_t car_dev_t { read };
"#,
    )
    .unwrap();
    let report = Analyzer::new(&policy).with_te(&te).run();
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn detects_unknown_stacked_profile() {
    let policy = r#"
states { normal = 0; emergency = 1; }
events { crash; resolved; }
transitions {
    normal -crash-> emergency;
    emergency -resolved-> normal;
}
initial normal;
permissions { RESCUE; }
state_per { emergency: RESCUE; }
per_rules {
    RESCUE: allow subject=profile:resuce_daemon /dev/car/door* wi;
}
"#;
    let report = analyze_stacked(policy, VEHICLE_APPARMOR_PROFILES);
    let hits: Vec<_> = report.by_check(CHECK_UNKNOWN_PROFILE).collect();
    assert_eq!(hits.len(), 1, "{}", report.render());
    assert!(hits[0].message.contains("resuce_daemon"), "typo is named");
}

#[test]
fn report_json_carries_check_ids_and_provenance() {
    let profiles = r#"
profile media_app /usr/bin/media_app {
    /dev/car/** rw,
}
"#;
    let report = analyze_stacked(CLEAN, profiles);
    let json = report.to_json();
    assert!(json.contains("\"check\":\"stacked-profile-wide-open\""));
    assert!(json.contains("\"provenance\""));
    assert!(json.contains("\"warnings\":1"));
}

#[test]
fn report_carries_per_state_dfa_sizes() {
    let report = analyze(CLEAN);
    assert_eq!(report.dfa.len(), 2, "one entry per situation state");
    let normal = &report.dfa[0];
    assert_eq!(normal.state, "normal");
    assert!(normal.states > 1, "matcher must have a real table");
    assert!(normal.transitions > 0);
    // The emergency matcher also folds in the exe-scoped RESCUE rule,
    // which stays on the residual scan path.
    let emergency = &report.dfa[1];
    assert_eq!(emergency.state, "emergency");
    assert_eq!(emergency.residual_rules, 1);
    assert_eq!(normal.residual_rules, 0);

    let text = report.render();
    assert!(text.contains("per-state DFA matcher:"), "{text}");
    assert!(text.contains("normal:"), "{text}");
    let json = report.to_json();
    assert!(json.contains("\"dfa\":[{\"state\":\"normal\""), "{json}");
    assert!(json.contains("\"residual_rules\":1"), "{json}");
}

#[test]
fn dfa_sizes_are_omitted_when_the_policy_does_not_compile() {
    // An undefined permission in state_per fails compile(): the checker
    // reports it and no sizes are collected.
    let report = analyze(
        r#"
states { s = 0; } initial s;
permissions { P; }
state_per { s: P, GHOST; }
per_rules { P: allow subject=* /x r; }
"#,
    );
    assert!(report.error_count() > 0);
    assert!(report.dfa.is_empty());
    assert!(!report.to_json().contains("\"dfa\""));
}

#[test]
fn report_carries_per_profile_dfa_sizes() {
    let policy = SackPolicy::parse(VEHICLE_SACK_POLICY).unwrap();
    let profiles = parse_profiles(VEHICLE_APPARMOR_PROFILES).unwrap();
    let report = Analyzer::new(&policy).with_profiles(&profiles).run();
    assert_eq!(
        report.profile_dfa.len(),
        profiles.len(),
        "one entry per stacked profile"
    );
    for (size, profile) in report.profile_dfa.iter().zip(&profiles) {
        assert_eq!(size.profile, profile.name);
        assert_eq!(size.rules, profile.path_rules.len());
        let compiled = size
            .compiled
            .as_ref()
            .expect("eager scratch load compiles every profile");
        assert!(
            compiled.states > 1,
            "{}: matcher must have a real table",
            size.profile
        );
        assert!(compiled.transitions > 0, "{}", size.profile);
    }
    // All profiles compile against one namespace alphabet, so the class
    // counts agree across every entry.
    let classes = report.profile_dfa[0].classes;
    assert!(report.profile_dfa.iter().all(|s| s.classes == classes));

    let text = report.render();
    assert!(text.contains("per-profile DFA matcher:"), "{text}");
    let json = report.to_json();
    assert!(json.contains("\"profile_dfa\":[{\"profile\":\""), "{json}");
}

#[test]
fn profile_dfa_sizes_report_lazy_stubs_and_dedup_groups() {
    let db = sack_apparmor::PolicyDb::new();
    db.set_compile_mode(sack_apparmor::CompileMode::Lazy);
    db.load_text(
        "profile twin_a { /dev/car/** rw, }\n\
         profile twin_b { /dev/car/** rw, }\n\
         profile solo { /var/log/* r, }",
    )
    .unwrap();
    // Touch exactly one sharer so its group compiles and `solo` stays a
    // stub.
    use sack_apparmor::FilePerms;
    db.get("twin_a")
        .unwrap()
        .rules()
        .evaluate_dfa("/dev/car/door");

    let sizes = sack_analyze::profile_dfa_sizes_of(&db);
    assert_eq!(sizes.len(), 3);
    let by_name = |n: &str| sizes.iter().find(|s| s.profile == n).unwrap();
    let (a, b, solo) = (by_name("twin_a"), by_name("twin_b"), by_name("solo"));
    assert_eq!(
        a.dedup_group, b.dedup_group,
        "identical bodies share a slot"
    );
    assert_ne!(a.dedup_group, solo.dedup_group);
    // The touched group is compiled — for both sharers, since they share
    // the slot — while the untouched profile reports as a stub.
    assert!(a.compiled.is_some() && b.compiled.is_some());
    assert!(solo.compiled.is_none(), "untouched lazy profile has no DFA");
    assert!(db
        .get("solo")
        .unwrap()
        .rules()
        .evaluate("/var/log/x")
        .permits(FilePerms::READ));

    let report = sack_analyze::Report {
        profile_dfa: sizes,
        ..sack_analyze::Report::default()
    };
    let text = report.render();
    assert!(text.contains("uncompiled (lazy)"), "{text}");
    assert!(text.contains("[shared body group"), "{text}");
    let json = report.to_json();
    assert!(json.contains("\"compiled\":false"), "{json}");
    assert!(
        json.contains("\"states\":null,\"transitions\":null"),
        "{json}"
    );
    assert!(json.contains("\"dedup_group\":"), "{json}");
}

#[test]
fn profile_load_diagnostics_surface_in_the_report() {
    let profiles = r#"
profile sloppy /usr/bin/sloppy {
    /data/file r,
    /data/file r,
}
"#;
    let report = analyze_stacked(CLEAN, profiles);
    assert!(
        report
            .by_check("duplicate-path-rule")
            .any(|d| d.message.contains("sloppy")),
        "compile-path lint missing:\n{}",
        report.render()
    );
}

// --- zero false positives on the shipped bundles -------------------------

#[test]
fn shipped_vehicle_policy_is_clean_standalone() {
    let report = analyze(VEHICLE_SACK_POLICY);
    assert!(report.is_clean(), "false positives:\n{}", report.render());
}

#[test]
fn shipped_vehicle_bundle_is_clean_fully_stacked() {
    let policy = SackPolicy::parse(VEHICLE_SACK_POLICY).unwrap();
    let profiles = parse_profiles(VEHICLE_APPARMOR_PROFILES).unwrap();
    let report = Analyzer::new(&policy).with_profiles(&profiles).run();
    assert!(report.is_clean(), "false positives:\n{}", report.render());
}

#[test]
fn shipped_enhanced_bundle_is_clean() {
    let policy = SackPolicy::parse(VEHICLE_ENHANCED_POLICY).unwrap();
    let profiles = parse_profiles(VEHICLE_APPARMOR_PROFILES).unwrap();
    let report = Analyzer::new(&policy).with_profiles(&profiles).run();
    assert!(report.is_clean(), "false positives:\n{}", report.render());
}
