//! Integration gate for the deterministic-schedule executor: the real
//! `Rcu`/`DecisionCacheIn`/`PerCpuCacheIn` code passes bounded-exhaustive
//! exploration, every planted bug is caught with a concrete counterexample
//! schedule, and the abstract models' counterexamples replay through the
//! real implementation (`conformance`).

use sack_analyze::sched::{conformance, explore, scenarios, SchedConfig};
use sack_kernel::sync::Mutation;

/// Every core scenario must be explored to completion with zero
/// violations — the "no schedule exists" claim of DESIGN.md §10.
#[test]
fn core_scenarios_are_exhaustively_safe() {
    let cfg = SchedConfig::exhaustive();
    for scenario in [
        scenarios::rcu_read_write(1),
        scenarios::rcu_read_write(2),
        scenarios::cache_epoch_bump(1),
        scenarios::cache_epoch_bump(2),
        scenarios::profile_publish(),
        scenarios::cache_torn_pair(),
        scenarios::percpu_invalidate_walk(false),
    ] {
        let stats = explore(&scenario, &cfg)
            .unwrap_or_else(|v| panic!("{} must be schedule-safe:\n{v}", scenario.name));
        assert!(stats.complete, "{}: space not exhausted", scenario.name);
        assert!(
            stats.schedules > 0,
            "{}: no schedule completed",
            scenario.name
        );
    }
}

fn assert_caught(scenario: &sack_analyze::sched::Scenario, mutation: Option<Mutation>) {
    let mut cfg = SchedConfig::exhaustive();
    cfg.mutation = mutation;
    let violation = explore(scenario, &cfg).expect_err("planted bug must be caught");
    assert!(
        !violation.schedule.is_empty(),
        "violation must carry a schedule"
    );
    // The printed counterexample names the scenario, the seed, and every
    // step — what a developer needs to replay it.
    let printed = violation.to_string();
    assert!(printed.contains(scenario.name), "{printed}");
    assert!(printed.contains("seed"), "{printed}");
}

#[test]
fn planted_rcu_skip_validation_is_caught() {
    assert_caught(
        &scenarios::rcu_read_write(1),
        Some(Mutation::RcuSkipValidation),
    );
}

#[test]
fn planted_rcu_free_before_scan_is_caught() {
    assert_caught(
        &scenarios::rcu_read_write(1),
        Some(Mutation::RcuFreeBeforeScan),
    );
}

#[test]
fn planted_cache_skip_verifier_is_caught() {
    assert_caught(
        &scenarios::cache_torn_pair(),
        Some(Mutation::CacheSkipVerifier),
    );
}

#[test]
fn planted_percpu_walk_skip_is_caught() {
    assert_caught(&scenarios::percpu_invalidate_walk(true), None);
}

/// The shipped epoch-in-key design must NOT fail the torn-pair or
/// epoch-bump scenarios when no mutation is planted — the mutation tests
/// above are meaningful only if the unmutated runs are clean.
#[test]
fn unmutated_runs_are_clean_where_mutations_bite() {
    let cfg = SchedConfig::exhaustive();
    for scenario in [scenarios::cache_torn_pair(), scenarios::rcu_read_write(1)] {
        explore(&scenario, &cfg).unwrap_or_else(|v| panic!("{v}"));
    }
}

/// All four abstract-model counterexamples must replay through the real
/// implementation with the same bug planted.
#[test]
fn model_counterexamples_replay_through_real_code() {
    let reports = conformance::run_all().expect("conformance must hold");
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert!(
            !r.model_schedule.is_empty(),
            "{}: model produced no schedule",
            r.model
        );
        assert!(
            !r.real_violation.schedule.is_empty(),
            "{}: no real-code schedule",
            r.model
        );
    }
}

/// Explorations and counterexamples are reproducible from the seed alone.
#[test]
fn exploration_is_seed_deterministic() {
    let cfg = SchedConfig {
        seed: 0x5EED_0001,
        ..SchedConfig::exhaustive()
    };
    let a = explore(&scenarios::cache_torn_pair(), &cfg).unwrap();
    let b = explore(&scenarios::cache_torn_pair(), &cfg).unwrap();
    assert_eq!(a, b);

    let mut mcfg = cfg;
    mcfg.mutation = Some(Mutation::CacheSkipVerifier);
    let a = explore(&scenarios::cache_torn_pair(), &mcfg).unwrap_err();
    let b = explore(&scenarios::cache_torn_pair(), &mcfg).unwrap_err();
    assert_eq!(a.schedule, b.schedule);
}
