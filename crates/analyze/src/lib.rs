//! `sack-analyze` — pre-deployment correctness tooling for SACK policy
//! bundles and the lock-free hot path.
//!
//! Three pillars:
//!
//! 1. **Static policy/SSM analysis** ([`analyzer`]): aggregates the core
//!    checker's per-policy diagnostics (reachability, dead states, events
//!    that never fire, shadowed rules, allow/deny conflicts) and layers on
//!    cross-layer checks that only make sense with the whole bundle in
//!    view — privilege widening across situations, SACK-protected paths
//!    left wide open in a stacked AppArmor profile, and TE policies that
//!    statically allow what SACK gates behind a situation. Findings are
//!    [`diag::Diagnostic`]s with severity, stable check ids, and rule
//!    provenance, renderable as text or a machine-readable JSON
//!    [`diag::Report`].
//! 2. **Trace forensics** ([`trace`]): a parser and linter for the
//!    sack-trace flight-recorder dumps exported at
//!    `/sys/kernel/security/SACK/tracing/flight`, plus a Prometheus
//!    exposition validator for the `tracing/metrics` node and an
//!    end-to-end `--self-check` that boots an in-memory stacked kernel
//!    and proves the whole observability path (`sack-analyze trace`).
//!    The [`fleet`] module extends the same forensics to the fleet
//!    telemetry plane: lints over `FleetAlert` streams and a
//!    multi-cohort rollout self-check (`sack-analyze fleet`).
//! 3. **Bounded interleaving checking** ([`interleave`], [`models`]): a
//!    deterministic loom-style explorer that exhaustively enumerates every
//!    schedule of small thread programs modelling the hand-rolled
//!    `Rcu<T>` hazard-slot reclamation and the epoch-tagged decision
//!    cache, asserting memory safety and linearizability of grant/deny
//!    outcomes. Known-bad mutations (skip the tag verifier, skip the
//!    hazard scan) are caught with a concrete interleaving trace.
//! 4. **Deterministic-schedule execution** ([`sched`]): the same bounded
//!    exploration applied to the **real** implementations instead of
//!    models — `Rcu`, `DecisionCacheIn`, and `PerCpuCacheIn` run
//!    unmodified over the `sack_kernel::sync::shim` seam with every
//!    primitive under scheduler control, planted mutations are caught
//!    with printed counterexample schedules, and the abstract models'
//!    counterexamples are replayed through the real code
//!    ([`sched::conformance`]). The [`sync_lint`] source pass keeps the
//!    seam airtight by rejecting direct `std::sync` use in the protocol
//!    files.
//!
//! The `sack-analyze` binary wires the static pillar to the command line;
//! `PolicySimulator` and `Sack::reload_policy` run the per-policy subset
//! automatically at load time.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzer;
pub mod diag;
pub mod fleet;
pub mod interleave;
pub mod models;
pub mod sched;
pub mod sync_lint;
pub mod trace;

pub use analyzer::{profile_dfa_sizes_of, Analyzer};
pub use diag::{CompiledDfaSize, DfaSize, Diagnostic, ProfileDfaSize, Report};
pub use fleet::{fleet_self_check, lint_alerts as lint_fleet_alerts, AlertFinding};
pub use interleave::{explore, Exploration, Model, Violation};
pub use models::{
    CacheConfig, CacheModel, PerCpuCacheConfig, PerCpuCacheModel, ProfileTableConfig, RcuConfig,
    RcuModel, RcuProfileTableModel, RingConfig, RingModel,
};
pub use sched::{SchedBackend, SchedConfig, SchedExploration, SchedViolation};
pub use sync_lint::{lint_paths, LintFinding};
pub use trace::{
    lint_flight, lint_metrics, parse_flight, render_report, self_check, validate_prometheus,
    Anomaly, FlightDump, FlightRecord,
};
