//! The static policy analyzer.
//!
//! [`Analyzer`] takes a parsed SACK policy plus, optionally, the AppArmor
//! profiles and TE policy it will be stacked with, and produces a
//! [`Report`]:
//!
//! * every diagnostic from the core checker (`sack_core::policy::check`),
//!   which covers SSM reachability (unreachable states, dead states,
//!   events that can never fire) and intra-policy MAC-rule lints
//!   (shadowing, allow/deny conflicts on overlapping matches);
//! * **privilege widening**: a permission granted to *any* subject in a
//!   restricted situation but absent from the normal (initial) one;
//! * **AppArmor stacking holes**: a path that SACK gates behind specific
//!   situations but that a stacked profile statically allows regardless;
//! * **TE stacking holes**: the same check against type-enforcement
//!   labeling plus allow rules;
//! * **unknown stacked profiles**: `subject=profile:` rules naming a
//!   profile that is not in the provided profile set.
//!
//! The cross-layer checks use the exact glob decision procedures
//! ([`Glob::overlaps`] / [`Glob::covers`]) rather than sampling paths, so
//! a reported hole always has a concrete witness path and a clean bundle
//! is a proof, not a lucky sample.

use std::collections::{HashMap, HashSet};

use sack_apparmor::glob::Glob;
use sack_apparmor::profile::{FilePerms, Profile};
use sack_core::policy::{check_policy, IssueSeverity, RuleProvenance, SackPolicy, SubjectSpec};
use sack_core::{RuleEffect, StateId};
use sack_te::TePolicy;

use crate::diag::{CompiledDfaSize, DfaSize, Diagnostic, ProfileDfaSize, Report};

/// Origin tag on profile rules injected by SACK's enhancer; such rules are
/// SACK's own and never count as stacking holes.
const SACK_ORIGIN: &str = "sack";

/// Check id: permission granted to any subject only outside the initial
/// situation.
pub const CHECK_PRIVILEGE_WIDENING: &str = "privilege-widening";
/// Check id: SACK-gated path statically allowed by a stacked profile.
pub const CHECK_PROFILE_WIDE_OPEN: &str = "stacked-profile-wide-open";
/// Check id: SACK-gated path statically allowed by the TE policy.
pub const CHECK_TE_WIDE_OPEN: &str = "stacked-te-wide-open";
/// Check id: `subject=profile:` rule naming an unknown profile.
pub const CHECK_UNKNOWN_PROFILE: &str = "unknown-stacked-profile";
/// Check id: a per-state DFA matcher exceeded the state-count budget.
pub const CHECK_DFA_STATE_BLOWUP: &str = "dfa-state-blowup";

/// State-count budget per compiled matcher; beyond this the table no
/// longer looks like something a kernel should pin, so the analyzer warns.
const DFA_STATE_BUDGET: usize = 64 * 1024;

/// Snapshots the per-profile matcher sizes of a live [`PolicyDb`],
/// including lazily-loaded profiles whose DFA is still an uncompiled stub
/// (`compiled: None`) and shared-body dedup groups (profiles whose
/// identical rule bodies share one DFA slot get the same `dedup_group`).
/// Entries are in sorted profile-name order; group ids are assigned in
/// first-appearance order.
pub fn profile_dfa_sizes_of(db: &sack_apparmor::PolicyDb) -> Vec<ProfileDfaSize> {
    let mut groups: HashMap<usize, usize> = HashMap::new();
    let mut out = Vec::new();
    for name in db.profile_names() {
        let Some(compiled) = db.get(&name) else {
            continue;
        };
        let rules = compiled.rules();
        let handle = rules.dfa_handle();
        let slot_addr = std::sync::Arc::as_ptr(handle) as usize;
        let next_group = groups.len();
        let dedup_group = *groups.entry(slot_addr).or_insert(next_group);
        out.push(ProfileDfaSize {
            profile: name,
            rules: rules.len(),
            classes: rules.alphabet().class_count(),
            compiled: handle.stats().map(|s| CompiledDfaSize {
                states: s.states,
                transitions: s.transitions,
            }),
            dedup_group,
        });
    }
    out
}

/// Static analyzer over a SACK policy and its stacked MAC layers.
#[derive(Debug)]
pub struct Analyzer<'a> {
    policy: &'a SackPolicy,
    profiles: &'a [Profile],
    te: Option<&'a TePolicy>,
}

impl<'a> Analyzer<'a> {
    /// Creates an analyzer for a single SACK policy.
    pub fn new(policy: &'a SackPolicy) -> Analyzer<'a> {
        Analyzer {
            policy,
            profiles: &[],
            te: None,
        }
    }

    /// Adds the AppArmor profiles the policy will be stacked with.
    #[must_use]
    pub fn with_profiles(mut self, profiles: &'a [Profile]) -> Analyzer<'a> {
        self.profiles = profiles;
        self
    }

    /// Adds the TE policy the SACK policy will be stacked with.
    #[must_use]
    pub fn with_te(mut self, te: &'a TePolicy) -> Analyzer<'a> {
        self.te = Some(te);
        self
    }

    /// Runs every applicable check and returns the report.
    pub fn run(&self) -> Report {
        let mut report = Report::default();
        let issues = check_policy(self.policy);
        let has_errors = issues.iter().any(|i| i.severity == IssueSeverity::Error);
        report
            .diagnostics
            .extend(issues.into_iter().map(Diagnostic::from));
        if has_errors {
            // Cross-layer reasoning needs a well-formed policy.
            return report;
        }
        self.check_privilege_widening(&mut report);
        self.check_profile_stacking(&mut report);
        self.check_te_stacking(&mut report);
        self.collect_dfa_sizes(&mut report);
        self.collect_profile_dfa_sizes(&mut report);
        report
    }

    /// Compiles the policy and records the unified per-state DFA matcher
    /// sizes, warning when a table blows past the state budget.
    fn collect_dfa_sizes(&self, report: &mut Report) {
        let Ok(compiled) = self.policy.compile() else {
            return; // compile issues are already reported by the checker
        };
        for (index, state) in compiled.space().states().iter().enumerate() {
            let dfa = compiled.state_dfa(StateId(index));
            let stats = dfa.stats();
            report.dfa.push(DfaSize {
                state: state.name.clone(),
                states: stats.states,
                transitions: stats.transitions,
                classes: stats.classes,
                residual_rules: dfa.residual_rule_count(),
            });
            if stats.states > DFA_STATE_BUDGET {
                report.diagnostics.push(Diagnostic::warning(
                    CHECK_DFA_STATE_BLOWUP,
                    format!(
                        "situation `{}`: compiled DFA matcher has {} states \
                         (budget {DFA_STATE_BUDGET}) — the rule set's globs \
                         explode under determinization; simplify overlapping \
                         patterns or split the permission",
                        state.name, stats.states,
                    ),
                ));
            }
        }
    }

    /// Loads the stacked profiles through a scratch `PolicyDb` — the same
    /// shared-alphabet compile path the kernel module uses — and records
    /// each profile's compiled matcher size. Compile-time load
    /// diagnostics (duplicate rules, per-profile DFA blowup) surface in
    /// the report verbatim, so `sack-analyze` flags them before a bundle
    /// ever reaches a vehicle.
    fn collect_profile_dfa_sizes(&self, report: &mut Report) {
        if self.profiles.is_empty() {
            return;
        }
        let db = sack_apparmor::PolicyDb::new();
        for profile in self.profiles {
            db.load(profile.clone());
        }
        for diag in db.take_load_diagnostics() {
            report.diagnostics.push(Diagnostic::warning(
                diag.check,
                format!("profile `{}`: {}", diag.profile, diag.message),
            ));
        }
        let mut sizes: HashMap<String, ProfileDfaSize> = profile_dfa_sizes_of(&db)
            .into_iter()
            .map(|s| (s.profile.clone(), s))
            .collect();
        for profile in self.profiles {
            if let Some(size) = sizes.remove(&profile.name) {
                report.profile_dfa.push(size);
            }
        }
    }

    /// Permission → states granting it, with `*` entries expanded.
    fn granted_states(&self) -> HashMap<&'a str, HashSet<&'a str>> {
        let mut granted: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (state, perms) in &self.policy.state_per {
            for perm in perms {
                let entry = granted.entry(perm.as_str()).or_default();
                if state == "*" {
                    entry.extend(self.policy.states.iter().map(|(n, _)| n.as_str()));
                } else {
                    entry.insert(state.as_str());
                }
            }
        }
        granted
    }

    /// Allow rules of permissions granted only in a strict subset of
    /// states, i.e. access SACK actively gates on the situation. Returns
    /// `(permission, rule provenance pieces, object glob, perms, states)`.
    fn gated_allow_rules(&self) -> Vec<GatedRule<'a>> {
        let granted = self.granted_states();
        let state_count = self.policy.states.len();
        let mut gated = Vec::new();
        for (perm, rules) in &self.policy.per_rules {
            let Some(states) = granted.get(perm.as_str()) else {
                continue; // never granted — a core warning already fired
            };
            if states.len() == state_count {
                continue; // granted everywhere: nothing situational to protect
            }
            for spec in rules {
                if spec.effect != RuleEffect::Allow {
                    continue;
                }
                let (Ok(glob), Ok(perms)) =
                    (Glob::compile(&spec.object), FilePerms::parse(&spec.perms))
                else {
                    continue;
                };
                let mut names: Vec<&str> = states.iter().copied().collect();
                names.sort_unstable();
                gated.push(GatedRule {
                    permission: perm.as_str(),
                    line: spec.line,
                    rule: sack_core::policy::render_rule(spec),
                    subject: &spec.subject,
                    glob,
                    perms,
                    states: names,
                });
            }
        }
        gated
    }

    /// A permission granted to *any* subject in restricted situations but
    /// not in the normal (initial) one is a privilege-widening smell: a
    /// situation flip silently hands every task new access. Grants scoped
    /// to an executable, uid, or profile are deliberate break-glass rules
    /// and exempt.
    fn check_privilege_widening(&self, report: &mut Report) {
        let Some(initial) = &self.policy.initial else {
            return;
        };
        let granted = self.granted_states();
        for (perm, rules) in &self.policy.per_rules {
            let Some(states) = granted.get(perm.as_str()) else {
                continue;
            };
            if states.contains(initial.as_str()) {
                continue;
            }
            for spec in rules {
                if spec.effect != RuleEffect::Allow || spec.subject != SubjectSpec::Any {
                    continue;
                }
                let mut names: Vec<&str> = states.iter().copied().collect();
                names.sort_unstable();
                report.diagnostics.push(
                    Diagnostic::warning(
                        CHECK_PRIVILEGE_WIDENING,
                        format!(
                            "permission `{perm}` grants `{} {}` to any subject in \
                             restricted situation(s) [{}] but not in the normal \
                             situation `{initial}` — privilege widening; scope the \
                             subject or grant it in `{initial}` too",
                            spec.object,
                            spec.perms,
                            names.join(", "),
                        ),
                    )
                    .with_provenance(RuleProvenance {
                        permission: perm.clone(),
                        line: spec.line,
                        rule: sack_core::policy::render_rule(spec),
                    }),
                );
            }
        }
    }

    /// A path SACK gates behind a situation must not be statically allowed
    /// by the stacked AppArmor profile: the profile is the layer that holds
    /// when SACK is in a *denying* state, so a static allow on an
    /// overlapping path defeats the gate.
    fn check_profile_stacking(&self, report: &mut Report) {
        if self.profiles.is_empty() {
            return;
        }
        let known: HashSet<&str> = self.profiles.iter().map(|p| p.name.as_str()).collect();
        for (perm, rules) in &self.policy.per_rules {
            for spec in rules {
                if let SubjectSpec::Profile(name) = &spec.subject {
                    if !known.contains(name.as_str()) {
                        report.diagnostics.push(
                            Diagnostic::warning(
                                CHECK_UNKNOWN_PROFILE,
                                format!(
                                    "permission `{perm}`: rule targets profile `{name}`, \
                                     which is not among the loaded profiles"
                                ),
                            )
                            .with_provenance(RuleProvenance {
                                permission: perm.clone(),
                                line: spec.line,
                                rule: sack_core::policy::render_rule(spec),
                            }),
                        );
                    }
                }
            }
        }

        for gated in self.gated_allow_rules() {
            for profile in self.profiles {
                for rule in &profile.path_rules {
                    if rule.deny || rule.origin.as_deref() == Some(SACK_ORIGIN) {
                        continue;
                    }
                    let shared = rule.perms.intersect(gated.perms);
                    if shared.is_empty() || !rule.glob.overlaps(&gated.glob) {
                        continue;
                    }
                    // A same-profile deny that blankets the gated object
                    // closes the hole.
                    let denied = profile
                        .path_rules
                        .iter()
                        .any(|d| d.deny && d.perms.contains(shared) && d.glob.covers(&gated.glob));
                    if denied {
                        continue;
                    }
                    report.diagnostics.push(
                        Diagnostic::warning(
                            CHECK_PROFILE_WIDE_OPEN,
                            format!(
                                "`{}` is gated by SACK to situation(s) [{}] \
                                 (permission `{}`), but profile `{}` statically \
                                 allows `{}` on overlapping path `{}` — the stacked \
                                 profile defeats the situation gate",
                                gated.glob.source(),
                                gated.states.join(", "),
                                gated.permission,
                                profile.name,
                                shared,
                                rule.glob.source(),
                            ),
                        )
                        .with_provenance(RuleProvenance {
                            permission: gated.permission.to_string(),
                            line: gated.line,
                            rule: gated.rule.clone(),
                        }),
                    );
                }
            }
        }
    }

    /// The TE analogue of [`Analyzer::check_profile_stacking`]: a labeling
    /// rule that can label a SACK-gated path, combined with an allow rule
    /// granting overlapping permissions on that label, is a static hole.
    fn check_te_stacking(&self, report: &mut Report) {
        let Some(te) = self.te else {
            return;
        };
        for gated in self.gated_allow_rules() {
            for (label_glob, object_ty) in te.labeling_rules() {
                if !label_glob.overlaps(&gated.glob) {
                    continue;
                }
                for (subject_ty, obj, granted) in te.allow_rules() {
                    if obj != object_ty {
                        continue;
                    }
                    let shared = granted.intersect(gated.perms);
                    if shared.is_empty() {
                        continue;
                    }
                    report.diagnostics.push(
                        Diagnostic::warning(
                            CHECK_TE_WIDE_OPEN,
                            format!(
                                "`{}` is gated by SACK to situation(s) [{}] \
                                 (permission `{}`), but TE labels overlapping path \
                                 `{}` as `{}` and statically allows `{}` to domain \
                                 `{}` — the stacked TE policy defeats the situation \
                                 gate",
                                gated.glob.source(),
                                gated.states.join(", "),
                                gated.permission,
                                label_glob.source(),
                                te.type_name(object_ty),
                                shared,
                                te.type_name(subject_ty),
                            ),
                        )
                        .with_provenance(RuleProvenance {
                            permission: gated.permission.to_string(),
                            line: gated.line,
                            rule: gated.rule.clone(),
                        }),
                    );
                }
            }
        }
    }
}

/// One situation-gated allow rule, pre-compiled for stacking checks.
struct GatedRule<'a> {
    permission: &'a str,
    line: usize,
    rule: String,
    #[allow(dead_code)]
    subject: &'a SubjectSpec,
    glob: Glob,
    perms: FilePerms,
    states: Vec<&'a str>,
}
