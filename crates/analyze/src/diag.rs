//! Structured diagnostics and reports.
//!
//! A [`Diagnostic`] is one finding: a severity, a stable kebab-case check
//! id (machine-matchable), a human-readable message, and — for rule-level
//! findings — the provenance of the offending rule. A [`Report`] is the
//! ordered collection produced by one analyzer run, renderable as text or
//! JSON.

use std::fmt;

use sack_core::policy::{IssueSeverity, PolicyIssue, RuleProvenance};

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error (would abort a load) or warning.
    pub severity: IssueSeverity,
    /// Stable kebab-case check id, e.g. `shadowed-rule` or
    /// `stacked-profile-wide-open`.
    pub check: String,
    /// Human-readable description.
    pub message: String,
    /// The rule this finding is anchored to, when applicable.
    pub provenance: Option<RuleProvenance>,
}

impl Diagnostic {
    /// Builds a warning-severity diagnostic.
    pub fn warning(check: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: IssueSeverity::Warning,
            check: check.to_string(),
            message: message.into(),
            provenance: None,
        }
    }

    /// Attaches rule provenance.
    #[must_use]
    pub fn with_provenance(mut self, provenance: RuleProvenance) -> Diagnostic {
        self.provenance = Some(provenance);
        self
    }
}

impl From<PolicyIssue> for Diagnostic {
    fn from(issue: PolicyIssue) -> Diagnostic {
        Diagnostic {
            severity: issue.severity,
            check: issue.kind.id().to_string(),
            message: issue.message,
            provenance: issue.provenance,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.check, self.message)?;
        if let Some(prov) = &self.provenance {
            write!(
                f,
                "\n    --> permission `{}`, line {}: `{}`",
                prov.permission, prov.line, prov.rule
            )?;
        }
        Ok(())
    }
}

/// Compiled matcher size for one situation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfaSize {
    /// Situation state name.
    pub state: String,
    /// Number of DFA states in the unified per-state matcher.
    pub states: usize,
    /// Number of live (non-dead) transitions in its table.
    pub transitions: usize,
    /// Byte equivalence classes in the compressed alphabet.
    pub classes: usize,
    /// Subject-scoped rules left on the residual scan path.
    pub residual_rules: usize,
}

/// Table size of one compiled profile matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledDfaSize {
    /// Number of DFA states in the profile's compiled matcher.
    pub states: usize,
    /// Number of live (non-dead) transitions in its table.
    pub transitions: usize,
}

/// Matcher report entry for one stacked AppArmor profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDfaSize {
    /// Profile name.
    pub profile: String,
    /// Number of path rules the profile compiles.
    pub rules: usize,
    /// Byte equivalence classes in the (namespace-shared) alphabet.
    pub classes: usize,
    /// Table size once the body's DFA is built; `None` while a lazily
    /// loaded profile is still an uncompiled stub.
    pub compiled: Option<CompiledDfaSize>,
    /// Shared-body dedup group: entries carrying the same id share one
    /// DFA slot (identical rule bodies compiled at most once).
    pub dedup_group: usize,
}

/// The outcome of one analyzer run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Findings in detection order (core checks first, stacking last).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-state DFA matcher sizes, when the policy compiled cleanly.
    pub dfa: Vec<DfaSize>,
    /// Per-profile DFA matcher sizes for the stacked AppArmor profiles,
    /// compiled through the same `PolicyDb` path the kernel module uses.
    pub profile_dfa: Vec<ProfileDfaSize>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == IssueSeverity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == IssueSeverity::Warning)
            .count()
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings matching a check id.
    pub fn by_check<'r>(&'r self, check: &'r str) -> impl Iterator<Item = &'r Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.check == check)
    }

    /// Renders the report as human-readable text, one finding per block,
    /// followed by the per-state DFA matcher sizes when available.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str("no findings\n");
        } else {
            for diag in &self.diagnostics {
                out.push_str(&diag.to_string());
                out.push('\n');
            }
            out.push_str(&format!(
                "{} error(s), {} warning(s)\n",
                self.error_count(),
                self.warning_count()
            ));
        }
        if !self.dfa.is_empty() {
            out.push_str("per-state DFA matcher:\n");
            for size in &self.dfa {
                out.push_str(&format!(
                    "  {}: {} states, {} transitions, {} byte classes, \
                     {} residual rule(s)\n",
                    size.state, size.states, size.transitions, size.classes, size.residual_rules
                ));
            }
        }
        if !self.profile_dfa.is_empty() {
            out.push_str("per-profile DFA matcher:\n");
            for size in &self.profile_dfa {
                let sharers = self
                    .profile_dfa
                    .iter()
                    .filter(|s| s.dedup_group == size.dedup_group)
                    .count();
                out.push_str(&format!("  {}: {} rule(s), ", size.profile, size.rules));
                match &size.compiled {
                    Some(c) => out.push_str(&format!(
                        "{} states, {} transitions, ",
                        c.states, c.transitions
                    )),
                    None => out.push_str("uncompiled (lazy), "),
                }
                out.push_str(&format!("{} byte classes", size.classes));
                if sharers > 1 {
                    out.push_str(&format!(
                        " [shared body group {}, {} profiles]",
                        size.dedup_group, sharers
                    ));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the report as machine-readable JSON.
    ///
    /// Shape:
    ///
    /// ```json
    /// {
    ///   "errors": 0,
    ///   "warnings": 1,
    ///   "diagnostics": [
    ///     {
    ///       "severity": "warning",
    ///       "check": "shadowed-rule",
    ///       "message": "...",
    ///       "provenance": {"permission": "P", "line": 4, "rule": "..."}
    ///     }
    ///   ],
    ///   "dfa": [
    ///     {"state": "normal", "states": 12, "transitions": 40,
    ///      "classes": 7, "residual_rules": 0}
    ///   ]
    /// }
    /// ```
    ///
    /// The `dfa` key is present only when the policy compiled cleanly and
    /// matcher sizes were collected. A `profile_dfa` key is present when
    /// stacked AppArmor profiles were supplied; each entry carries
    /// `profile`, `rules`, a `compiled` flag (`states`/`transitions` are
    /// `null` for uncompiled lazy stubs), `classes`, and the shared-body
    /// `dedup_group` id.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, diag) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"check\":\"{}\",\"message\":\"{}\"",
                diag.severity,
                json_escape(&diag.check),
                json_escape(&diag.message)
            ));
            if let Some(prov) = &diag.provenance {
                out.push_str(&format!(
                    ",\"provenance\":{{\"permission\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
                    json_escape(&prov.permission),
                    prov.line,
                    json_escape(&prov.rule)
                ));
            }
            out.push('}');
        }
        out.push(']');
        if !self.dfa.is_empty() {
            out.push_str(",\"dfa\":[");
            for (i, size) in self.dfa.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"state\":\"{}\",\"states\":{},\"transitions\":{},\
                     \"classes\":{},\"residual_rules\":{}}}",
                    json_escape(&size.state),
                    size.states,
                    size.transitions,
                    size.classes,
                    size.residual_rules
                ));
            }
            out.push(']');
        }
        if !self.profile_dfa.is_empty() {
            out.push_str(",\"profile_dfa\":[");
            for (i, size) in self.profile_dfa.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let (states, transitions) = match &size.compiled {
                    Some(c) => (c.states.to_string(), c.transitions.to_string()),
                    None => ("null".to_string(), "null".to_string()),
                };
                out.push_str(&format!(
                    "{{\"profile\":\"{}\",\"rules\":{},\"compiled\":{},\
                     \"states\":{states},\"transitions\":{transitions},\
                     \"classes\":{},\"dedup_group\":{}}}",
                    json_escape(&size.profile),
                    size.rules,
                    size.compiled.is_some(),
                    size.classes,
                    size.dedup_group
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn report_counts_and_render() {
        let report = Report {
            diagnostics: vec![Diagnostic::warning("shadowed-rule", "rule x is shadowed")],
            ..Report::default()
        };
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
        assert!(report.render().contains("[shadowed-rule]"));
        let json = report.to_json();
        assert!(json.contains("\"check\":\"shadowed-rule\""));
        assert!(json.contains("\"warnings\":1"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Report::default();
        assert!(report.is_clean());
        assert_eq!(report.render(), "no findings\n");
        assert_eq!(
            report.to_json(),
            "{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
    }
}
