//! Deterministic, exhaustive interleaving exploration (loom-style DFS).
//!
//! A [`Model`] is a small, hand-written state machine abstracting a
//! concurrent algorithm: a fixed set of threads, each advanced one atomic
//! step at a time by [`Model::step`]. [`explore`] runs a depth-first
//! search over *every* schedule of enabled steps, memoising visited
//! states so the search terminates even when distinct schedules converge
//! on the same state.
//!
//! After each step the model's [`Model::check_invariants`] runs; a
//! returned violation aborts the search and is reported together with
//! the exact schedule (sequence of thread ids) that produced it, so a
//! failure is always replayable by hand.
//!
//! This is *model checking*, not stress testing: for a bounded model the
//! result is a proof over all interleavings, which is exactly what the
//! lock-free hot path (`Rcu<T>` readers/writers and the epoch-tagged
//! decision cache) needs — the dangerous schedules are the ones a stress
//! test virtually never hits.

use std::collections::HashSet;
use std::hash::Hash;

/// A bounded concurrent algorithm to model-check.
///
/// Implementations must be cheap to clone and hash: the explorer clones
/// the state at every branch point and memoises visited states.
pub trait Model: Clone + Eq + Hash {
    /// Number of threads in the model. Thread ids are `0..threads()`.
    fn threads(&self) -> usize;

    /// True when `thread` has an enabled step in the current state.
    fn enabled(&self, thread: usize) -> bool;

    /// Advances `thread` by one atomic step. Only called when
    /// [`Model::enabled`] returned true for that thread. Returns an
    /// error description if the step itself observed a violation (e.g.
    /// a reader acquired a freed object).
    fn step(&mut self, thread: usize) -> Result<(), String>;

    /// True when every thread has run to completion.
    fn done(&self) -> bool;

    /// Global invariants checked after every step and at quiescence.
    fn check_invariants(&self) -> Result<(), String>;
}

/// A counterexample: the violated property plus the schedule reaching it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Description of the violated property.
    pub message: String,
    /// Thread ids in execution order; replaying these steps from the
    /// initial state reproduces the violation deterministically.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n  schedule: {:?}", self.message, self.schedule)
    }
}

/// Statistics from an exhaustive exploration that found no violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states visited (after memoisation).
    pub states: usize,
    /// Complete schedules that ran every thread to completion.
    pub complete_schedules: usize,
}

/// Exhaustively explores every interleaving of `model` up to
/// `max_depth` total steps.
///
/// Returns `Ok` with search statistics when every reachable schedule
/// completes without violating an invariant, or `Err` with the first
/// counterexample found. A state where no thread is enabled but the
/// model is not [`Model::done`] is reported as a deadlock; exceeding
/// `max_depth` is reported as a bound violation (the bound exists to
/// catch accidental non-termination in a model, not to hide behaviour —
/// pick it comfortably above the model's true step count).
pub fn explore<M: Model>(model: &M, max_depth: usize) -> Result<Exploration, Violation> {
    let mut visited: HashSet<M> = HashSet::new();
    let mut stats = Exploration {
        states: 0,
        complete_schedules: 0,
    };
    let mut schedule = Vec::new();
    dfs(model, max_depth, &mut visited, &mut stats, &mut schedule)?;
    Ok(stats)
}

fn dfs<M: Model>(
    model: &M,
    depth_left: usize,
    visited: &mut HashSet<M>,
    stats: &mut Exploration,
    schedule: &mut Vec<usize>,
) -> Result<(), Violation> {
    if !visited.insert(model.clone()) {
        return Ok(()); // converged with an already-explored state
    }
    stats.states += 1;

    if model.done() {
        stats.complete_schedules += 1;
        return check(model, schedule);
    }

    let enabled: Vec<usize> = (0..model.threads()).filter(|&t| model.enabled(t)).collect();
    if enabled.is_empty() {
        return Err(Violation {
            message: "deadlock: no thread enabled but model not done".to_string(),
            schedule: schedule.clone(),
        });
    }
    if depth_left == 0 {
        return Err(Violation {
            message: "depth bound exceeded: model did not quiesce".to_string(),
            schedule: schedule.clone(),
        });
    }

    for thread in enabled {
        let mut next = model.clone();
        schedule.push(thread);
        if let Err(message) = next.step(thread) {
            return Err(Violation {
                message,
                schedule: schedule.clone(),
            });
        }
        check(&next, schedule)?;
        dfs(&next, depth_left - 1, visited, stats, schedule)?;
        schedule.pop();
    }
    Ok(())
}

fn check<M: Model>(model: &M, schedule: &[usize]) -> Result<(), Violation> {
    model.check_invariants().map_err(|message| Violation {
        message,
        schedule: schedule.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter via a non-atomic
    /// read-modify-write. The classic lost-update bug: with an atomic
    /// step granularity of load/store, some interleaving ends with 1.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct LostUpdate {
        shared: u8,
        // Per thread: 0 = before load, 1 = loaded (value), 2 = stored.
        pc: [u8; 2],
        local: [u8; 2],
        atomic: bool,
    }

    impl LostUpdate {
        fn new(atomic: bool) -> LostUpdate {
            LostUpdate {
                shared: 0,
                pc: [0; 2],
                local: [0; 2],
                atomic,
            }
        }
    }

    impl Model for LostUpdate {
        fn threads(&self) -> usize {
            2
        }

        fn enabled(&self, thread: usize) -> bool {
            self.pc[thread] < 2
        }

        fn step(&mut self, thread: usize) -> Result<(), String> {
            match self.pc[thread] {
                0 if self.atomic => {
                    self.shared += 1;
                    self.pc[thread] = 2;
                }
                0 => {
                    self.local[thread] = self.shared;
                    self.pc[thread] = 1;
                }
                1 => {
                    self.shared = self.local[thread] + 1;
                    self.pc[thread] = 2;
                }
                _ => unreachable!(),
            }
            Ok(())
        }

        fn done(&self) -> bool {
            self.pc.iter().all(|&pc| pc == 2)
        }

        fn check_invariants(&self) -> Result<(), String> {
            if self.done() && self.shared != 2 {
                return Err(format!("lost update: counter is {}, not 2", self.shared));
            }
            Ok(())
        }
    }

    #[test]
    fn explorer_finds_the_lost_update() {
        let violation = explore(&LostUpdate::new(false), 16).unwrap_err();
        assert!(violation.message.contains("lost update"));
        // The counterexample schedule must interleave both threads'
        // load phases before either store.
        assert!(violation.schedule.len() >= 3);
    }

    #[test]
    fn explorer_proves_the_atomic_version() {
        let stats = explore(&LostUpdate::new(true), 16).unwrap();
        assert!(stats.complete_schedules >= 1);
        assert!(stats.states > 1);
    }

    /// A model that never finishes must trip the depth bound, not hang.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Spinner {
        count: u64,
    }

    impl Model for Spinner {
        fn threads(&self) -> usize {
            1
        }
        fn enabled(&self, _: usize) -> bool {
            true
        }
        fn step(&mut self, _: usize) -> Result<(), String> {
            self.count += 1; // every state distinct: memoisation can't save us
            Ok(())
        }
        fn done(&self) -> bool {
            false
        }
        fn check_invariants(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn depth_bound_catches_divergence() {
        let violation = explore(&Spinner { count: 0 }, 8).unwrap_err();
        assert!(violation.message.contains("depth bound"));
    }

    /// No thread enabled + not done = deadlock.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Stuck;

    impl Model for Stuck {
        fn threads(&self) -> usize {
            1
        }
        fn enabled(&self, _: usize) -> bool {
            false
        }
        fn step(&mut self, _: usize) -> Result<(), String> {
            unreachable!()
        }
        fn done(&self) -> bool {
            false
        }
        fn check_invariants(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlock_is_reported() {
        let violation = explore(&Stuck, 8).unwrap_err();
        assert!(violation.message.contains("deadlock"));
    }
}
