//! `sack-analyze` — command-line front end for the static policy
//! analyzer and the sack-trace flight-dump reader.
//!
//! ```text
//! sack-analyze <policy.sack> [--profiles <profiles.aa>] [--te <policy.te>]
//!              [--json] [--strict]
//! sack-analyze trace (--self-check | <flight-dump>)
//!              [--metrics <metrics.json>] [--strict]
//! sack-analyze sched [--smoke]
//! sack-analyze sync-lint [--root <dir>]
//! sack-analyze fleet [--self-check]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed unless `--strict`), `1`
//! findings/anomalies that should block deployment, `2` usage / I/O /
//! parse errors.

use std::process::ExitCode;

use sack_analyze::Analyzer;
use sack_apparmor::parser::parse_profiles;
use sack_apparmor::profile::Profile;
use sack_core::IssueSeverity;
use sack_core::SackPolicy;
use sack_te::TePolicy;

const USAGE: &str = "usage: sack-analyze <policy.sack> [--profiles <profiles.aa>] \
                     [--te <policy.te>] [--json] [--strict]\n       \
                     sack-analyze trace (--self-check | <flight-dump>) \
                     [--metrics <metrics.json>] [--strict]\n       \
                     sack-analyze sched [--smoke]\n       \
                     sack-analyze sync-lint [--root <dir>]\n       \
                     sack-analyze fleet [--self-check]";

struct Options {
    policy_path: String,
    profiles_path: Option<String>,
    te_path: Option<String>,
    json: bool,
    strict: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut policy_path = None;
    let mut profiles_path = None;
    let mut te_path = None;
    let mut json = false;
    let mut strict = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--profiles" => {
                profiles_path = Some(
                    iter.next()
                        .ok_or("--profiles requires a file argument")?
                        .clone(),
                );
            }
            "--te" => {
                te_path = Some(iter.next().ok_or("--te requires a file argument")?.clone());
            }
            "--json" => json = true,
            "--strict" => strict = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => {
                if policy_path.replace(path.to_string()).is_some() {
                    return Err(format!("more than one policy file given\n{USAGE}"));
                }
            }
        }
    }
    Ok(Options {
        policy_path: policy_path.ok_or_else(|| format!("no policy file given\n{USAGE}"))?,
        profiles_path,
        te_path,
        json,
        strict,
    })
}

fn run(options: &Options) -> Result<ExitCode, String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))
    };

    let policy_text = read(&options.policy_path)?;
    let policy =
        SackPolicy::parse(&policy_text).map_err(|err| format!("{}: {err}", options.policy_path))?;

    let profiles: Vec<Profile> = match &options.profiles_path {
        Some(path) => parse_profiles(&read(path)?).map_err(|err| format!("{path}: {err}"))?,
        None => Vec::new(),
    };
    let te = match &options.te_path {
        Some(path) => Some(TePolicy::parse(&read(path)?).map_err(|err| format!("{path}: {err}"))?),
        None => None,
    };

    let mut analyzer = Analyzer::new(&policy).with_profiles(&profiles);
    if let Some(te) = &te {
        analyzer = analyzer.with_te(te);
    }
    let report = analyzer.run();

    if options.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    let blocking = report.error_count() > 0 || (options.strict && report.warning_count() > 0);
    Ok(if blocking {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

struct TraceOptions {
    self_check: bool,
    flight_path: Option<String>,
    metrics_path: Option<String>,
    strict: bool,
}

fn parse_trace_args(args: &[String]) -> Result<TraceOptions, String> {
    let mut self_check = false;
    let mut flight_path = None;
    let mut metrics_path = None;
    let mut strict = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--self-check" => self_check = true,
            "--metrics" => {
                metrics_path = Some(
                    iter.next()
                        .ok_or("--metrics requires a file argument")?
                        .clone(),
                );
            }
            "--strict" => strict = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => {
                if flight_path.replace(path.to_string()).is_some() {
                    return Err(format!("more than one flight dump given\n{USAGE}"));
                }
            }
        }
    }
    if !self_check && flight_path.is_none() {
        return Err(format!(
            "trace needs --self-check or a flight dump\n{USAGE}"
        ));
    }
    Ok(TraceOptions {
        self_check,
        flight_path,
        metrics_path,
        strict,
    })
}

fn run_trace(options: &TraceOptions) -> Result<ExitCode, String> {
    if options.self_check {
        print!("{}", sack_analyze::self_check()?);
        return Ok(ExitCode::SUCCESS);
    }
    let path = options.flight_path.as_deref().expect("checked by parser");
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|err| format!("cannot read `{path}`: {err}"))
    };
    let dump = sack_analyze::parse_flight(&read(path)?).map_err(|err| format!("{path}: {err}"))?;
    let mut anomalies = sack_analyze::lint_flight(&dump);
    if let Some(metrics_path) = &options.metrics_path {
        anomalies.extend(sack_analyze::lint_metrics(&read(metrics_path)?));
    }
    print!("{}", sack_analyze::render_report(&dump, &anomalies));
    let blocking = anomalies.iter().any(|a| {
        a.severity == IssueSeverity::Error
            || (options.strict && a.severity == IssueSeverity::Warning)
    });
    Ok(if blocking {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Runs the deterministic-schedule executor gate: exhaustive exploration
/// of every core scenario, every planted mutation caught with a printed
/// counterexample, and the model-conformance replays. `--smoke` caps the
/// per-scenario schedule budget for fast CI runs.
fn run_sched(smoke: bool) -> Result<ExitCode, String> {
    use sack_analyze::sched::{conformance, explore, scenarios, SchedConfig};
    use sack_kernel::sync::Mutation;

    let mut cfg = SchedConfig::exhaustive();
    if smoke {
        cfg.max_schedules = 2_000;
    }

    let core = [
        scenarios::rcu_read_write(1),
        scenarios::cache_epoch_bump(1),
        scenarios::profile_publish(),
        scenarios::cache_torn_pair(),
        scenarios::percpu_invalidate_walk(false),
        scenarios::ring_produce_drain(),
        scenarios::lazy_first_touch(),
    ];
    println!("== exhaustive exploration (seed {:#x}) ==", cfg.seed);
    for scenario in &core {
        match explore(scenario, &cfg) {
            Ok(stats) => {
                println!(
                    "  {:<32} {:>6} schedules, {:>5} sleep-pruned, complete={}",
                    scenario.name, stats.schedules, stats.pruned, stats.complete
                );
                if !smoke && !stats.complete {
                    return Err(format!(
                        "{}: exploration hit the schedule budget before exhausting \
                         the space",
                        scenario.name
                    ));
                }
            }
            Err(violation) => {
                println!("{violation}");
                return Ok(ExitCode::from(1));
            }
        }
    }

    println!("== planted mutations (each must be caught) ==");
    let mutations: [(&str, sack_analyze::sched::Scenario, Option<Mutation>); 6] = [
        (
            "rcu skip hazard re-validation",
            scenarios::rcu_read_write(1),
            Some(Mutation::RcuSkipValidation),
        ),
        (
            "rcu free before hazard scan",
            scenarios::rcu_read_write(1),
            Some(Mutation::RcuFreeBeforeScan),
        ),
        (
            "cache skip payload verifier",
            scenarios::cache_torn_pair(),
            Some(Mutation::CacheSkipVerifier),
        ),
        (
            "per-cpu walk skips instance 0",
            scenarios::percpu_invalidate_walk(true),
            None,
        ),
        (
            "ring publish after lost claim",
            scenarios::ring_produce_drain(),
            Some(Mutation::RingTornPublish),
        ),
        (
            "lazy slot skips claim, double-publishes",
            scenarios::lazy_first_touch(),
            Some(Mutation::LazyDoublePublish),
        ),
    ];
    for (label, scenario, mutation) in mutations {
        let mut mcfg = cfg.clone();
        mcfg.mutation = mutation;
        match explore(&scenario, &mcfg) {
            Err(violation) => {
                println!(
                    "  {:<32} caught in {} steps",
                    label,
                    violation.schedule.len()
                );
                println!("{violation}");
            }
            Ok(stats) => {
                return Err(format!(
                    "planted bug `{label}` survived {} schedules (complete = {}) — \
                     the executor lost its teeth",
                    stats.schedules, stats.complete
                ));
            }
        }
    }

    println!("== model conformance (abstract counterexamples vs real code) ==");
    let reports = conformance::run_all()?;
    for r in &reports {
        println!(
            "  {:<32} model schedule {:?} -> real violation in {} steps",
            r.model,
            r.model_schedule,
            r.real_violation.schedule.len()
        );
    }
    println!("sched: all gates passed");
    Ok(ExitCode::SUCCESS)
}

/// Runs the sync seam lint over the protocol sources.
fn run_sync_lint(root: &str) -> Result<ExitCode, String> {
    let roots = sack_analyze::sync_lint::default_roots(std::path::Path::new(root));
    for r in &roots {
        if !r.exists() {
            return Err(format!(
                "lint root `{}` does not exist — run from the repo root or pass --root",
                r.display()
            ));
        }
    }
    let findings = sack_analyze::lint_paths(&roots).map_err(|err| format!("sync-lint: {err}"))?;
    if findings.is_empty() {
        println!("sync-lint: clean ({} roots)", roots.len());
        return Ok(ExitCode::SUCCESS);
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "sync-lint: {} direct synchronization use(s) outside the sync::shim seam \
         (route them through the shim or add a justified allowlist entry)",
        findings.len()
    );
    Ok(ExitCode::from(1))
}

fn parse_sched_args(args: &[String]) -> Result<bool, String> {
    let mut smoke = false;
    for arg in args {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown sched argument `{other}`\n{USAGE}")),
        }
    }
    Ok(smoke)
}

fn parse_sync_lint_args(args: &[String]) -> Result<String, String> {
    let mut root = ".".to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root = iter
                    .next()
                    .ok_or("--root requires a directory argument")?
                    .clone();
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown sync-lint argument `{other}`\n{USAGE}")),
        }
    }
    Ok(root)
}

/// Runs the fleet telemetry-plane self-check (`--self-check` is implied:
/// the subcommand has no other mode yet, but the flag is accepted for
/// symmetry with `trace`).
fn run_fleet(args: &[String]) -> Result<ExitCode, String> {
    for arg in args {
        match arg.as_str() {
            "--self-check" => {}
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown fleet argument `{other}`\n{USAGE}")),
        }
    }
    print!("{}", sack_analyze::fleet_self_check()?);
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fleet") {
        return match run_fleet(&args[1..]) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("sack-analyze: {message}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("sched") {
        return match parse_sched_args(&args[1..]).and_then(run_sched) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("sack-analyze: {message}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("sync-lint") {
        return match parse_sync_lint_args(&args[1..]).and_then(|root| run_sync_lint(&root)) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("sack-analyze: {message}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("trace") {
        let options = match parse_trace_args(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::from(2);
            }
        };
        return match run_trace(&options) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("sack-analyze: {message}");
                ExitCode::from(2)
            }
        };
    }
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sack-analyze: {message}");
            ExitCode::from(2)
        }
    }
}
