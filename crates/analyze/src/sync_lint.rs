//! `sync-lint`: the source pass that keeps the `sync::shim` seam airtight.
//!
//! The deterministic-schedule executor ([`crate::sched`]) can only
//! model-check code whose every atomic, mutex, and thread interaction
//! flows through `sack_kernel::sync::shim`. A single direct
//! `std::sync::atomic` call in a protocol file silently escapes the
//! scheduler and rots the executor's "no schedule exists" claim. This
//! pass scans `crates/kernel/src` and `crates/core/src/cache.rs` for
//! direct `std::sync` / `std::thread` (and `parking_lot` / `crossbeam` /
//! `loom`) use and flags anything that is not:
//!
//! * the shim module itself (`crates/kernel/src/sync/shim.rs`),
//! * an allowed `std::sync` item that carries no scheduling behaviour of
//!   its own (`Arc`, `Weak`, `OnceLock`, `LazyLock`, `PoisonError`,
//!   `atomic::Ordering`),
//! * test-module code (everything after a `#[cfg(test)]` attribute —
//!   by repo convention the test module is the last item in a file),
//! * a comment, or
//! * an entry in the explicit [`ALLOWLIST`] below, each with a recorded
//!   justification. New direct uses anywhere else fail
//!   `scripts/check.sh`; either route them through the shim or add a
//!   conscious allowlist entry in the same PR.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One direct-synchronization use found outside the shim seam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// File the finding is in (as given, typically repo-relative).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
    /// Which forbidden pattern matched.
    pub pattern: &'static str,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: direct `{}` use outside the sync::shim seam: {}",
            self.file, self.line, self.pattern, self.text
        )
    }
}

/// Files whose *entire contents* are exempt, with the justification.
const EXEMPT_FILES: &[(&str, &str)] = &[(
    "kernel/src/sync/shim.rs",
    "the seam itself: the one place std primitives are named",
)];

/// `(path suffix, line fragment, justification)` triples for known
/// legitimate direct uses that predate (and sit outside) the executor's
/// scope. A match requires the file suffix AND the fragment, so a new
/// direct use in the same file still fails.
const ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "kernel/src/lsm.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};",
        "monotonic hook-dispatch counters; no cross-thread protocol",
    ),
    (
        "kernel/src/trace.rs",
        "use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};",
        "flight-recorder enable flag and drop counters; no reclamation",
    ),
    (
        "kernel/src/sched.rs",
        "use std::thread;",
        "ctx-switch benchmark pair runs two real host threads by design",
    ),
    (
        "kernel/src/smp.rs",
        "use std::sync::atomic::{AtomicBool, Ordering};",
        "storm-driver stop flag; harness orchestration, not protocol state",
    ),
    (
        "kernel/src/smp.rs",
        "use std::sync::{Barrier, OnceLock};",
        "storm-driver start barrier and seed latch; harness orchestration",
    ),
    (
        "kernel/src/smp.rs",
        "std::thread::scope(|s| {",
        "storm drivers deliberately run real OS threads",
    ),
    (
        "kernel/src/smp.rs",
        "std::thread::yield_now();",
        "storm-driver contention pacing",
    ),
    (
        "kernel/src/vfs.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};",
        "inode number allocator; monotonic counter only",
    ),
    (
        "kernel/src/time.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};",
        "simulated clock tick counter; monotonic counter only",
    ),
    (
        "kernel/src/task.rs",
        "use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};",
        "pid allocator and exit flags; monotonic counters only",
    ),
    // The simulated kernel-object tables (inode/dentry, fd tables, task
    // list, pipes, device registry, trace callbacks) use blocking
    // parking_lot locks by design — they model in-kernel spinlock'd
    // structures, are not on the lock-free verdict path, and are outside
    // the executor's protocol scope.
    (
        "kernel/src/device.rs",
        "use parking_lot::RwLock;",
        "device registry table lock; blocking by design",
    ),
    (
        "kernel/src/file.rs",
        "use parking_lot::Mutex;",
        "file-object offset/state lock; blocking by design",
    ),
    (
        "kernel/src/ipc.rs",
        "use parking_lot::{Condvar, Mutex, RwLock};",
        "pipe/socket buffers block readers on a condvar by design",
    ),
    (
        "kernel/src/task.rs",
        "use parking_lot::{Mutex, RwLock};",
        "task list and fd-table locks; blocking by design",
    ),
    (
        "kernel/src/trace.rs",
        "use parking_lot::RwLock;",
        "trace callback registry lock; blocking by design",
    ),
    (
        "kernel/src/vfs.rs",
        "use parking_lot::RwLock;",
        "inode/dentry table locks; blocking by design",
    ),
    (
        "kernel/src/instance.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};",
        "instance-id allocator; monotonic counter only",
    ),
    (
        "kernel/src/instance.rs",
        "use parking_lot::RwLock;",
        "fleet registry membership table lock; blocking by design",
    ),
];

/// `std::sync` items that are safe to name directly: they carry no
/// scheduling decision the executor would need to control.
const ALLOWED_SYNC_ITEMS: &[&str] = &[
    "Arc",
    "Weak",
    "OnceLock",
    "LazyLock",
    "PoisonError",
    "atomic::Ordering",
];

/// The default lint roots for this repository: the kernel crate's
/// sources and the lock-free decision cache.
#[must_use]
pub fn default_roots(repo_root: &Path) -> Vec<PathBuf> {
    vec![
        repo_root.join("crates/kernel/src"),
        repo_root.join("crates/core/src/cache.rs"),
    ]
}

/// Lints every `.rs` file under the given roots (files or directories).
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn lint_paths(roots: &[PathBuf]) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let text = fs::read_to_string(&file)?;
        lint_source(&file.display().to_string(), &text, &mut findings);
    }
    Ok(findings)
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_dir() {
        for entry in fs::read_dir(path)? {
            collect_rs_files(&entry?.path(), out)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// Lints one file's source text, appending findings.
pub fn lint_source(file: &str, source: &str, findings: &mut Vec<LintFinding>) {
    let normalized = file.replace('\\', "/");
    if EXEMPT_FILES
        .iter()
        .any(|(sfx, _)| normalized.ends_with(sfx))
    {
        return;
    }
    let mut in_test = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("#[cfg(test)]") {
            in_test = true;
        }
        if in_test || line.starts_with("//") {
            continue;
        }
        let pattern = match forbidden_pattern(line) {
            Some(p) => p,
            None => continue,
        };
        let allowed = ALLOWLIST
            .iter()
            .any(|(sfx, frag, _)| normalized.ends_with(sfx) && line.contains(frag));
        if !allowed {
            findings.push(LintFinding {
                file: file.to_string(),
                line: idx + 1,
                text: line.to_string(),
                pattern,
            });
        }
    }
}

/// Returns the forbidden pattern a line matches, if any.
fn forbidden_pattern(line: &str) -> Option<&'static str> {
    for pat in [
        "std::thread",
        "core::sync",
        "parking_lot",
        "crossbeam",
        "loom::",
    ] {
        if line.contains(pat) {
            return Some(match pat {
                "std::thread" => "std::thread",
                "core::sync" => "core::sync",
                "parking_lot" => "parking_lot",
                "crossbeam" => "crossbeam",
                _ => "loom",
            });
        }
    }
    let mut rest = line;
    while let Some(pos) = rest.find("std::sync") {
        let after = &rest[pos + "std::sync".len()..];
        if !sync_use_is_allowed(after) {
            return Some("std::sync");
        }
        rest = after;
    }
    None
}

/// Checks the text following `std::sync` against [`ALLOWED_SYNC_ITEMS`].
/// Handles `::Item`, `::atomic::Ordering`, and `::{A, B}` group imports.
fn sync_use_is_allowed(after: &str) -> bool {
    let Some(path) = after.strip_prefix("::") else {
        // `use std::sync;` or `std::sync as x` — whole-module import.
        return false;
    };
    if let Some(group) = path.strip_prefix('{') {
        let Some(end) = group.find('}') else {
            return false; // multi-line group import: be conservative
        };
        return group[..end]
            .split(',')
            .map(str::trim)
            .filter(|item| !item.is_empty())
            .all(item_is_allowed);
    }
    ALLOWED_SYNC_ITEMS
        .iter()
        .any(|item| path.strip_prefix(item).is_some_and(|r| !starts_ident(r)))
}

fn item_is_allowed(item: &str) -> bool {
    ALLOWED_SYNC_ITEMS.contains(&item)
}

fn starts_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(file: &str, src: &str) -> Vec<LintFinding> {
        let mut out = Vec::new();
        lint_source(file, src, &mut out);
        out
    }

    #[test]
    fn arc_and_ordering_imports_are_clean() {
        let src = "use std::sync::Arc;\nuse std::sync::atomic::Ordering;\n\
                   use std::sync::{Arc, OnceLock};\n";
        assert!(lint_str("crates/kernel/src/x.rs", src).is_empty());
    }

    #[test]
    fn direct_atomic_and_mutex_are_flagged() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   use std::sync::Mutex;\n\
                   let x = std::sync::atomic::AtomicUsize::new(0);\n";
        let findings = lint_str("crates/kernel/src/x.rs", src);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.pattern == "std::sync"));
    }

    #[test]
    fn std_thread_is_flagged() {
        let findings = lint_str("crates/kernel/src/x.rs", "use std::thread;\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, "std::thread");
    }

    #[test]
    fn comments_and_test_modules_are_skipped() {
        let src = "//! talks about std::sync::Mutex freely\n\
                   // std::thread in a comment\n\
                   #[cfg(test)]\nmod tests {\n    use std::thread;\n}\n";
        assert!(lint_str("crates/kernel/src/x.rs", src).is_empty());
    }

    #[test]
    fn shim_file_is_exempt() {
        let src = "use std::sync::atomic::{AtomicPtr, AtomicU64};\n";
        assert!(lint_str("crates/kernel/src/sync/shim.rs", src).is_empty());
    }

    #[test]
    fn allowlist_requires_both_file_and_fragment() {
        let line = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert!(lint_str("crates/kernel/src/lsm.rs", line).is_empty());
        assert_eq!(lint_str("crates/kernel/src/kernel.rs", line).len(), 1);
    }

    #[test]
    fn repo_protocol_files_are_currently_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_paths(&default_roots(&root)).expect("lint walk");
        assert!(
            findings.is_empty(),
            "sync-lint must be clean at HEAD:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
