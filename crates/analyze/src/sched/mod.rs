//! `sack-sched`: the deterministic-schedule executor.
//!
//! Where [`crate::interleave`] exhaustively explores hand-written
//! *models* of the SACK concurrency protocols, this module explores the
//! **real code**: the generic `Rcu<T, B, SLOTS>`, `DecisionCacheIn<B>`,
//! and `PerCpuCacheIn<B>` implementations are instantiated with
//! [`SchedBackend`], whose every atomic/mutex/lifecycle operation parks
//! the calling thread until a deterministic controller grants the turn.
//! Bounded depth-first enumeration with sleep-set partial-order
//! reduction (see [`executor`]) then proves, per scenario, that *no
//! schedule exists* in which the shipped implementation violates the
//! invariants the abstract models prove — or prints the counterexample
//! schedule when one does (mutation tests, [`conformance`] replays).
//!
//! Layering:
//!
//! * [`backend`] — the instrumented `shim::Backend` instance,
//! * [`executor`] — controller, DFS exploration, sleep sets, violations,
//! * [`scenarios`] — the real-code scenarios and their invariants,
//! * [`conformance`] — abstract-model counterexamples replayed through
//!   the real implementation.

pub mod backend;
pub mod conformance;
pub mod executor;
pub mod scenarios;

pub use backend::SchedBackend;
pub use conformance::ConformanceReport;
pub use executor::{
    explore, OpDesc, OpKind, Scenario, ScenarioRun, SchedConfig, SchedExploration, SchedViolation,
    Step,
};

#[cfg(test)]
mod tests {
    use sack_kernel::sync::Mutation;

    use super::executor::{explore, SchedConfig};
    use super::scenarios;

    #[test]
    fn rcu_read_write_is_exhaustively_safe() {
        let stats = explore(&scenarios::rcu_read_write(1), &SchedConfig::exhaustive())
            .unwrap_or_else(|v| panic!("{v}"));
        assert!(stats.complete, "exploration must exhaust the space");
        assert!(stats.schedules > 10, "space must be non-trivial");
    }

    #[test]
    fn rcu_skip_validation_is_caught_in_real_code() {
        let violation = explore(
            &scenarios::rcu_read_write(1),
            &SchedConfig::with_mutation(Mutation::RcuSkipValidation),
        )
        .expect_err("the planted bug must produce a violating schedule");
        assert!(violation.message.contains("use-after-free"), "{violation}");
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn rcu_free_before_scan_is_caught_in_real_code() {
        let violation = explore(
            &scenarios::rcu_read_write(1),
            &SchedConfig::with_mutation(Mutation::RcuFreeBeforeScan),
        )
        .expect_err("the planted bug must produce a violating schedule");
        assert!(violation.message.contains("use-after-free"), "{violation}");
    }

    #[test]
    fn ring_produce_drain_is_exhaustively_safe() {
        let stats = explore(&scenarios::ring_produce_drain(), &SchedConfig::exhaustive())
            .unwrap_or_else(|v| panic!("{v}"));
        assert!(stats.complete, "exploration must exhaust the space");
        assert!(stats.schedules > 10, "space must be non-trivial");
    }

    #[test]
    fn ring_torn_publish_is_caught_in_real_code() {
        let violation = explore(
            &scenarios::ring_produce_drain(),
            &SchedConfig::with_mutation(Mutation::RingTornPublish),
        )
        .expect_err("the planted bug must produce a violating schedule");
        assert!(
            violation.message.contains("lost or duplicated frames"),
            "{violation}"
        );
    }

    #[test]
    fn lazy_first_touch_is_exhaustively_safe() {
        let stats = explore(&scenarios::lazy_first_touch(), &SchedConfig::exhaustive())
            .unwrap_or_else(|v| panic!("{v}"));
        assert!(stats.complete, "exploration must exhaust the space");
        // The slot protocol is two CASes and a load per thread, so the
        // reduced space is small — but it must still contain a real race.
        assert!(stats.schedules > 1, "space must be non-trivial");
    }

    #[test]
    fn lazy_double_publish_is_caught_in_real_code() {
        let violation = explore(
            &scenarios::lazy_first_touch(),
            &SchedConfig::with_mutation(Mutation::LazyDoublePublish),
        )
        .expect_err("the planted bug must produce a violating schedule");
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn seeded_exploration_is_deterministic() {
        let cfg = SchedConfig {
            seed: 0xDEAD_BEEF,
            ..SchedConfig::exhaustive()
        };
        let a = explore(&scenarios::profile_publish(), &cfg).unwrap();
        let b = explore(&scenarios::profile_publish(), &cfg).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same exploration");
    }

    #[test]
    fn mutation_counterexample_is_reproducible_from_its_seed() {
        let cfg = SchedConfig {
            seed: 7,
            ..SchedConfig::with_mutation(Mutation::RcuSkipValidation)
        };
        let a = explore(&scenarios::rcu_read_write(1), &cfg).unwrap_err();
        let b = explore(&scenarios::rcu_read_write(1), &cfg).unwrap_err();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.message, b.message);
    }
}
