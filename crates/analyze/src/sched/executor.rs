//! The deterministic-schedule executor: exhaustive bounded exploration of
//! thread interleavings over the **real** shimmed protocol code.
//!
//! # How one execution runs
//!
//! A [`Scenario`] builds fresh shared state and a set of thread bodies.
//! The executor spawns one OS thread per body; every shim operation the
//! body performs (see `super::backend`) parks the thread with a pending
//! [`OpKind`] announcement. The controller waits until **every** live
//! thread is parked or finished — at that moment the full frontier of
//! pending operations is known — grants exactly one thread its turn, and
//! repeats. A complete run is therefore one interleaving, recorded as the
//! sequence of granted steps.
//!
//! # How the schedule space is enumerated
//!
//! Depth-first search over a persistent choice stack: each decision point
//! stores the pending operations, the ordered not-yet-explored choices,
//! and the inherited *sleep set*. Re-running the scenario replays the
//! stack prefix, then diverges at the deepest frame with an untried
//! choice. Replay is sound because scenario bodies are deterministic and
//! object/allocation ids are assigned from per-run counters (identical
//! prefixes construct identical id sequences).
//!
//! # Partial-order reduction (sleep sets)
//!
//! After fully exploring choice `t` at a node, `t` joins the node's sleep
//! set; descendants drop sleeping threads whose pending op is *dependent*
//! on the op just scheduled (same object, not both reads). A node whose
//! enabled threads are all asleep is pruned: every continuation is a
//! reordering of independent steps already covered in a sibling subtree.
//! Sleep sets preserve all safety violations, so "0 violating schedules"
//! after a complete exploration is still an exhaustive claim.
//!
//! # What a violation is
//!
//! * an acquire of a freed snapshot (caught by the freed-address registry
//!   *before* the real code would touch the memory),
//! * any panic in a scenario thread (assertion failures, the
//!   graveyard-bound `debug_assert` in `Rcu`),
//! * a failed end-of-schedule invariant check,
//! * livelock (depth bound) or a deadlock of the scheduled threads.
//!
//! All carry the full counterexample schedule and the seed that orders
//! exploration, so any CI failure is reproducible from its log output.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread;

use sack_kernel::sync::Mutation;

use super::backend::{in_scenario_thread, set_ctx, ThreadCtx};

/// High bit namespacing heap allocation sequence numbers apart from
/// atomic/mutex object ids within one run.
const HEAP_OBJ: u64 = 1 << 63;

/// Classification of a pending shim operation, for enabledness and
/// DPOR independence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Atomic load.
    Read,
    /// Atomic store / swap / CAS / fetch-add.
    Write,
    /// Mutex acquisition — disabled while the mutex is held.
    Lock,
    /// Mutex release.
    Unlock,
    /// A reader is about to take a reference to a heap snapshot
    /// (`Backend::check_acquire`).
    Acquire,
    /// A writer is about to free a retired heap snapshot
    /// (`Backend::trace_free`).
    Free,
}

/// A pending operation announced at a yield point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDesc {
    /// Operation class.
    pub kind: OpKind,
    /// Object acted on: a per-run atomic/mutex id, or `HEAP_OBJ |
    /// allocation-sequence` for snapshot lifecycle events.
    pub obj: u64,
    /// Human-readable operation name for counterexample printing.
    pub label: &'static str,
}

impl OpDesc {
    fn is_read(&self) -> bool {
        matches!(self.kind, OpKind::Read | OpKind::Acquire)
    }

    /// Two operations commute iff they act on different objects or are
    /// both reads. Lock/unlock pairs share the mutex object id, so they
    /// are always dependent with each other — conservative and sound.
    fn independent(&self, other: &OpDesc) -> bool {
        self.obj != other.obj || (self.is_read() && other.is_read())
    }
}

/// One granted step of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Scenario thread id.
    pub thread: usize,
    /// The operation that was granted.
    pub op: OpDesc,
}

/// A scenario: a named family of identically-shaped runs over real
/// protocol code. `make` is called once per explored schedule and must be
/// deterministic — same construction order, same thread bodies.
pub struct Scenario {
    /// Scenario name (for reports and CLI output).
    pub name: &'static str,
    /// One display name per thread, in body order.
    pub threads: Vec<&'static str>,
    /// Builds fresh state and bodies for one execution.
    #[allow(clippy::type_complexity)]
    pub make: Box<dyn Fn() -> ScenarioRun + Send + Sync>,
}

/// The per-execution product of [`Scenario::make`].
pub struct ScenarioRun {
    /// One body per scenario thread.
    pub bodies: Vec<Box<dyn FnOnce() + Send>>,
    /// End-of-schedule invariant check, run after all bodies complete.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for ScenarioRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRun")
            .field("bodies", &self.bodies.len())
            .finish_non_exhaustive()
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Seed ordering the exploration (ties in choice order); logged in
    /// every violation so failures reproduce.
    pub seed: u64,
    /// Maximum schedule length before the run is flagged as a livelock.
    pub max_depth: usize,
    /// Bound on explored schedules (complete + pruned); exceeded ⇒ the
    /// exploration reports `complete = false`.
    pub max_schedules: usize,
    /// Planted bug for mutation testing (`None` = the shipped protocol).
    pub mutation: Option<Mutation>,
    /// Thread-id priority hint (e.g. an abstract-model counterexample):
    /// at frontier depth `d`, `hint[d]` is tried first when schedulable.
    pub hint: Vec<usize>,
}

impl SchedConfig {
    /// Exhaustive exploration of the unmutated protocol with the
    /// process-wide seed from [`sack_kernel::smp::sched_seed`].
    pub fn exhaustive() -> SchedConfig {
        SchedConfig {
            seed: sack_kernel::smp::sched_seed(),
            max_depth: 10_000,
            max_schedules: 1_000_000,
            mutation: None,
            hint: Vec::new(),
        }
    }

    /// Same exploration with one planted bug.
    pub fn with_mutation(m: Mutation) -> SchedConfig {
        SchedConfig {
            mutation: Some(m),
            ..SchedConfig::exhaustive()
        }
    }
}

/// Statistics from a completed (violation-free) exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedExploration {
    /// Complete schedules executed to the end and invariant-checked.
    pub schedules: usize,
    /// Sleep-set-blocked executions cut short (redundant interleavings).
    pub pruned: usize,
    /// Whether the schedule space was exhausted within `max_schedules`.
    pub complete: bool,
    /// Longest schedule seen, in shim operations.
    pub max_depth_seen: usize,
}

/// A violating schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct SchedViolation {
    /// Scenario name.
    pub scenario: &'static str,
    /// Thread display names.
    pub thread_names: Vec<&'static str>,
    /// What went wrong.
    pub message: String,
    /// The counterexample: every granted step, in order.
    pub schedule: Vec<Step>,
    /// The exploration seed that found it.
    pub seed: u64,
}

impl fmt::Display for SchedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "violation in scenario `{}`: {}",
            self.scenario, self.message
        )?;
        writeln!(
            f,
            "counterexample schedule ({} steps, seed {:#x}):",
            self.schedule.len(),
            self.seed
        )?;
        for (i, step) in self.schedule.iter().enumerate() {
            let name = self
                .thread_names
                .get(step.thread)
                .copied()
                .unwrap_or("thread");
            let obj = if step.op.obj & HEAP_OBJ != 0 {
                format!("snapshot#{}", step.op.obj & !HEAP_OBJ)
            } else {
                format!("obj#{}", step.op.obj)
            };
            writeln!(
                f,
                "  {i:3}: [{name}:{t}] {label} on {obj}",
                t = step.thread,
                label = step.op.label,
            )?;
        }
        Ok(())
    }
}

/// Panic payload used to unwind scenario threads when a run aborts
/// (violation found, or the continuation is sleep-set redundant). The
/// quiet panic hook suppresses its backtrace.
struct SchedAbort;

fn panic_abort() -> ! {
    panic::panic_any(SchedAbort)
}

/// Installs (once, process-wide) a panic hook that silences `SchedAbort`
/// unwinds and expected scenario-thread panics; everything else falls
/// through to the previous hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SchedAbort>().is_some() || in_scenario_thread() {
                return;
            }
            prev(info);
        }));
    });
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Running,
    Parked(OpDesc),
    Done,
}

struct CtrlState {
    phase: Vec<Phase>,
    grant: Option<usize>,
    abort: bool,
    violation: Option<String>,
    /// Mutex object ids currently held by a granted-but-not-yet-unlocked
    /// thread; Lock ops on them are disabled.
    held: HashSet<u64>,
    /// Allocation sequence numbers of freed snapshots.
    freed: HashSet<u64>,
    /// Live address → allocation sequence (re-allocation overwrites).
    addr_seq: HashMap<usize, u64>,
    next_seq: u64,
    next_obj: u64,
}

/// Shared coordination between scenario threads and the exploration
/// loop for one execution.
pub(super) struct Controller {
    state: Mutex<CtrlState>,
    thread_cv: Condvar,
    ctrl_cv: Condvar,
    mutation: Option<Mutation>,
}

impl Controller {
    fn new(threads: usize, mutation: Option<Mutation>) -> Controller {
        Controller {
            state: Mutex::new(CtrlState {
                phase: vec![Phase::Running; threads],
                grant: None,
                abort: false,
                violation: None,
                held: HashSet::new(),
                freed: HashSet::new(),
                addr_seq: HashMap::new(),
                next_seq: 0,
                next_obj: 0,
            }),
            thread_cv: Condvar::new(),
            ctrl_cv: Condvar::new(),
            mutation,
        }
    }

    pub(super) fn mutation(&self) -> Option<Mutation> {
        self.mutation
    }

    pub(super) fn fresh_obj(&self) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let id = st.next_obj;
        st.next_obj += 1;
        id
    }

    pub(super) fn trace_alloc(&self, addr: usize) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let seq = st.next_seq;
        st.next_seq += 1;
        st.addr_seq.insert(addr, seq);
    }

    /// Announce a pending op and wait to be granted the turn. Controller
    /// thread (`thread == None`) records nothing and never parks.
    pub(super) fn point(&self, thread: Option<usize>, kind: OpKind, obj: u64, label: &'static str) {
        let Some(t) = thread else { return };
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.abort {
            drop(st);
            panic_abort();
        }
        st.phase[t] = Phase::Parked(OpDesc { kind, obj, label });
        self.ctrl_cv.notify_one();
        while st.grant != Some(t) && !st.abort {
            st = self.thread_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.abort {
            drop(st);
            panic_abort();
        }
        st.grant = None;
        st.phase[t] = Phase::Running;
    }

    /// Free of a retired snapshot: a schedule point, then the freed-set
    /// update that arms [`Controller::point_acquire`]. All heap lifecycle
    /// events share one scheduling object (`HEAP_OBJ`): a free is never
    /// reordered past an acquire by the partial-order reduction, and the
    /// freed-set lookup happens at *execution* time, so a snapshot
    /// address legitimately reused by a newer allocation (the benign ABA
    /// case in the `Rcu` docs) is never a false positive.
    pub(super) fn point_free(&self, thread: Option<usize>, addr: usize) {
        self.point(thread, OpKind::Free, HEAP_OBJ, "snapshot.free");
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let seq = *st.addr_seq.get(&addr).unwrap_or(&u64::MAX);
        st.freed.insert(seq);
    }

    /// Reader about to take a reference: a schedule point, then the
    /// use-after-free check. Fires the violation *instead of* letting the
    /// real code touch freed memory.
    pub(super) fn point_acquire(&self, thread: Option<usize>, addr: usize) {
        self.point(thread, OpKind::Acquire, HEAP_OBJ, "snapshot.acquire");
        let freed_as = {
            let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let seq = *st.addr_seq.get(&addr).unwrap_or(&u64::MAX);
            st.freed.contains(&seq).then_some(seq)
        };
        if let Some(seq) = freed_as {
            self.fail(format!(
                "use-after-free: reader acquired snapshot#{seq} after a writer freed it"
            ));
        }
    }

    /// Records a violation, aborts every parked thread, and unwinds the
    /// caller.
    fn fail(&self, message: String) -> ! {
        {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.violation.is_none() {
                st.violation = Some(message);
            }
            st.abort = true;
            self.thread_cv.notify_all();
            self.ctrl_cv.notify_one();
        }
        panic_abort()
    }
}

/// One decision point on the DFS stack.
struct Frame {
    /// Pending ops of every parked thread at this node (replay sanity
    /// check + independence source for sleep-set filtering).
    pending: Vec<(usize, OpDesc)>,
    /// Choice order at this node: enabled threads not asleep, seeded
    /// order, hint first.
    options: Vec<usize>,
    /// Index into `options` of the branch currently being explored;
    /// `options[..chosen]` are fully explored (and asleep below).
    chosen: usize,
    /// Sleep set inherited from the parent.
    sleep: Vec<usize>,
}

impl Frame {
    fn op_of(&self, thread: usize) -> &OpDesc {
        &self
            .pending
            .iter()
            .find(|(t, _)| *t == thread)
            .expect("sleeping/chosen thread must be parked at this node")
            .1
    }

    /// The sleep set passed to the child of the currently chosen branch.
    fn child_sleep(&self) -> Vec<usize> {
        let chosen_op = self.op_of(self.options[self.chosen]);
        self.sleep
            .iter()
            .chain(self.options[..self.chosen].iter())
            .copied()
            .filter(|&u| self.op_of(u).independent(chosen_op))
            .collect()
    }
}

enum RunOutcome {
    Completed { trace: Vec<Step> },
    Pruned,
    Violated { message: String, trace: Vec<Step> },
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "scenario thread panicked".to_string()
    }
}

/// Runs one execution, replaying the stack prefix and extending the
/// frontier. Pushes new frames onto `stack` as decision points are met.
fn run_once(scenario: &Scenario, cfg: &SchedConfig, stack: &mut Vec<Frame>) -> RunOutcome {
    let threads = scenario.threads.len();
    let ctrl = Arc::new(Controller::new(threads, cfg.mutation));

    // Scenario setup runs on this thread with a recording-only context,
    // so snapshot allocations made during construction are tracked.
    set_ctx(Some(ThreadCtx {
        controller: Arc::clone(&ctrl),
        thread: None,
    }));
    let run = (scenario.make)();
    assert_eq!(
        run.bodies.len(),
        threads,
        "scenario `{}` built {} bodies for {} thread names",
        scenario.name,
        run.bodies.len(),
        threads
    );

    let handles: Vec<_> = run
        .bodies
        .into_iter()
        .enumerate()
        .map(|(t, body)| {
            let ctrl = Arc::clone(&ctrl);
            thread::Builder::new()
                .name(format!("sched-{}-{t}", scenario.name))
                .spawn(move || {
                    set_ctx(Some(ThreadCtx {
                        controller: Arc::clone(&ctrl),
                        thread: Some(t),
                    }));
                    let result = panic::catch_unwind(AssertUnwindSafe(body));
                    let mut st = ctrl.state.lock().unwrap_or_else(|p| p.into_inner());
                    st.phase[t] = Phase::Done;
                    if let Err(payload) = result {
                        if !payload.is::<SchedAbort>() {
                            if st.violation.is_none() {
                                st.violation = Some(panic_message(payload.as_ref()));
                            }
                            st.abort = true;
                            ctrl.thread_cv.notify_all();
                        }
                    }
                    ctrl.ctrl_cv.notify_one();
                    set_ctx(None);
                })
                .expect("spawn scenario thread")
        })
        .collect();

    let mut trace: Vec<Step> = Vec::new();
    let mut cur_sleep: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let outcome = loop {
        let mut st = ctrl.state.lock().unwrap_or_else(|p| p.into_inner());
        // Quiescence: no outstanding grant (the granted thread has woken
        // and re-parked or finished) and no thread still running.
        while !st.abort
            && (st.grant.is_some() || st.phase.iter().any(|ph| matches!(ph, Phase::Running)))
        {
            st = ctrl.ctrl_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.abort {
            let message = st
                .violation
                .clone()
                .unwrap_or_else(|| "aborted without a recorded violation".to_string());
            drop(st);
            break RunOutcome::Violated { message, trace };
        }
        let pending: Vec<(usize, OpDesc)> = st
            .phase
            .iter()
            .enumerate()
            .filter_map(|(t, ph)| match ph {
                Phase::Parked(op) => Some((t, op.clone())),
                _ => None,
            })
            .collect();
        if pending.is_empty() {
            drop(st);
            break RunOutcome::Completed { trace };
        }
        if depth >= cfg.max_depth {
            let message = format!(
                "schedule exceeded the {}-step depth bound (livelock in the protocol?)",
                cfg.max_depth
            );
            st.violation = Some(message.clone());
            st.abort = true;
            ctrl.thread_cv.notify_all();
            drop(st);
            break RunOutcome::Violated { message, trace };
        }
        let enabled: Vec<usize> = pending
            .iter()
            .filter(|(_, op)| op.kind != OpKind::Lock || !st.held.contains(&op.obj))
            .map(|(t, _)| *t)
            .collect();
        if enabled.is_empty() {
            let message = "deadlock: every parked thread waits on a held mutex".to_string();
            st.violation = Some(message.clone());
            st.abort = true;
            ctrl.thread_cv.notify_all();
            drop(st);
            break RunOutcome::Violated { message, trace };
        }

        let choice = if depth < stack.len() {
            let frame = &stack[depth];
            debug_assert_eq!(
                frame.pending, pending,
                "replay divergence at depth {depth} — scenario `{}` is nondeterministic",
                scenario.name
            );
            let t = frame.options[frame.chosen];
            cur_sleep = frame.child_sleep();
            t
        } else {
            let mut options: Vec<usize> = enabled
                .iter()
                .copied()
                .filter(|t| !cur_sleep.contains(t))
                .collect();
            if options.is_empty() {
                // Sleep-set blocked: every continuation from here is a
                // reordering of independent steps explored in a sibling.
                st.abort = true;
                ctrl.thread_cv.notify_all();
                drop(st);
                break RunOutcome::Pruned;
            }
            options.sort_by_key(|&t| {
                splitmix(cfg.seed ^ (depth as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t as u64)
            });
            if let Some(&preferred) = cfg.hint.get(depth) {
                if let Some(pos) = options.iter().position(|&t| t == preferred) {
                    let t = options.remove(pos);
                    options.insert(0, t);
                }
            }
            let frame = Frame {
                pending: pending.clone(),
                options,
                chosen: 0,
                sleep: std::mem::take(&mut cur_sleep),
            };
            let t = frame.options[0];
            cur_sleep = frame.child_sleep();
            stack.push(frame);
            t
        };

        let op = pending
            .iter()
            .find(|(t, _)| *t == choice)
            .expect("granted thread is parked")
            .1
            .clone();
        match op.kind {
            OpKind::Lock => {
                st.held.insert(op.obj);
            }
            OpKind::Unlock => {
                st.held.remove(&op.obj);
            }
            _ => {}
        }
        trace.push(Step { thread: choice, op });
        st.grant = Some(choice);
        ctrl.thread_cv.notify_all();
        depth += 1;
    };

    for handle in handles {
        let _ = handle.join();
    }

    let outcome = match outcome {
        RunOutcome::Completed { trace } => {
            // Bodies are done; the invariant check (and implicit teardown
            // of the scenario state it captured) runs uninstrumented but
            // with lifecycle recording still live.
            let checked = panic::catch_unwind(AssertUnwindSafe(run.check));
            let late = {
                let st = ctrl.state.lock().unwrap_or_else(|p| p.into_inner());
                st.violation.clone()
            };
            match checked {
                Ok(Ok(())) => match late {
                    None => RunOutcome::Completed { trace },
                    Some(message) => RunOutcome::Violated { message, trace },
                },
                Ok(Err(message)) => RunOutcome::Violated { message, trace },
                Err(payload) => {
                    let message = late.unwrap_or_else(|| panic_message(payload.as_ref()));
                    RunOutcome::Violated { message, trace }
                }
            }
        }
        other => {
            drop(run.check);
            other
        }
    };
    set_ctx(None);
    outcome
}

/// Explores the bounded schedule space of `scenario` under `cfg`.
///
/// Returns statistics if every explored schedule upholds the scenario's
/// invariants, or the first violating schedule found. `Ok` with
/// `complete == true` is the exhaustive claim: *no* schedule of the
/// scenario within the depth bound violates the invariants.
#[allow(clippy::missing_errors_doc)]
pub fn explore(scenario: &Scenario, cfg: &SchedConfig) -> Result<SchedExploration, SchedViolation> {
    install_quiet_hook();
    let mut stack: Vec<Frame> = Vec::new();
    let mut stats = SchedExploration {
        schedules: 0,
        pruned: 0,
        complete: true,
        max_depth_seen: 0,
    };
    loop {
        if stats.schedules + stats.pruned >= cfg.max_schedules {
            stats.complete = false;
            return Ok(stats);
        }
        match run_once(scenario, cfg, &mut stack) {
            RunOutcome::Violated { message, trace } => {
                return Err(SchedViolation {
                    scenario: scenario.name,
                    thread_names: scenario.threads.clone(),
                    message,
                    schedule: trace,
                    seed: cfg.seed,
                });
            }
            RunOutcome::Completed { trace } => {
                stats.schedules += 1;
                stats.max_depth_seen = stats.max_depth_seen.max(trace.len());
            }
            RunOutcome::Pruned => stats.pruned += 1,
        }
        // Backtrack to the deepest frame with an untried branch.
        loop {
            match stack.last_mut() {
                None => return Ok(stats),
                Some(frame) => {
                    frame.chosen += 1;
                    if frame.chosen < frame.options.len() {
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
}
