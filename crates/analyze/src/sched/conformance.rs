//! Model-conformance harness: abstract-model counterexamples replayed
//! through the real implementation.
//!
//! The exhaustive models in [`crate::models`] prove the protocols at the
//! level of hand-transcribed program counters, and their mutation tests
//! produce counterexample *schedules* — sequences of model thread ids.
//! This module closes the loop the transcription leaves open: for each
//! model mutation, it plants the corresponding bug in the **real** code
//! (via the shim's `Mutation` hooks or scenario glue), feeds the model's
//! counterexample schedule to the executor as its thread-priority hint,
//! and demands the executor find a violating schedule of the real
//! implementation too. The abstract models are thereby *validated by*
//! the implementation instead of standing in for it: a model that cried
//! wolf (a counterexample the real code cannot reproduce even with the
//! bug planted) fails conformance.
//!
//! Thread-id mapping: models and scenarios share the convention that
//! readers come first and the writer is last, so a model schedule maps
//! onto a scenario by clamping the writer id and dropping reader ids the
//! scenario does not have (see [`map_hint`]).

use sack_kernel::sync::Mutation;

use crate::interleave;
use crate::models::{
    CacheConfig, CacheModel, PerCpuCacheConfig, PerCpuCacheModel, RcuConfig, RcuModel,
};

use super::executor::{explore, Scenario, SchedConfig, SchedViolation};
use super::scenarios;

/// Outcome of one model-to-implementation replay.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Which abstract model produced the counterexample.
    pub model: &'static str,
    /// The model's violating schedule (model thread ids).
    pub model_schedule: Vec<usize>,
    /// The model's violation message.
    pub model_message: String,
    /// The violating schedule the executor found in the real code with
    /// the same bug planted, hinted by the model schedule.
    pub real_violation: SchedViolation,
}

/// Maps a model schedule onto a scenario's thread-id space: model
/// readers `0..model_readers` keep their id if the scenario has that many
/// readers (ids beyond are dropped), the model writer (`model_readers`)
/// becomes the scenario's last thread.
fn map_hint(schedule: &[usize], model_readers: usize, scenario_threads: usize) -> Vec<usize> {
    let scenario_writer = scenario_threads - 1;
    schedule
        .iter()
        .filter_map(|&t| {
            if t >= model_readers {
                Some(scenario_writer)
            } else if t < scenario_writer {
                Some(t)
            } else {
                None
            }
        })
        .collect()
}

/// Runs one replay: obtain the model counterexample, hint the executor
/// with it, and require a real-code violation.
fn replay<M: interleave::Model>(
    name: &'static str,
    model: M,
    model_readers: usize,
    scenario: &Scenario,
    mutation: Option<Mutation>,
) -> Result<ConformanceReport, String> {
    let model_violation = interleave::explore(&model, 64)
        .err()
        .ok_or_else(|| format!("{name}: the mutated abstract model no longer violates"))?;
    let mut cfg = SchedConfig::exhaustive();
    cfg.mutation = mutation;
    cfg.hint = map_hint(
        &model_violation.schedule,
        model_readers,
        scenario.threads.len(),
    );
    match explore(scenario, &cfg) {
        Err(real_violation) => Ok(ConformanceReport {
            model: name,
            model_schedule: model_violation.schedule,
            model_message: model_violation.message,
            real_violation,
        }),
        Ok(stats) => Err(format!(
            "{name}: model predicts a bug but the real implementation survived \
             {} schedules (complete = {}) with the same mutation planted — \
             the abstract model has drifted from the code",
            stats.schedules, stats.complete
        )),
    }
}

/// Replays the `RcuModel` skip-validation counterexample through the real
/// `Rcu::read` with `Mutation::RcuSkipValidation` planted.
#[allow(clippy::missing_errors_doc)]
pub fn rcu_skip_validation() -> Result<ConformanceReport, String> {
    let config = RcuConfig {
        skip_validation: true,
        ..RcuConfig::correct(1, 1)
    };
    replay(
        "RcuModel/skip_validation",
        RcuModel::new(config),
        1,
        &scenarios::rcu_read_write(1),
        Some(Mutation::RcuSkipValidation),
    )
}

/// Replays the `RcuModel` skip-hazard-scan counterexample through the
/// real writer path with `Mutation::RcuFreeBeforeScan` planted.
#[allow(clippy::missing_errors_doc)]
pub fn rcu_free_before_scan() -> Result<ConformanceReport, String> {
    let config = RcuConfig {
        skip_hazard_scan: true,
        ..RcuConfig::correct(1, 1)
    };
    replay(
        "RcuModel/skip_hazard_scan",
        RcuModel::new(config),
        1,
        &scenarios::rcu_read_write(1),
        Some(Mutation::RcuFreeBeforeScan),
    )
}

/// Replays the `CacheModel` skip-verifier counterexample through the real
/// `DecisionCacheIn::lookup` with `Mutation::CacheSkipVerifier` planted.
#[allow(clippy::missing_errors_doc)]
pub fn cache_skip_verifier() -> Result<ConformanceReport, String> {
    let config = CacheConfig {
        skip_verifier: true,
        ..CacheConfig::correct(2)
    };
    replay(
        "CacheModel/skip_verifier",
        CacheModel::new(config),
        2,
        &scenarios::cache_torn_pair(),
        Some(Mutation::CacheSkipVerifier),
    )
}

/// Replays the `PerCpuCacheModel` skip-one-instance counterexample
/// through real `PerCpuCacheIn` instances under the flush-walk glue
/// (the bug is in the walk, so it is planted by scenario construction,
/// not a shim mutation).
#[allow(clippy::missing_errors_doc)]
pub fn percpu_skip_one_instance() -> Result<ConformanceReport, String> {
    let config = PerCpuCacheConfig {
        skip_one_instance: true,
        ..PerCpuCacheConfig::correct(2, 3)
    };
    replay(
        "PerCpuCacheModel/skip_one_instance",
        PerCpuCacheModel::new(config),
        3,
        &scenarios::percpu_invalidate_walk(true),
        None,
    )
}

/// Runs every model-to-implementation replay. Returns the reports, or
/// the first conformance failure.
#[allow(clippy::missing_errors_doc)]
pub fn run_all() -> Result<Vec<ConformanceReport>, String> {
    Ok(vec![
        rcu_skip_validation()?,
        rcu_free_before_scan()?,
        cache_skip_verifier()?,
        percpu_skip_one_instance()?,
    ])
}
