//! [`SchedBackend`]: the executor-controlled instance of the
//! `sack_kernel::sync::shim::Backend` seam.
//!
//! Every atomic load/store/CAS, every mutex lock/unlock, and every
//! pointer-lifecycle event performed by the **real** `Rcu`/decision-cache
//! code becomes a *yield point*: the calling thread announces the pending
//! operation to the run's [`Controller`] and parks until the deterministic
//! scheduler grants it the turn. Between grants exactly one thread runs,
//! so the executor serialises the scenario into one of the bounded
//! interleavings it is enumerating — the operations themselves still
//! execute on plain `std::sync` primitives underneath (the serialisation
//! makes the underlying memory orderings irrelevant; the executor checks
//! the protocol logic under sequential consistency, and the
//! ThreadSanitizer lane in `scripts/check.sh --sanitize` covers the
//! weak-memory side).
//!
//! The association between a thread and its controller is a thread-local
//! set by the executor when it spawns scenario threads (and on the
//! controller thread itself during scenario setup and final checks, with
//! no thread id, so setup operations record lifecycle events without
//! being scheduled). Code running with no context at all — e.g. unit
//! tests of other modules that happen to touch a `SchedBackend` type —
//! degrades to uninstrumented passthrough.

use std::cell::RefCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use sack_kernel::sync::shim::{RawAtomicPtr, RawAtomicU64, RawAtomicUsize, RawMutex};
use sack_kernel::sync::{Backend, Mutation};

use super::executor::{Controller, OpKind};

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Per-thread executor association: which controller schedules this
/// thread, and the thread's scenario id (`None` on the controller thread,
/// whose shim operations are recorded but never parked).
#[derive(Clone)]
pub(super) struct ThreadCtx {
    pub(super) controller: Arc<Controller>,
    pub(super) thread: Option<usize>,
}

pub(super) fn set_ctx(ctx: Option<ThreadCtx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

fn with_ctx<R>(f: impl FnOnce(Option<&ThreadCtx>) -> R) -> R {
    CTX.with(|c| f(c.borrow().as_ref()))
}

/// True when the calling thread is a scenario thread under executor
/// control — used by the quiet panic hook to suppress backtraces for
/// panics the executor catches and converts into violations.
pub(super) fn in_scenario_thread() -> bool {
    with_ctx(|ctx| ctx.is_some_and(|c| c.thread.is_some()))
}

/// Announces `op` on object `obj` and waits for the scheduler's grant.
/// No-op without a context; record-only (no parking) on the controller
/// thread.
fn point(kind: OpKind, obj: u64, label: &'static str) {
    // During unwinding (a `SchedAbort` or a scenario-body panic) drops
    // still run shim operations — e.g. a hazard `ReadGuard` releasing its
    // slot. Scheduling them would panic inside the unwind (a process
    // abort); the run is being abandoned, so pass through instead.
    if std::thread::panicking() {
        return;
    }
    with_ctx(|ctx| {
        if let Some(ctx) = ctx {
            ctx.controller.point(ctx.thread, kind, obj, label);
        }
    });
}

/// Object-id allocation. Under a controller the id comes from the run's
/// own counter, so a replayed execution assigns identical ids to the
/// objects constructed in identical order — the property that lets DFS
/// frames recorded in one execution steer independence decisions in the
/// next. Outside any run the id only needs to be unique.
fn fresh_obj() -> u64 {
    with_ctx(|ctx| match ctx {
        Some(ctx) => ctx.controller.fresh_obj(),
        None => {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            // High-bit namespace so uninstrumented objects can never
            // collide with per-run ids.
            (1 << 62) | NEXT.fetch_add(1, Ordering::Relaxed)
        }
    })
}

/// The deterministic-schedule backend. See the module docs; production
/// code never names this type — it reaches the same protocol code through
/// the `StdBackend` default parameter.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedBackend;

impl Backend for SchedBackend {
    type AtomicUsize = SchedAtomicUsize;
    type AtomicU64 = SchedAtomicU64;
    type AtomicPtr<T> = SchedAtomicPtr<T>;
    type Mutex<T: Send> = SchedMutex<T>;

    /// Scenario thread id (assigned at spawn), so hazard-slot and
    /// per-CPU-instance selection are deterministic per thread. The
    /// controller thread and uninstrumented callers map to 0.
    fn thread_index() -> usize {
        with_ctx(|ctx| ctx.and_then(|c| c.thread).unwrap_or(0))
    }

    fn mutation(m: Mutation) -> bool {
        with_ctx(|ctx| ctx.is_some_and(|c| c.controller.mutation() == Some(m)))
    }

    fn trace_alloc(addr: usize) {
        with_ctx(|ctx| {
            if let Some(ctx) = ctx {
                ctx.controller.trace_alloc(addr);
            }
        });
    }

    fn trace_free(addr: usize) {
        if std::thread::panicking() {
            return;
        }
        with_ctx(|ctx| {
            if let Some(ctx) = ctx {
                ctx.controller.point_free(ctx.thread, addr);
            }
        });
    }

    fn check_acquire(addr: usize) {
        if std::thread::panicking() {
            return;
        }
        with_ctx(|ctx| {
            if let Some(ctx) = ctx {
                ctx.controller.point_acquire(ctx.thread, addr);
            }
        });
    }
}

/// Executor-instrumented `AtomicUsize`.
#[derive(Debug)]
pub struct SchedAtomicUsize {
    obj: u64,
    inner: AtomicUsize,
}

impl RawAtomicUsize for SchedAtomicUsize {
    fn new(v: usize) -> Self {
        SchedAtomicUsize {
            obj: fresh_obj(),
            inner: AtomicUsize::new(v),
        }
    }
    fn load(&self, order: Ordering) -> usize {
        point(OpKind::Read, self.obj, "AtomicUsize.load");
        self.inner.load(order)
    }
    fn store(&self, v: usize, order: Ordering) {
        point(OpKind::Write, self.obj, "AtomicUsize.store");
        self.inner.store(v, order);
    }
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        point(OpKind::Write, self.obj, "AtomicUsize.fetch_add");
        self.inner.fetch_add(v, order)
    }
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        // As for `AtomicPtr.compare_exchange`: the announcement precedes
        // the outcome, so classify conservatively as a write.
        point(OpKind::Write, self.obj, "AtomicUsize.compare_exchange");
        self.inner.compare_exchange(current, new, success, failure)
    }
}

/// Executor-instrumented `AtomicU64`.
#[derive(Debug)]
pub struct SchedAtomicU64 {
    obj: u64,
    inner: AtomicU64,
}

impl RawAtomicU64 for SchedAtomicU64 {
    fn new(v: u64) -> Self {
        SchedAtomicU64 {
            obj: fresh_obj(),
            inner: AtomicU64::new(v),
        }
    }
    fn load(&self, order: Ordering) -> u64 {
        point(OpKind::Read, self.obj, "AtomicU64.load");
        self.inner.load(order)
    }
    fn store(&self, v: u64, order: Ordering) {
        point(OpKind::Write, self.obj, "AtomicU64.store");
        self.inner.store(v, order);
    }
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        point(OpKind::Write, self.obj, "AtomicU64.fetch_add");
        self.inner.fetch_add(v, order)
    }
}

/// Executor-instrumented `AtomicPtr<T>`.
#[derive(Debug)]
pub struct SchedAtomicPtr<T> {
    obj: u64,
    inner: AtomicPtr<T>,
}

impl<T> RawAtomicPtr<T> for SchedAtomicPtr<T> {
    fn new(p: *mut T) -> Self {
        SchedAtomicPtr {
            obj: fresh_obj(),
            inner: AtomicPtr::new(p),
        }
    }
    fn load(&self, order: Ordering) -> *mut T {
        point(OpKind::Read, self.obj, "AtomicPtr.load");
        self.inner.load(order)
    }
    fn store(&self, p: *mut T, order: Ordering) {
        point(OpKind::Write, self.obj, "AtomicPtr.store");
        self.inner.store(p, order);
    }
    fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        point(OpKind::Write, self.obj, "AtomicPtr.swap");
        self.inner.swap(p, order)
    }
    fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        // A failed CAS is a pure load, but the announcement happens before
        // the outcome is known — classify as a write (conservative for
        // DPOR independence, never unsound).
        point(OpKind::Write, self.obj, "AtomicPtr.compare_exchange");
        self.inner.compare_exchange(current, new, success, failure)
    }
}

/// Executor-instrumented mutex. Lock is a *blocking* schedule point: the
/// controller never grants it while another thread holds the mutex, so
/// the inner `std::sync::Mutex` acquisition below is always uncontended.
#[derive(Debug)]
pub struct SchedMutex<T> {
    obj: u64,
    inner: Mutex<T>,
}

impl<T: Send> RawMutex<T> for SchedMutex<T> {
    fn new(value: T) -> Self {
        SchedMutex {
            obj: fresh_obj(),
            inner: Mutex::new(value),
        }
    }
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        point(OpKind::Lock, self.obj, "Mutex.lock");
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let out = f(&mut guard);
        // Announce the unlock while still holding the guard: the release
        // becomes visible to the scheduler (re-enabling blocked Lock ops)
        // only when this point is granted.
        point(OpKind::Unlock, self.obj, "Mutex.unlock");
        drop(guard);
        out
    }
    fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}
