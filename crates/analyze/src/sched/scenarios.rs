//! Executor scenarios over the **shipped** protocol implementations.
//!
//! Each scenario instantiates the real generic types —
//! `sack_kernel::sync::Rcu`, `sack_core::DecisionCacheIn`,
//! `sack_core::PerCpuCacheIn` — with [`SchedBackend`], so every statement
//! the production hot path executes is the statement explored here; only
//! the primitives underneath are swapped for scheduler-controlled ones.
//! Thread 0..n-1 are readers/hooks and the last thread is the writer, the
//! same convention as the abstract models in `crate::models` (which lets
//! model counterexamples act as schedule hints, see `super::conformance`).
//!
//! The invariants asserted are the ones the abstract models prove:
//!
//! * [`rcu_read_write`] — no freed snapshot acquired (structural, via the
//!   executor's freed registry), snapshots linearizable, graveyard
//!   bounded by the hazard-slot count.
//! * [`cache_epoch_bump`] — no stale verdict after an epoch bump on the
//!   real per-CPU decision cache (invalidation-by-key, the shipped
//!   design).
//! * [`profile_publish`] — profile-table snapshots are never torn, and
//!   the publish-before-bump ordering means a reader that observed the
//!   bumped epoch can never read the old table.
//! * [`cache_torn_pair`] — a racing evicting insert can only ever produce
//!   a miss, never a wrong verdict (the payload-verifier contract; the
//!   `CacheSkipVerifier` mutation breaks exactly this).
//! * [`percpu_invalidate_walk`] — the *alternative* flush-walk
//!   invalidation design, built from the same real cache instances, whose
//!   skip-one-instance bug the `PerCpuCacheModel` predicts; the executor
//!   confirms the prediction against real cache code.
//! * [`ring_produce_drain`] — the real MPSC submission ring
//!   (`sack_kernel::ring::RingIn`, the event plane's ingestion structure):
//!   two producers race the tail CAS against a draining consumer; no
//!   frame may be lost or duplicated (the `RingTornPublish` mutation
//!   plants the lost-claim publish the `RingModel` predicts).
//! * [`lazy_first_touch`] — the real `LazySlot` compile-or-reuse
//!   protocol behind lazy profile compilation: two hooks race the
//!   first-touch build; at most one builder may run, losers must fall
//!   back (`None`) rather than block, and every published value is the
//!   built one (the `LazyDoublePublish` mutation plants the
//!   claim-skipping double publish, caught as a structural
//!   use-after-free).

use std::sync::{Arc, Mutex};

use sack_core::{
    current_cpu_in, CachedOutcome, DecisionCacheIn, DecisionKey, PerCpuCacheIn, CPU_INSTANCES,
};
use sack_kernel::ring::RingIn;
use sack_kernel::sync::shim::{RawAtomicU64, RawAtomicUsize};
use sack_kernel::sync::{Backend, LazySlot, Rcu};

use super::backend::SchedBackend;
use super::executor::{Scenario, ScenarioRun};

/// Hazard-slot count used by executor Rcu instances: small enough that a
/// 2-thread scenario's schedule space is exhaustively explorable, while
/// running the identical protocol code as the 64-slot production default.
pub const SCHED_SLOTS: usize = 2;

type SRcu<T> = Rcu<T, SchedBackend, SCHED_SLOTS>;
type SAtomicU64 = <SchedBackend as Backend>::AtomicU64;
type SAtomicUsize = <SchedBackend as Backend>::AtomicUsize;

fn poison_tolerant<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A decision key whose only varying inputs are the epoch and the path —
/// everything a scenario needs to model "same access, different epoch".
fn key(epoch: u64, path: &str) -> DecisionKey<'_> {
    DecisionKey {
        epoch,
        confinement_gen: 0,
        state: 0,
        uid: 1000,
        mac_override: false,
        exe: None,
        path,
        perms: 1,
    }
}

/// `readers` threads each take one `Rcu::read` snapshot while one writer
/// publishes a new value — the `file_open` hook racing a policy reload.
///
/// Invariants: every snapshot is the initial or the published value, the
/// publish is never lost, the graveyard stays within the hazard-slot
/// bound, and (structurally) no reader acquires a freed snapshot. The
/// `RcuSkipValidation` and `RcuFreeBeforeScan` mutations are caught here.
pub fn rcu_read_write(readers: usize) -> Scenario {
    let mut threads = vec!["reader"; readers];
    threads.push("writer");
    Scenario {
        name: "rcu-read-vs-write",
        threads,
        make: Box::new(move || {
            let cell = Arc::new(SRcu::new_in(0u64));
            let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..readers {
                let cell = Arc::clone(&cell);
                let seen = Arc::clone(&seen);
                bodies.push(Box::new(move || {
                    let snap = *cell.read();
                    poison_tolerant(&seen).push(snap);
                }));
            }
            {
                let cell = Arc::clone(&cell);
                bodies.push(Box::new(move || {
                    cell.store(1);
                }));
            }
            let check = Box::new(move || {
                for &v in poison_tolerant(&seen).iter() {
                    if v != 0 && v != 1 {
                        return Err(format!("reader saw value {v}, never published"));
                    }
                }
                if *cell.read() != 1 {
                    return Err("publish lost: final snapshot is not the stored value".into());
                }
                if cell.retired_count() > SCHED_SLOTS {
                    return Err(format!(
                        "graveyard bound violated: {} retired > {} hazard slots",
                        cell.retired_count(),
                        SCHED_SLOTS
                    ));
                }
                Ok(())
            });
            ScenarioRun { bodies, check }
        }),
    }
}

/// State shared by the epoch-bump scenarios: the real per-CPU cache, a
/// policy word (0 ⇒ allow, 1 ⇒ deny) and the policy epoch, both shim
/// atomics exactly like `Sack`'s `policy_epoch`.
struct EpochState {
    cache: PerCpuCacheIn<SchedBackend>,
    policy: SAtomicU64,
    epoch: SAtomicU64,
}

fn verdict_for(policy: u64) -> CachedOutcome {
    if policy == 0 {
        CachedOutcome::Allow
    } else {
        CachedOutcome::Deny
    }
}

/// `hooks` hook threads run one cached access check each (lookup → slow
/// path → insert, the real `DecisionCacheIn` code) against their own
/// per-CPU instance, while a reloader publishes a new policy and bumps
/// the epoch — publish first, bump second, the ordering `Sack::reload`
/// documents.
///
/// Invariant: a hook that observed the bumped epoch must produce the new
/// policy's verdict — stale entries die because the epoch is part of
/// every key, with no flush walk. Exhaustive passing is the "no stale
/// verdict after epoch bump" proof on the shipped cache.
pub fn cache_epoch_bump(hooks: usize) -> Scenario {
    assert!(hooks < CPU_INSTANCES, "hooks map 1:1 onto cache instances");
    let mut threads = vec!["hook"; hooks];
    threads.push("reloader");
    Scenario {
        name: "cache-epoch-bump",
        threads,
        make: Box::new(move || {
            let st = Arc::new(EpochState {
                cache: PerCpuCacheIn::new(),
                policy: RawAtomicU64::new(0),
                epoch: RawAtomicU64::new(0),
            });
            // Pre-bump warm state: every hook's instance already caches
            // the epoch-0 grant, as if traffic ran before the reload.
            for h in 0..hooks {
                st.cache
                    .instance(h)
                    .insert(&key(0, "/dev/car/door0"), CachedOutcome::Allow);
            }
            let seen: Arc<Mutex<Vec<(u64, CachedOutcome)>>> = Arc::new(Mutex::new(Vec::new()));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..hooks {
                let st = Arc::clone(&st);
                let seen = Arc::clone(&seen);
                bodies.push(Box::new(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    let e = st.epoch.load(SeqCst);
                    let k = key(e, "/dev/car/door0");
                    let out = match st.cache.lookup(&k) {
                        Some(hit) => hit,
                        None => {
                            let computed = verdict_for(st.policy.load(SeqCst));
                            st.cache.insert(&k, computed);
                            computed
                        }
                    };
                    poison_tolerant(&seen).push((e, out));
                }));
            }
            {
                let st = Arc::clone(&st);
                bodies.push(Box::new(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    st.policy.store(1, SeqCst);
                    st.epoch.fetch_add(1, SeqCst);
                }));
            }
            let check = Box::new(move || {
                for &(e, out) in poison_tolerant(&seen).iter() {
                    if e >= 1 && out != CachedOutcome::Deny {
                        return Err(format!(
                            "stale verdict after epoch bump: hook saw epoch {e} but returned {out:?}"
                        ));
                    }
                }
                Ok(())
            });
            ScenarioRun { bodies, check }
        }),
    }
}

/// A profile table stand-in with redundant internals, so a torn snapshot
/// is detectable: a consistent table always has `checksum == 2 * revision`.
struct PublishedTable {
    revision: u64,
    checksum: u64,
}

/// The AppArmor profile-table publish path: the writer builds a complete
/// replacement table, publishes it through `Rcu::store` (the single
/// atomic swap `ProfileStore::replace_all` relies on), then bumps the
/// policy epoch. The reader loads the epoch first, then reads the table —
/// the hook-side order.
///
/// Invariants: no torn table is ever observable (both halves of the
/// snapshot are consistent), and a reader that saw the bumped epoch reads
/// the *new* table (publish-happens-before-bump through the real `Rcu`).
pub fn profile_publish() -> Scenario {
    Scenario {
        name: "profile-table-publish",
        threads: vec!["reader", "writer"],
        make: Box::new(|| {
            let table = Arc::new(SRcu::new_in(PublishedTable {
                revision: 1,
                checksum: 2,
            }));
            let epoch: Arc<SAtomicUsize> = Arc::new(RawAtomicUsize::new(1));
            let seen: Arc<Mutex<Vec<(usize, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let reader = {
                let table = Arc::clone(&table);
                let epoch = Arc::clone(&epoch);
                let seen = Arc::clone(&seen);
                Box::new(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    let e = epoch.load(SeqCst);
                    let snap = table.read();
                    poison_tolerant(&seen).push((e, snap.revision, snap.checksum));
                }) as Box<dyn FnOnce() + Send>
            };
            let writer = {
                let table = Arc::clone(&table);
                let epoch = Arc::clone(&epoch);
                Box::new(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    table.store(PublishedTable {
                        revision: 2,
                        checksum: 4,
                    });
                    epoch.fetch_add(1, SeqCst);
                }) as Box<dyn FnOnce() + Send>
            };
            let check = Box::new(move || {
                for &(e, rev, sum) in poison_tolerant(&seen).iter() {
                    if sum != 2 * rev {
                        return Err(format!(
                            "torn profile-table read: revision {rev} with checksum {sum}"
                        ));
                    }
                    if e as u64 > rev {
                        return Err(format!(
                            "reader saw epoch {e} but revision-{rev} table: \
                             publish-before-bump ordering violated"
                        ));
                    }
                }
                Ok(())
            });
            ScenarioRun {
                bodies: vec![reader, writer],
                check,
            }
        }),
    }
}

/// Keys staged so a racing insert *evicts* the entry a concurrent lookup
/// is reading: the victim way of `evictor` (given a full home group) is
/// exactly the slot holding `target`.
struct TornPlan {
    target: String,
    fillers: Vec<String>,
    evictor: String,
}

/// Searches key space for a [`TornPlan`] and verifies it behaviourally on
/// a scratch production-backend cache: after inserting target + fillers,
/// inserting the evictor must evict exactly the target. Deterministic
/// (no randomness), so every execution stages the identical collision.
fn torn_plan() -> TornPlan {
    let hashes = |path: &str| key(0, path).hashes();
    let slots = sack_core::cache::DECISION_CACHE_SLOTS;
    let target = "/torn/target".to_string();
    let (target_tag, _) = hashes(&target);
    let home = (target_tag as usize) & (slots - 1);
    // The 4-way group is reached from any member by XOR-ing way bits.
    let group: Vec<usize> = (0..4).map(|w| home ^ w).collect();

    let mut fillers: Vec<String> = Vec::new();
    let mut needed: Vec<usize> = group.iter().copied().filter(|&s| s != home).collect();
    let mut evictor = None;
    for i in 0.. {
        let cand = format!("/torn/k{i}");
        let (tag, verifier) = hashes(&cand);
        let cand_home = (tag as usize) & (slots - 1);
        if let Some(pos) = needed.iter().position(|&s| s == cand_home) {
            needed.remove(pos);
            fillers.push(cand);
            continue;
        }
        if evictor.is_none()
            && group.contains(&cand_home)
            && tag != target_tag
            && cand_home ^ ((verifier >> 32) as usize & 0b11) == home
        {
            evictor = Some(cand);
        }
        if needed.is_empty() && evictor.is_some() {
            break;
        }
        assert!(i < 1_000_000, "torn-pair key search did not converge");
    }
    let plan = TornPlan {
        target,
        fillers,
        evictor: evictor.expect("search loop only exits with an evictor"),
    };

    // Behavioural proof on the real (uninstrumented) cache: the staged
    // insert sequence must evict exactly the target. This pins the
    // victim-selection coupling — if `DecisionCacheIn::insert` changes
    // its eviction policy, this assertion fails loudly instead of the
    // scenario silently exploring a collision-free (vacuous) race.
    let scratch: DecisionCacheIn = DecisionCacheIn::new();
    scratch.insert(&key(0, &plan.target), CachedOutcome::Allow);
    for f in &plan.fillers {
        scratch.insert(&key(0, f), CachedOutcome::Allow);
    }
    scratch.insert(&key(0, &plan.evictor), CachedOutcome::Deny);
    assert_eq!(
        scratch.lookup(&key(0, &plan.target)),
        None,
        "staged evictor failed to evict the target entry"
    );
    assert_eq!(
        scratch.lookup(&key(0, &plan.evictor)),
        Some(CachedOutcome::Deny),
        "staged evictor did not land in the planned slot"
    );
    plan
}

/// One lookup races one evicting insert on the same real
/// `DecisionCacheIn` slot (same 4-way group, different keys, overwrite
/// staged by [`torn_plan`]).
///
/// Invariant: the lookup returns its own key's verdict or a miss — never
/// the racing key's verdict. The tag+verifier dual-hash makes the torn
/// tag/payload window harmless; the `CacheSkipVerifier` mutation removes
/// the verifier check and the executor finds the schedule where the
/// lookup replays the evictor's verdict.
pub fn cache_torn_pair() -> Scenario {
    let plan = Arc::new(torn_plan());
    Scenario {
        name: "cache-torn-pair",
        threads: vec!["reader", "writer"],
        make: Box::new(move || {
            let cache: Arc<DecisionCacheIn<SchedBackend>> = Arc::new(DecisionCacheIn::new());
            // Stage: target + group fillers, inserted before the race.
            cache.insert(&key(0, &plan.target), CachedOutcome::Allow);
            for f in &plan.fillers {
                cache.insert(&key(0, f), CachedOutcome::Allow);
            }
            let seen: Arc<Mutex<Option<Option<CachedOutcome>>>> = Arc::new(Mutex::new(None));
            let reader = {
                let cache = Arc::clone(&cache);
                let plan = Arc::clone(&plan);
                let seen = Arc::clone(&seen);
                Box::new(move || {
                    let got = cache.lookup(&key(0, &plan.target));
                    *poison_tolerant(&seen) = Some(got);
                }) as Box<dyn FnOnce() + Send>
            };
            let writer = {
                let cache = Arc::clone(&cache);
                let plan = Arc::clone(&plan);
                Box::new(move || {
                    cache.insert(&key(0, &plan.evictor), CachedOutcome::Deny);
                }) as Box<dyn FnOnce() + Send>
            };
            let check = Box::new(move || match *poison_tolerant(&seen) {
                Some(Some(CachedOutcome::Allow)) | Some(None) => Ok(()),
                Some(Some(other)) => Err(format!(
                    "lookup under eviction returned {other:?} — the racing key's \
                         verdict replayed for the wrong key"
                )),
                None => Err("reader never recorded a result".into()),
            });
            ScenarioRun {
                bodies: vec![reader, writer],
                check,
            }
        }),
    }
}

/// Two producers enqueue one frame each into the real 2-slot
/// [`RingIn`] while a consumer runs bounded `try_dequeue` probes — the
/// event plane's submit-vs-drain race at full contention (both producers
/// fight over the same tail position).
///
/// Invariants: the controller drains the residue after the schedule and
/// the union of consumer-drained and residue frames must be exactly the
/// multiset {10, 20} — no lost, no duplicated frame, nothing dropped
/// (capacity equals the frame count). The `RingTornPublish` mutation
/// makes a producer that lost the tail CAS publish anyway, and the
/// executor finds the schedule where one frame overwrites the other.
pub fn ring_produce_drain() -> Scenario {
    Scenario {
        name: "ring-produce-vs-drain",
        threads: vec!["producer", "producer", "consumer"],
        make: Box::new(|| {
            let ring: Arc<RingIn<u64, SchedBackend>> = Arc::new(RingIn::new_in(2));
            let drained: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for value in [10u64, 20] {
                let ring = Arc::clone(&ring);
                bodies.push(Box::new(move || {
                    // Two frames into two slots: the ring can never be
                    // full, so a single try_enqueue must succeed (its
                    // internal CAS loop retries lost races).
                    ring.try_enqueue(value)
                        .unwrap_or_else(|_| panic!("2-slot ring full with 2 producers"));
                }));
            }
            {
                let ring = Arc::clone(&ring);
                let drained = Arc::clone(&drained);
                bodies.push(Box::new(move || {
                    // Bounded probes: drain what is visible, tolerate
                    // running before the producers.
                    for _ in 0..2 {
                        if let Some(v) = ring.try_dequeue() {
                            poison_tolerant(&drained).push(v);
                        }
                    }
                }));
            }
            let check = Box::new(move || {
                let mut frames = poison_tolerant(&drained).clone();
                while let Some(v) = ring.try_dequeue() {
                    frames.push(v);
                }
                frames.sort_unstable();
                if frames != [10, 20] {
                    return Err(format!(
                        "ring lost or duplicated frames: drained + residue = {frames:?}, \
                         expected [10, 20]"
                    ));
                }
                if ring.dropped() != 0 {
                    return Err(format!(
                        "{} frames dropped with the ring never full",
                        ring.dropped()
                    ));
                }
                Ok(())
            });
            ScenarioRun { bodies, check }
        }),
    }
}

/// Two hook threads race the first touch of one uncompiled profile body:
/// both call the real `LazySlot::get_or_build` (the exact code
/// `SharedDfa::force` runs under a hook), with the builder counted.
///
/// Invariants: the claim CAS admits exactly one builder in every
/// schedule; a loser returns `None` (the caller's scan fallback) or the
/// winner's value — never a second build, never a torn value; and after
/// the race the slot holds the built value. The `LazyDoublePublish`
/// mutation skips the claim and publishes by pointer swap, freeing the
/// loser's allocation while the other thread may still hold it — the
/// executor finds that schedule as a structural use-after-free (or a
/// double build, whichever the schedule exposes first).
pub fn lazy_first_touch() -> Scenario {
    Scenario {
        name: "lazy-first-touch-compile",
        threads: vec!["hook", "hook"],
        make: Box::new(|| {
            let slot: Arc<LazySlot<u64, SchedBackend>> = Arc::new(LazySlot::empty());
            let builds = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let seen: Arc<Mutex<Vec<Option<u64>>>> = Arc::new(Mutex::new(Vec::new()));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let slot = Arc::clone(&slot);
                let builds = Arc::clone(&builds);
                let seen = Arc::clone(&seen);
                bodies.push(Box::new(move || {
                    let got = slot
                        .get_or_build(|| {
                            builds.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            42
                        })
                        .copied();
                    poison_tolerant(&seen).push(got);
                }));
            }
            let check = Box::new(move || {
                let builds = builds.load(std::sync::atomic::Ordering::SeqCst);
                if builds != 1 {
                    return Err(format!(
                        "first-touch compile ran {builds} times, must be exactly once"
                    ));
                }
                for got in poison_tolerant(&seen).iter() {
                    match got {
                        None | Some(42) => {}
                        Some(v) => {
                            return Err(format!("hook observed value {v}, never built by anyone"))
                        }
                    }
                }
                match slot.get() {
                    Some(&42) => Ok(()),
                    other => Err(format!(
                        "slot does not retain the built value after the race: {other:?}"
                    )),
                }
            });
            ScenarioRun { bodies, check }
        }),
    }
}

/// The flush-walk invalidation design the shipped cache deliberately does
/// NOT use, rebuilt from real `PerCpuCacheIn` instances: per-instance
/// epoch floors that an invalidator must walk and bump one by one.
///
/// With `skip_instance_zero = false` the walk is complete and the design
/// holds up. With `true` it plants the `PerCpuCacheModel`
/// skip-one-instance bug: instance 0's floor stays stale, and a hook on
/// CPU 0 that starts *after the walk completed* still replays the
/// pre-invalidation grant — the executor finds that schedule against real
/// cache code, confirming the model's counterexample (and the reason the
/// shipped design carries the epoch in every key instead).
pub fn percpu_invalidate_walk(skip_instance_zero: bool) -> Scenario {
    Scenario {
        name: if skip_instance_zero {
            "percpu-invalidate-walk-skip-one"
        } else {
            "percpu-invalidate-walk"
        },
        threads: vec!["hook", "invalidator"],
        make: Box::new(move || {
            let st = Arc::new(EpochState {
                cache: PerCpuCacheIn::new(),
                policy: RawAtomicU64::new(0),
                epoch: RawAtomicU64::new(0), // repurposed as "walk done"
            });
            let floors: Arc<Vec<SAtomicU64>> =
                Arc::new((0..2).map(|_| RawAtomicU64::new(0)).collect());
            // Hook thread id 0 ⇒ cache instance 0; warm its pre-reload
            // grant.
            st.cache
                .instance(0)
                .insert(&key(0, "/dev/car/door0"), CachedOutcome::Allow);
            let seen: Arc<Mutex<Vec<(u64, CachedOutcome)>>> = Arc::new(Mutex::new(Vec::new()));
            let hook = {
                let st = Arc::clone(&st);
                let floors = Arc::clone(&floors);
                let seen = Arc::clone(&seen);
                Box::new(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    let walk_done = st.epoch.load(SeqCst);
                    let my = current_cpu_in::<SchedBackend>();
                    let floor = floors[my].load(SeqCst);
                    let k = key(floor, "/dev/car/door0");
                    let out = match st.cache.lookup(&k) {
                        Some(hit) => hit,
                        None => {
                            let computed = verdict_for(st.policy.load(SeqCst));
                            st.cache.insert(&k, computed);
                            computed
                        }
                    };
                    poison_tolerant(&seen).push((walk_done, out));
                }) as Box<dyn FnOnce() + Send>
            };
            let invalidator = {
                let st = Arc::clone(&st);
                let floors = Arc::clone(&floors);
                Box::new(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    st.policy.store(1, SeqCst);
                    if !skip_instance_zero {
                        floors[0].store(1, SeqCst);
                    }
                    floors[1].store(1, SeqCst);
                    st.epoch.store(1, SeqCst); // walk complete
                }) as Box<dyn FnOnce() + Send>
            };
            let check = Box::new(move || {
                for &(walk_done, out) in poison_tolerant(&seen).iter() {
                    if walk_done == 1 && out != CachedOutcome::Deny {
                        return Err(format!(
                            "stale verdict after completed invalidate walk: hook started \
                             after the walk finished but returned {out:?}"
                        ));
                    }
                }
                Ok(())
            });
            ScenarioRun {
                bodies: vec![hook, invalidator],
                check,
            }
        }),
    }
}
