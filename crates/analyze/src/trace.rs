//! `sack-analyze trace` — offline reader for sack-trace flight dumps.
//!
//! The securityfs node `/sys/kernel/security/SACK/tracing/flight` renders
//! the flight recorder as plain text:
//!
//! ```text
//! # flight capacity=256 total=9 dropped=0
//! seq=3 producer=0 pseq=2 ssm_transition from=normal to=emergency event=crash
//! seq=4 producer=0 pseq=3 rcu_epoch_bump epoch=1
//! seq=5 producer=0 pseq=4 cache_invalidate epoch=1
//! seq=8 producer=1 pseq=0 hook_exit hook=file_open verdict=deny ns=412
//! ```
//!
//! This module parses that text back into structure ([`parse_flight`]),
//! lints it for the anomalies an operator actually chases
//! ([`lint_flight`]: transition storms, backpressure storms,
//! per-producer sequence gaps, ring overflow; [`lint_metrics`]: cache
//! hit-rate collapse), and
//! renders an annotated replay ([`render_report`]) that pairs every
//! denial with the situation transition that preceded it.
//!
//! [`self_check`] closes the loop end to end: it boots an in-memory
//! stacked SACK + AppArmor kernel, enables tracing through the
//! securityfs `tracing/enable` node, drives every tracepoint, and then
//! verifies — *through this module's own parser* — that the flight dump
//! replays an injected denial behind its situation transition and that
//! the `tracing/metrics` node is valid Prometheus exposition text
//! ([`validate_prometheus`]). `check.sh` runs it as
//! `sack-analyze trace --self-check`.

use std::collections::BTreeMap;
use std::fmt;

use sack_kernel::trace::Tracepoint;

pub use sack_core::IssueSeverity;

/// One parsed flight-recorder record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global ring sequence number (total order of admission).
    pub seq: u64,
    /// Producer (emitting thread) id.
    pub producer: u64,
    /// Per-producer sequence number; gaps inside the retained window
    /// mean records were lost between this producer and the ring.
    pub pseq: u64,
    /// The event name (`hook_exit`, `ssm_transition`, ...).
    pub event: String,
    /// The event's `key=value` payload fields, in emission order.
    pub fields: Vec<(String, String)>,
}

impl FlightRecord {
    /// Looks up a payload field by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for FlightRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq={} producer={} pseq={} {}",
            self.seq, self.producer, self.pseq, self.event
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// A parsed flight dump: the ring header plus the retained records in
/// admission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Ring capacity (slots).
    pub capacity: u64,
    /// Records ever admitted, including those since overwritten.
    pub total: u64,
    /// Records lost to overwrite before they could be read.
    pub dropped: u64,
    /// Retained records, sorted by global `seq`.
    pub records: Vec<FlightRecord>,
}

/// One finding from [`lint_flight`] / [`lint_metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// `Error` findings exit the CLI non-zero; warnings are advisory.
    pub severity: IssueSeverity,
    /// Stable kebab-case id (`transition-storm`, `pseq-gap`, ...).
    pub check: String,
    /// Human-readable description.
    pub message: String,
}

impl Anomaly {
    fn new(severity: IssueSeverity, check: &str, message: String) -> Anomaly {
        Anomaly {
            severity,
            check: check.to_string(),
            message,
        }
    }
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.check, self.message)
    }
}

fn parse_kv(token: &str) -> Option<(&str, &str)> {
    let (k, v) = token.split_once('=')?;
    if k.is_empty() || v.is_empty() {
        None
    } else {
        Some((k, v))
    }
}

fn parse_u64(line_no: usize, key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("line {line_no}: `{key}` is not a number: `{value}`"))
}

/// Parses the text of the `tracing/flight` securityfs node.
///
/// # Errors
///
/// A message naming the first malformed line: missing or misordered
/// header, non-numeric sequence fields, or an event name that is not a
/// known tracepoint.
pub fn parse_flight(text: &str) -> Result<FlightDump, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());

    let (header_no, header) = lines.next().ok_or("empty flight dump")?;
    let rest = header
        .strip_prefix("# flight ")
        .ok_or_else(|| format!("line {header_no}: expected `# flight ...` header"))?;
    let mut capacity = None;
    let mut total = None;
    let mut dropped = None;
    for token in rest.split_whitespace() {
        let (k, v) = parse_kv(token)
            .ok_or_else(|| format!("line {header_no}: bad header token `{token}`"))?;
        let n = parse_u64(header_no, k, v)?;
        match k {
            "capacity" => capacity = Some(n),
            "total" => total = Some(n),
            "dropped" => dropped = Some(n),
            other => return Err(format!("line {header_no}: unknown header key `{other}`")),
        }
    }
    let (capacity, total, dropped) = match (capacity, total, dropped) {
        (Some(c), Some(t), Some(d)) => (c, t, d),
        _ => {
            return Err(format!(
                "line {header_no}: header missing capacity/total/dropped"
            ))
        }
    };

    let mut records = Vec::new();
    for (line_no, line) in lines {
        let mut tokens = line.split_whitespace();
        let mut take_u64 = |key: &str| -> Result<u64, String> {
            let token = tokens
                .next()
                .ok_or_else(|| format!("line {line_no}: truncated record"))?;
            match parse_kv(token) {
                Some((k, v)) if k == key => parse_u64(line_no, key, v),
                _ => Err(format!(
                    "line {line_no}: expected `{key}=<n>`, got `{token}`"
                )),
            }
        };
        let seq = take_u64("seq")?;
        let producer = take_u64("producer")?;
        let pseq = take_u64("pseq")?;
        let event = tokens
            .next()
            .ok_or_else(|| format!("line {line_no}: record has no event name"))?
            .to_string();
        if !Tracepoint::ALL.iter().any(|p| p.name() == event) {
            return Err(format!("line {line_no}: unknown tracepoint `{event}`"));
        }
        let fields = tokens
            .map(|token| {
                parse_kv(token)
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .ok_or_else(|| format!("line {line_no}: bad field `{token}`"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        records.push(FlightRecord {
            seq,
            producer,
            pseq,
            event,
            fields,
        });
    }
    records.sort_by_key(|r| r.seq);
    Ok(FlightDump {
        capacity,
        total,
        dropped,
        records,
    })
}

/// A run of `ssm_transition` records this long, uninterrupted by any
/// hook activity, is flagged as a storm: the SSM is flapping faster
/// than the system does useful work under any of the states.
const STORM_RUN: usize = 6;

/// This many consecutive `sds_backpressure` records with a strictly
/// climbing `dropped_total` counter are flagged as a storm: the event
/// plane is continuously shedding frames, not absorbing a one-off burst.
const BACKPRESSURE_STORM_RUN: usize = 3;

/// Lints a parsed flight dump for the anomalies worth paging over.
///
/// * `ring-overflow` (warning) — `dropped > 0`: history was lost before
///   it could be read.
/// * `seq-gap` (warning) — the retained window skips a global sequence
///   number: the snapshot raced an in-flight producer.
/// * `pseq-gap` (error) — one producer's per-producer counter jumps
///   inside the retained window: records from that producer were lost
///   *after* admission, which the ring promises never happens.
/// * `transition-storm` (error) — a long unbroken run of
///   `ssm_transition` records, including the flip-flop signature of a
///   flapping sensor (`a→b`, `b→a`, repeated).
/// * `backpressure-storm` (error) — [`BACKPRESSURE_STORM_RUN`] or more
///   consecutive `sds_backpressure` records whose `dropped_total`
///   strictly grows: the submission ring is shedding sensor frames
///   faster than the drain recovers. `Block`-policy records carry a
///   constant counter and never storm.
pub fn lint_flight(dump: &FlightDump) -> Vec<Anomaly> {
    let mut anomalies = Vec::new();

    if dump.dropped > 0 {
        anomalies.push(Anomaly::new(
            IssueSeverity::Warning,
            "ring-overflow",
            format!(
                "flight ring dropped {} of {} records before they were read; \
                 raise the capacity ({}) or drain the node more often",
                dump.dropped, dump.total, dump.capacity
            ),
        ));
    }

    // Global seq continuity across the retained window. The ring admits
    // seqs densely, so a hole means the snapshot caught a slot mid-write.
    for pair in dump.records.windows(2) {
        if pair[1].seq > pair[0].seq + 1 {
            anomalies.push(Anomaly::new(
                IssueSeverity::Warning,
                "seq-gap",
                format!(
                    "retained window skips seq {}..{} — snapshot raced an \
                     in-flight producer",
                    pair[0].seq + 1,
                    pair[1].seq
                ),
            ));
        }
    }

    // Per-producer continuity. Eviction only trims the *oldest* records,
    // so whatever survives of one producer must be a gap-free suffix of
    // its pseq sequence.
    let mut by_producer: BTreeMap<u64, Vec<&FlightRecord>> = BTreeMap::new();
    for record in &dump.records {
        by_producer.entry(record.producer).or_default().push(record);
    }
    for (producer, records) in &by_producer {
        for pair in records.windows(2) {
            if pair[1].pseq != pair[0].pseq + 1 {
                anomalies.push(Anomaly::new(
                    IssueSeverity::Error,
                    "pseq-gap",
                    format!(
                        "producer {producer} jumps pseq {}→{} inside the retained \
                         window ({} record(s) lost after admission)",
                        pair[0].pseq,
                        pair[1].pseq,
                        pair[1].pseq - pair[0].pseq - 1
                    ),
                ));
            }
        }
    }

    // Transition storms: a long consecutive run of ssm_transition
    // records with no interleaved hook traffic.
    let mut run: Vec<&FlightRecord> = Vec::new();
    let flag_run = |run: &[&FlightRecord], anomalies: &mut Vec<Anomaly>| {
        if run.len() < STORM_RUN {
            return;
        }
        let flip_flops = run
            .windows(2)
            .filter(|pair| {
                pair[0].field("from") == pair[1].field("to")
                    && pair[0].field("to") == pair[1].field("from")
            })
            .count();
        let detail = if flip_flops * 2 >= run.len() {
            " — flip-flop signature, likely a flapping sensor"
        } else {
            ""
        };
        anomalies.push(Anomaly::new(
            IssueSeverity::Error,
            "transition-storm",
            format!(
                "{} consecutive ssm_transition records (seq {}..={}) with no \
                 other activity{detail}",
                run.len(),
                run[0].seq,
                run[run.len() - 1].seq
            ),
        ));
    };
    for record in &dump.records {
        if record.event == "ssm_transition" {
            run.push(record);
        } else if record.event == "hook_enter" || record.event == "hook_exit" {
            flag_run(&run, &mut anomalies);
            run.clear();
        }
        // Bumps/invalidates ride along with every transition; they
        // neither extend nor break a storm run.
    }
    flag_run(&run, &mut anomalies);

    // Backpressure storms: successive sds_backpressure records whose drop
    // counter keeps climbing mean the drop-oldest plane is shedding frames
    // sustainedly. A lone record (one burst) or a constant counter (Block
    // policy: waits, never drops) is healthy.
    let drops: Vec<(&FlightRecord, u64)> = dump
        .records
        .iter()
        .filter(|r| r.event == "sds_backpressure")
        .filter_map(|r| {
            let total = r.field("dropped_total")?.parse::<u64>().ok()?;
            Some((r, total))
        })
        .collect();
    let mut run_start = 0;
    for i in 1..=drops.len() {
        if i < drops.len() && drops[i].1 > drops[i - 1].1 {
            continue;
        }
        let run = &drops[run_start..i];
        if run.len() >= BACKPRESSURE_STORM_RUN {
            let (first, first_total) = run[0];
            let (last, last_total) = run[run.len() - 1];
            anomalies.push(Anomaly::new(
                IssueSeverity::Error,
                "backpressure-storm",
                format!(
                    "{} consecutive sds_backpressure records (seq {}..={}) with \
                     the drop counter climbing {first_total}→{last_total} — \
                     producers are sustainedly outrunning the drain",
                    run.len(),
                    first.seq,
                    last.seq
                ),
            ));
        }
        run_start = i;
    }

    anomalies
}

/// Minimum lookups before the hit-rate lint has enough signal to fire.
const HIT_RATE_MIN_LOOKUPS: u64 = 100;

/// Lints the `tracing/metrics_json` node text for a decision-cache
/// hit-rate collapse: with at least [`HIT_RATE_MIN_LOOKUPS`] lookups, a
/// hit rate below 50% means invalidation churn is defeating the cache.
///
/// The scan is deliberately schema-light — it only extracts the
/// `cache_hit` / `cache_miss` tracepoint counters — so it keeps working
/// as the node grows fields.
pub fn lint_metrics(metrics_json: &str) -> Vec<Anomaly> {
    let counter = |key: &str| -> Option<u64> {
        let idx = metrics_json.find(&format!("\"{key}\":"))?;
        let digits: String = metrics_json[idx + key.len() + 3..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    };
    let (Some(hits), Some(misses)) = (counter("cache_hit"), counter("cache_miss")) else {
        return vec![Anomaly::new(
            IssueSeverity::Warning,
            "metrics-unreadable",
            "metrics JSON lacks cache_hit/cache_miss tracepoint counters".to_string(),
        )];
    };
    let lookups = hits + misses;
    if lookups >= HIT_RATE_MIN_LOOKUPS && hits * 2 < lookups {
        return vec![Anomaly::new(
            IssueSeverity::Error,
            "hit-rate-collapse",
            format!(
                "decision-cache hit rate collapsed to {:.1}% over {lookups} \
                 lookups ({hits} hits / {misses} misses) — epoch churn is \
                 invalidating faster than tasks can re-warm",
                100.0 * hits as f64 / lookups as f64
            ),
        )];
    }
    Vec::new()
}

/// Renders a parsed dump plus its lint findings as the `trace`
/// subcommand's report: ring summary, the replay with every denial
/// annotated with the situation transition that preceded it, then the
/// anomaly list.
pub fn render_report(dump: &FlightDump, anomalies: &[Anomaly]) -> String {
    let mut out = format!(
        "flight: capacity={} total={} retained={} dropped={}\n",
        dump.capacity,
        dump.total,
        dump.records.len(),
        dump.dropped
    );
    let mut last_transition: Option<&FlightRecord> = None;
    for record in &dump.records {
        out.push_str(&format!("  {record}\n"));
        if record.event == "ssm_transition" {
            last_transition = Some(record);
        }
        let denied = record.event == "hook_exit" && record.field("verdict") == Some("deny");
        if denied {
            match last_transition {
                Some(t) => out.push_str(&format!(
                    "    ^ denial in situation `{}` (entered at seq={} on event `{}`)\n",
                    t.field("to").unwrap_or("?"),
                    t.seq,
                    t.field("event").unwrap_or("?"),
                )),
                None => out
                    .push_str("    ^ denial with no situation transition in the retained window\n"),
            }
        }
    }
    if anomalies.is_empty() {
        out.push_str("no anomalies\n");
    } else {
        out.push_str(&format!("{} anomal(ies):\n", anomalies.len()));
        for anomaly in anomalies {
            out.push_str(&format!("  {anomaly}\n"));
        }
    }
    out
}

/// Validates Prometheus text-exposition format as an external consumer
/// would: every sample line must parse as `name{labels} value`, label
/// values must be quoted, every sample must belong to a family declared
/// by a preceding `# TYPE` line (histogram samples may use the
/// `_bucket` / `_sum` / `_count` suffixes, counters `_total`), every
/// declared family must also carry a `# HELP` line with the same name,
/// and values must be finite numbers.
///
/// Returns the number of sample lines on success.
///
/// # Errors
///
/// A message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut families: Vec<String> = Vec::new();
    let mut helps: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut tokens = comment.split_whitespace();
            match tokens.next() {
                Some("HELP") => match tokens.next() {
                    Some(name) => helps.push(name.to_string()),
                    None => {
                        return Err(format!("line {line_no}: HELP without a metric name"));
                    }
                },
                Some("TYPE") => {
                    let name = tokens
                        .next()
                        .ok_or_else(|| format!("line {line_no}: TYPE without a metric name"))?;
                    match tokens.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        other => {
                            return Err(format!("line {line_no}: bad TYPE kind {other:?}"));
                        }
                    }
                    families.push(name.to_string());
                }
                _ => return Err(format!("line {line_no}: comment is neither HELP nor TYPE")),
            }
            continue;
        }

        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {line_no}: sample has no value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {line_no}: bad sample value `{value}`"))?;
        if !value.is_finite() {
            return Err(format!("line {line_no}: non-finite sample value"));
        }
        let name = match series.split_once('{') {
            None => series,
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
                for label in labels.split(',').filter(|l| !l.is_empty()) {
                    let (key, val) = label
                        .split_once('=')
                        .ok_or_else(|| format!("line {line_no}: bad label `{label}`"))?;
                    if key.is_empty()
                        || !val.starts_with('"')
                        || !val.ends_with('"')
                        || val.len() < 2
                    {
                        return Err(format!(
                            "line {line_no}: label `{label}` must be key=\"value\""
                        ));
                    }
                }
                name
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!(
                "line {line_no}: bad metric name `{name}` in `{line}`"
            ));
        }
        let declared = families.iter().any(|family| {
            name == family
                || ["_bucket", "_sum", "_count", "_total"]
                    .iter()
                    .any(|suffix| name.strip_suffix(suffix) == Some(family.as_str()))
        });
        if !declared {
            return Err(format!(
                "line {line_no}: sample `{name}` has no preceding # TYPE declaration"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no sample lines".to_string());
    }
    for family in &families {
        if !helps.iter().any(|h| h == family) {
            return Err(format!("family `{family}` has # TYPE but no # HELP"));
        }
    }
    Ok(samples)
}

/// End-to-end self check: boots an in-memory stacked SACK + AppArmor
/// kernel, enables tracing through the securityfs `tracing/enable`
/// node, drives every tracepoint at least once, and verifies through
/// this module's own parser that the flight dump replays an injected
/// denial behind its situation transition, that no lint fires on a
/// healthy trace, and that `tracing/metrics` is valid Prometheus text.
///
/// Returns a short human-readable report of what was proven.
///
/// # Errors
///
/// A message naming the first check that failed.
pub fn self_check() -> Result<String, String> {
    use std::sync::Arc;

    use sack_apparmor::{AppArmor, PolicyDb};
    use sack_core::Sack;
    use sack_kernel::cred::Credentials;
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::SecurityModule;
    use sack_kernel::{KPath, Mode};

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { P; }
        state_per { emergency: P; }
        per_rules { P: allow subject=* /dev/car/** wi; }
    "#;
    const PROFILES: &str = r#"
        profile media_app /usr/bin/media_app flags=(enforce) {
          /usr/lib/** rm,
          deny /dev/car/** rwi,
        }
    "#;

    let fail = |what: &str, detail: String| format!("self-check: {what}: {detail}");

    let sack = Sack::independent(POLICY).map_err(|e| fail("policy load", e.to_string()))?;
    let db = Arc::new(PolicyDb::new());
    let apparmor = AppArmor::new(Arc::clone(&db));
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)
        .map_err(|e| fail("attach", e.to_string()))?;
    // Oracle after attach so the trace hub propagates into the AppArmor
    // policy database; the profile load below must emit profile_recompile.
    sack.set_profile_oracle(Arc::clone(&apparmor));

    let admin = kernel.spawn(Credentials::root());
    let node = |name: &str| format!("/sys/kernel/security/SACK/{name}");

    // Enable tracing through the securityfs node, not the API.
    let fd = admin
        .open(&node("tracing/enable"), OpenFlags::write_only())
        .map_err(|e| fail("open tracing/enable", e.to_string()))?;
    admin
        .write(fd, b"1\n")
        .map_err(|e| fail("write tracing/enable", e.to_string()))?;
    admin.close(fd).ok();

    db.load_text(PROFILES)
        .map_err(|e| fail("profile load", e.to_string()))?;
    sack.reload_policy(POLICY)
        .map_err(|e| fail("policy reload", e.to_string()))?;

    kernel
        .vfs()
        .mkdir_all(&KPath::new("/dev/car").map_err(|e| fail("path", e.to_string()))?)
        .map_err(|e| fail("mkdir", e.to_string()))?;
    kernel
        .vfs()
        .create_file(
            &KPath::new("/dev/car/door0").map_err(|e| fail("path", e.to_string()))?,
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .map_err(|e| fail("create", e.to_string()))?;

    // The situation history the flight must replay: crash into
    // emergency, where writes to the door are allowed — repeating the
    // same check warms the decision cache (one miss, then hits) — then
    // rescue back to normal, where the same write is denied.
    let app = kernel.spawn(Credentials::user(1000, 1000));
    sack.deliver_event("crash", std::time::Duration::ZERO)
        .map_err(|e| fail("crash event", e.to_string()))?;
    for _ in 0..3 {
        let fd = app
            .open("/dev/car/door0", OpenFlags::write_only())
            .map_err(|e| fail("warm write in emergency", e.to_string()))?;
        app.close(fd).ok();
    }
    sack.deliver_event("rescue_done", std::time::Duration::ZERO)
        .map_err(|e| fail("rescue event", e.to_string()))?;
    if app.open("/dev/car/door0", OpenFlags::write_only()).is_ok() {
        return Err(fail(
            "denial injection",
            "write to /dev/car/door0 was allowed in `normal`".to_string(),
        ));
    }

    // Drive the sds event plane: a coalesced batch through the securityfs
    // ring node fires sds_enqueue / sds_drain / sds_coalesce; a
    // deliberately tiny drop-oldest plane overrun fires sds_backpressure
    // exactly once — one burst, not a storm, so the healthy-trace lint
    // below must stay clean.
    let fd = admin
        .open(&node("sds/ring"), OpenFlags::write_only())
        .map_err(|e| fail("open sds/ring", e.to_string()))?;
    admin
        .write(fd, b"crash\nrescue_done\n")
        .map_err(|e| fail("write sds/ring", e.to_string()))?;
    admin.close(fd).ok();
    {
        use sack_core::{BackpressurePolicy, EventPlane};
        let tiny = EventPlane::new(&sack, 2, BackpressurePolicy::DropOldest);
        for sensor in 0..3u16 {
            tiny.submit_name("crash", sensor, 0)
                .map_err(|e| fail("tiny plane submit", e.to_string()))?;
        }
        if tiny.dropped() != 1 {
            return Err(fail(
                "backpressure injection",
                format!("expected exactly 1 dropped frame, got {}", tiny.dropped()),
            ));
        }
    }

    // The flight dump — read through securityfs, parsed by this module —
    // must replay the denial behind its situation transition, cleanly.
    let read_node = |name: &str| -> Result<String, String> {
        let bytes = admin
            .read_to_vec(&node(name))
            .map_err(|e| fail(&format!("read {name}"), e.to_string()))?;
        String::from_utf8(bytes).map_err(|e| fail(&format!("decode {name}"), e.to_string()))
    };
    let dump = parse_flight(&read_node("tracing/flight")?).map_err(|e| fail("flight parse", e))?;
    let rescue = dump
        .records
        .iter()
        .find(|r| r.event == "ssm_transition" && r.field("event") == Some("rescue_done"))
        .ok_or_else(|| {
            fail(
                "flight replay",
                "rescue_done transition not retained".into(),
            )
        })?;
    let denial = dump
        .records
        .iter()
        .find(|r| r.event == "hook_exit" && r.field("verdict") == Some("deny"))
        .ok_or_else(|| fail("flight replay", "denied hook_exit not retained".into()))?;
    if denial.seq <= rescue.seq {
        return Err(fail(
            "flight replay",
            format!(
                "denial (seq={}) not ordered after its transition (seq={})",
                denial.seq, rescue.seq
            ),
        ));
    }
    let audit = dump
        .records
        .iter()
        .find(|r| r.event == "audit_emit")
        .ok_or_else(|| fail("flight replay", "audit_emit not retained".into()))?;
    if audit.seq <= rescue.seq {
        return Err(fail(
            "flight replay",
            "audit_emit precedes the transition".into(),
        ));
    }
    let findings = lint_flight(&dump);
    if let Some(anomaly) = findings.first() {
        return Err(fail("healthy-trace lint", anomaly.to_string()));
    }

    let samples = validate_prometheus(&read_node("tracing/metrics")?)
        .map_err(|e| fail("prometheus validation", e))?;

    // Fleet rollout coverage: stage this kernel through a one-cohort
    // fleet so the five `fleet_rollout_*` tracepoints fire on its own
    // hub — a promote run on clean telemetry, then a rollback run
    // tripped by a denial spike of exactly the kind the flight already
    // replayed. Runs after the flight checks so the extra control-plane
    // records cannot evict the replayed transition from the ring.
    {
        use sack_fleet::{FleetAggregator, RolloutConfig, RolloutDriver, RolloutStatus};
        let agg = FleetAggregator::new();
        agg.register(&kernel, &sack, "vehicles");
        let cohorts = vec!["vehicles".to_string()];
        let mut promote = RolloutDriver::new(
            Arc::clone(&agg),
            cohorts.clone(),
            POLICY,
            POLICY,
            RolloutConfig {
                soak_ticks: 1,
                ..RolloutConfig::default()
            },
        );
        for _ in 0..8 {
            if promote.finished() {
                break;
            }
            promote.step();
        }
        if promote.status() != RolloutStatus::Promoted {
            return Err(fail(
                "fleet promote",
                format!("expected promotion, got {}", promote.status()),
            ));
        }
        let mut rollback = RolloutDriver::new(
            Arc::clone(&agg),
            cohorts,
            POLICY,
            POLICY,
            RolloutConfig {
                soak_ticks: 4,
                ..RolloutConfig::default()
            },
        );
        rollback.step(); // primes the baseline and pushes the candidate
        for _ in 0..32 {
            // Door writes in `normal` are denied: a synthetic canary spike.
            let _ = app.open("/dev/car/door0", OpenFlags::write_only());
        }
        rollback.step();
        match rollback.status() {
            RolloutStatus::RolledBack { .. } => {}
            other => {
                return Err(fail(
                    "fleet rollback",
                    format!("expected rollback on the denial spike, got {other}"),
                ));
            }
        }
    }

    // Every tracepoint must have fired at least once.
    let hub = kernel.trace();
    for point in Tracepoint::ALL {
        if hub.fired(point) == 0 {
            return Err(fail("tracepoint coverage", format!("{point} never fired")));
        }
    }

    Ok(format!(
        "self-check passed: {} tracepoints fired, flight replayed the denial \
         (seq={}) behind transition `{}→{}` (seq={}), {} retained record(s) \
         lint clean, metrics node valid ({samples} Prometheus samples)\n",
        Tracepoint::ALL.len(),
        denial.seq,
        rescue.field("from").unwrap_or("?"),
        rescue.field("to").unwrap_or("?"),
        rescue.seq,
        dump.records.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_core::trace::FlightRecorder;
    use sack_kernel::trace::{TraceEvent, TraceHook, TraceVerdict};

    #[test]
    fn parse_round_trips_a_real_recorder_render() {
        let ring = FlightRecorder::new(8);
        ring.record(TraceEvent::SsmTransition {
            from: "normal".into(),
            to: "emergency".into(),
            event: "crash".into(),
        });
        ring.record(TraceEvent::RcuEpochBump { epoch: 1 });
        ring.record(TraceEvent::CacheInvalidate { epoch: 1 });
        ring.record(TraceEvent::HookExit {
            hook: TraceHook::FileOpen,
            verdict: TraceVerdict::Deny,
            latency_ns: 412,
        });
        let dump = parse_flight(&ring.render()).unwrap();
        assert_eq!(dump.capacity, 8);
        assert_eq!(dump.total, 4);
        assert_eq!(dump.dropped, 0);
        assert_eq!(dump.records.len(), 4);
        assert_eq!(dump.records[0].event, "ssm_transition");
        assert_eq!(dump.records[0].field("event"), Some("crash"));
        assert_eq!(dump.records[3].field("verdict"), Some("deny"));
        assert_eq!(dump.records[3].field("ns"), Some("412"));
        assert!(
            lint_flight(&dump).is_empty(),
            "healthy dump must lint clean"
        );
    }

    #[test]
    fn parse_rejects_malformed_dumps() {
        assert!(parse_flight("").is_err());
        assert!(parse_flight("seq=0 producer=0 pseq=0 cache_hit\n").is_err());
        let header = "# flight capacity=4 total=1 dropped=0\n";
        assert!(parse_flight(&format!("{header}seq=0 pseq=0 cache_hit\n")).is_err());
        assert!(parse_flight(&format!("{header}seq=0 producer=0 pseq=0 warp_drive\n")).is_err());
        assert!(parse_flight(&format!("{header}seq=x producer=0 pseq=0 cache_hit\n")).is_err());
    }

    fn record(
        seq: u64,
        producer: u64,
        pseq: u64,
        event: &str,
        fields: &[(&str, &str)],
    ) -> FlightRecord {
        FlightRecord {
            seq,
            producer,
            pseq,
            event: event.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn dump_of(records: Vec<FlightRecord>) -> FlightDump {
        FlightDump {
            capacity: 64,
            total: records.len() as u64,
            dropped: 0,
            records,
        }
    }

    #[test]
    fn lint_flags_overflow_and_pseq_gap() {
        let mut dump = dump_of(vec![
            record(0, 0, 0, "cache_hit", &[]),
            record(1, 0, 3, "cache_hit", &[]),
        ]);
        dump.dropped = 5;
        let anomalies = lint_flight(&dump);
        assert!(anomalies.iter().any(|a| a.check == "ring-overflow"));
        let gap = anomalies.iter().find(|a| a.check == "pseq-gap").unwrap();
        assert_eq!(gap.severity, IssueSeverity::Error);
        assert!(gap.message.contains("0→3"), "{gap}");
    }

    #[test]
    fn lint_flags_a_transition_storm_with_flip_flop_signature() {
        let mut records = Vec::new();
        for i in 0..8u64 {
            let (from, to) = if i % 2 == 0 {
                ("normal", "emergency")
            } else {
                ("emergency", "normal")
            };
            records.push(record(
                i,
                0,
                i,
                "ssm_transition",
                &[("from", from), ("to", to), ("event", "flap")],
            ));
        }
        let anomalies = lint_flight(&dump_of(records));
        let storm = anomalies
            .iter()
            .find(|a| a.check == "transition-storm")
            .unwrap();
        assert!(storm.message.contains("flip-flop"), "{storm}");
    }

    #[test]
    fn lint_accepts_transitions_interleaved_with_hook_traffic() {
        let mut records = Vec::new();
        for i in 0..12u64 {
            let event = if i % 2 == 0 {
                "ssm_transition"
            } else {
                "hook_exit"
            };
            let fields: &[(&str, &str)] = if i % 2 == 0 {
                &[("from", "a"), ("to", "b"), ("event", "e")]
            } else {
                &[("hook", "file_open"), ("verdict", "allow"), ("ns", "10")]
            };
            records.push(record(i, 0, i, event, fields));
        }
        assert!(lint_flight(&dump_of(records)).is_empty());
    }

    #[test]
    fn lint_flags_a_backpressure_storm() {
        let records: Vec<FlightRecord> = (0..4u64)
            .map(|i| {
                let total = (10 + 5 * i).to_string();
                record(
                    i,
                    0,
                    i,
                    "sds_backpressure",
                    &[("policy", "drop-oldest"), ("dropped_total", &total)],
                )
            })
            .collect();
        let anomalies = lint_flight(&dump_of(records));
        let storm = anomalies
            .iter()
            .find(|a| a.check == "backpressure-storm")
            .unwrap();
        assert_eq!(storm.severity, IssueSeverity::Error);
        assert!(storm.message.contains("10→25"), "{storm}");
    }

    #[test]
    fn lint_accepts_bounded_backpressure() {
        // A lone drop burst is not a storm.
        let one = vec![record(
            0,
            0,
            0,
            "sds_backpressure",
            &[("policy", "drop-oldest"), ("dropped_total", "7")],
        )];
        assert!(lint_flight(&dump_of(one)).is_empty());
        // Block-policy waits keep the counter constant: never a storm.
        let records: Vec<FlightRecord> = (0..5u64)
            .map(|i| {
                record(
                    i,
                    0,
                    i,
                    "sds_backpressure",
                    &[("policy", "block"), ("dropped_total", "0")],
                )
            })
            .collect();
        assert!(lint_flight(&dump_of(records)).is_empty());
    }

    #[test]
    fn lint_metrics_flags_hit_rate_collapse() {
        let healthy = r#"{"tracepoints":{"cache_hit":900,"cache_miss":100}}"#;
        assert!(lint_metrics(healthy).is_empty());
        let collapsed = r#"{"tracepoints":{"cache_hit":10,"cache_miss":190}}"#;
        let anomalies = lint_metrics(collapsed);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].check, "hit-rate-collapse");
        // Too few lookups to call it.
        let cold = r#"{"tracepoints":{"cache_hit":1,"cache_miss":9}}"#;
        assert!(lint_metrics(cold).is_empty());
    }

    #[test]
    fn report_annotates_denials_with_their_situation() {
        let dump = dump_of(vec![
            record(
                0,
                0,
                0,
                "ssm_transition",
                &[
                    ("from", "emergency"),
                    ("to", "normal"),
                    ("event", "rescue_done"),
                ],
            ),
            record(
                1,
                1,
                0,
                "hook_exit",
                &[("hook", "file_open"), ("verdict", "deny"), ("ns", "99")],
            ),
        ]);
        let report = render_report(&dump, &lint_flight(&dump));
        assert!(report.contains("denial in situation `normal`"), "{report}");
        assert!(report.contains("no anomalies"), "{report}");
    }

    #[test]
    fn prometheus_validator_accepts_good_and_rejects_bad() {
        let good = "# HELP x things\n# TYPE x counter\nx_total 3\n\
                    # HELP h stuff\n# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 1\n";
        assert_eq!(validate_prometheus(good).unwrap(), 4);
        assert!(validate_prometheus("orphan 1\n").is_err());
        assert!(validate_prometheus("# HELP x t\n# TYPE x counter\nx_total nope\n").is_err());
        assert!(validate_prometheus("# HELP x t\n# TYPE x counter\nx{a=b} 1\n").is_err());
        assert!(validate_prometheus("").is_err());
        // A family declared by TYPE but never described by HELP is rejected.
        let helpless = "# TYPE x counter\nx_total 3\n";
        let err = validate_prometheus(helpless).unwrap_err();
        assert!(err.contains("no # HELP"), "{err}");
    }

    #[test]
    fn self_check_passes_end_to_end() {
        let report = self_check().unwrap();
        assert!(report.contains("self-check passed"), "{report}");
    }
}
