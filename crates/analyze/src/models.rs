//! Bounded models of the lock-free hot path, for [`crate::explore`].
//!
//! Five models cover the lock-free structures the hook dispatch and
//! sensor ingestion paths rely on:
//!
//! * [`RcuModel`] — the hazard-pointer `Rcu<T>` from `sack-kernel`'s
//!   `sync` module: readers run the announce/validate protocol, the
//!   writer retires the old version, scans the hazard slots and frees
//!   only unannounced retirees. The checked property is memory safety
//!   (no reader ever acquires a freed version) plus the bounded-graveyard
//!   invariant.
//! * [`CacheModel`] — the epoch-tagged decision cache from `sack-core`'s
//!   `cache` module stacked on a policy reload: a writer publishes a new
//!   policy then bumps the epoch while readers consult the cache and
//!   fall back to evaluation. The checked property is linearizability of
//!   grant/deny outcomes: every reader's answer must be producible by
//!   *some* atomic placement of its query before or after the reload.
//! * [`RcuProfileTableModel`] — the AppArmor `PolicyDb` profile replace
//!   (`Rcu<ProfileTable>`) raced against concurrent hook reads and the
//!   decision-cache epoch bump. The checked properties are that a hook
//!   never observes a torn profile table (rules from one snapshot,
//!   shared alphabet from another) and that no stale grant survives a
//!   completed replace.
//! * [`PerCpuCacheModel`] — the per-CPU decision-cache array from
//!   `sack-core`'s `cache` module: each reader is pinned to its own cache
//!   instance (as each CPU is in the real dispatch path) and a policy
//!   reload must retire stale entries in *every* instance at once. The
//!   checked property is again outcome linearizability; the
//!   `skip_one_instance` mutation models a flush-walk invalidation that
//!   misses one instance, whose readers then replay a retired grant.
//! * [`RingModel`] — the Vyukov MPSC submission ring from `sack-kernel`'s
//!   `ring` module, the event plane's ingestion structure: producers race
//!   the tail CAS (including the drop-oldest path of `force_enqueue`)
//!   against a draining consumer. The checked properties are exact frame
//!   accounting (no lost, duplicated or per-producer-reordered frame;
//!   drop counts exact) over all bounded schedules including wraparound.
//!
//! All models carry mutation switches that disable one load-bearing
//! ingredient of the real algorithm (the reader's validate loop, the
//! writer's hazard scan, the cache's verifier check, the single-snapshot
//! publish, the epoch bump, the once-per-bump `cache_invalidate` trace
//! emission). Exploration must find a violation with any switch on and
//! prove the model with all switches off — that asymmetry is what
//! demonstrates the checker has teeth.
//!
//! [`CacheModel`] additionally models the `cache_invalidate` tracepoint:
//! the writer emits it exactly once after the epoch bump. The
//! `invalidate_per_slot` mutation makes the writer emit one event per
//! cache slot instead — the buggy-but-tempting loop shape — and the
//! invariant that catches it is the observability contract the securityfs
//! `tracing/events` node documents: one `cache_invalidate` per
//! `rcu_epoch_bump`.

use crate::interleave::Model;

/// Configuration for [`RcuModel`].
#[derive(Debug, Clone, Copy)]
pub struct RcuConfig {
    /// Number of reader threads (the model gives each its own hazard
    /// slot, mirroring the common case of distinct preferred slots).
    pub readers: usize,
    /// Number of version updates the writer performs.
    pub writes: usize,
    /// Known-bad mutation: readers announce and acquire without
    /// re-validating that the announced pointer is still current.
    pub skip_validation: bool,
    /// Known-bad mutation: the writer frees retired versions without
    /// scanning the hazard slots.
    pub skip_hazard_scan: bool,
}

impl RcuConfig {
    /// The faithful algorithm with `readers` readers and `writes`
    /// updates.
    pub fn correct(readers: usize, writes: usize) -> RcuConfig {
        RcuConfig {
            readers,
            writes,
            skip_validation: false,
            skip_hazard_scan: false,
        }
    }
}

/// Per-reader program counter for [`RcuModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RcuReaderPc {
    /// Load the current version pointer.
    Load,
    /// Store the loaded pointer into the hazard slot.
    Announce,
    /// Reload `current` and compare with the announced pointer.
    Validate,
    /// Comparison failed: re-announce the newly loaded pointer.
    Reannounce,
    /// Take a reference to the announced version (checks liveness).
    Acquire,
    /// Clear the hazard slot.
    Clear,
    /// Finished.
    Done,
}

/// Per-writer program counter for [`RcuModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RcuWriterPc {
    /// Swap in the next version and push the old one onto the graveyard.
    Publish,
    /// Read one hazard slot into the announced snapshot.
    Scan,
    /// Free every retired version absent from the announced snapshot.
    Free,
    /// Finished all writes.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RcuReader {
    pc: RcuReaderPc,
    /// The version id this reader has loaded / announced.
    p: u8,
}

/// Bounded model of the hazard-pointer `Rcu<T>`.
///
/// Versions are small integers `0..=writes`; version 0 is the initial
/// value and the writer publishes `1, 2, …` in order. `freed` and
/// `announced` are bitmasks over version ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RcuModel {
    readers: Vec<RcuReader>,
    writer_pc: RcuWriterPc,
    /// Index of the *next* version to publish (also: writes completed).
    next_version: u8,
    total_writes: u8,
    /// Currently published version id.
    current: u8,
    /// Bitmask of freed version ids.
    freed: u16,
    /// One hazard slot per reader; `None` = empty.
    hazards: Vec<Option<u8>>,
    /// Retired-but-not-freed version ids.
    graveyard: Vec<u8>,
    /// Writer's snapshot of announced versions (bitmask), rebuilt each
    /// scan.
    announced: u16,
    /// Next hazard slot the writer will scan.
    scan_idx: u8,
    skip_validation: bool,
    skip_hazard_scan: bool,
}

impl RcuModel {
    /// Builds the initial state for `config`.
    pub fn new(config: RcuConfig) -> RcuModel {
        assert!(config.writes < 15, "version ids are 4-bit in this model");
        RcuModel {
            readers: vec![
                RcuReader {
                    pc: RcuReaderPc::Load,
                    p: 0,
                };
                config.readers
            ],
            writer_pc: if config.writes == 0 {
                RcuWriterPc::Done
            } else {
                RcuWriterPc::Publish
            },
            next_version: 1,
            total_writes: config.writes as u8,
            current: 0,
            freed: 0,
            hazards: vec![None; config.readers],
            graveyard: Vec::new(),
            announced: 0,
            scan_idx: 0,
            skip_validation: config.skip_validation,
            skip_hazard_scan: config.skip_hazard_scan,
        }
    }

    fn is_freed(&self, version: u8) -> bool {
        self.freed & (1 << version) != 0
    }

    fn writer_step(&mut self) {
        match self.writer_pc {
            RcuWriterPc::Publish => {
                self.graveyard.push(self.current);
                self.current = self.next_version;
                self.announced = 0;
                self.scan_idx = 0;
                self.writer_pc = if self.skip_hazard_scan || self.hazards.is_empty() {
                    RcuWriterPc::Free
                } else {
                    RcuWriterPc::Scan
                };
            }
            RcuWriterPc::Scan => {
                if let Some(v) = self.hazards[self.scan_idx as usize] {
                    self.announced |= 1 << v;
                }
                self.scan_idx += 1;
                if self.scan_idx as usize == self.hazards.len() {
                    self.writer_pc = RcuWriterPc::Free;
                }
            }
            RcuWriterPc::Free => {
                let announced = self.announced;
                let freed = &mut self.freed;
                self.graveyard.retain(|&v| {
                    if announced & (1 << v) != 0 {
                        true
                    } else {
                        *freed |= 1 << v;
                        false
                    }
                });
                self.next_version += 1;
                self.writer_pc = if self.next_version > self.total_writes {
                    RcuWriterPc::Done
                } else {
                    RcuWriterPc::Publish
                };
            }
            RcuWriterPc::Done => unreachable!(),
        }
    }

    fn reader_step(&mut self, i: usize) -> Result<(), String> {
        let reader = self.readers[i];
        match reader.pc {
            RcuReaderPc::Load => {
                self.readers[i].p = self.current;
                self.readers[i].pc = RcuReaderPc::Announce;
            }
            RcuReaderPc::Announce => {
                self.hazards[i] = Some(reader.p);
                self.readers[i].pc = if self.skip_validation {
                    RcuReaderPc::Acquire
                } else {
                    RcuReaderPc::Validate
                };
            }
            RcuReaderPc::Validate => {
                if self.current == reader.p {
                    self.readers[i].pc = RcuReaderPc::Acquire;
                } else {
                    self.readers[i].p = self.current;
                    self.readers[i].pc = RcuReaderPc::Reannounce;
                }
            }
            RcuReaderPc::Reannounce => {
                self.hazards[i] = Some(reader.p);
                self.readers[i].pc = RcuReaderPc::Validate;
            }
            RcuReaderPc::Acquire => {
                if self.is_freed(reader.p) {
                    return Err(format!(
                        "use-after-free: reader {i} acquired version {} after it was freed",
                        reader.p
                    ));
                }
                self.readers[i].pc = RcuReaderPc::Clear;
            }
            RcuReaderPc::Clear => {
                self.hazards[i] = None;
                self.readers[i].pc = RcuReaderPc::Done;
            }
            RcuReaderPc::Done => unreachable!(),
        }
        Ok(())
    }
}

impl Model for RcuModel {
    fn threads(&self) -> usize {
        self.readers.len() + 1
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread < self.readers.len() {
            self.readers[thread].pc != RcuReaderPc::Done
        } else {
            self.writer_pc != RcuWriterPc::Done
        }
    }

    fn step(&mut self, thread: usize) -> Result<(), String> {
        if thread < self.readers.len() {
            self.reader_step(thread)
        } else {
            self.writer_step();
            Ok(())
        }
    }

    fn done(&self) -> bool {
        self.writer_pc == RcuWriterPc::Done
            && self.readers.iter().all(|r| r.pc == RcuReaderPc::Done)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // The reclamation invariant from `sack_kernel::sync`: the
        // graveyard holds at most one entry per hazard slot plus the
        // in-flight retiree of the current update.
        let bound = self.hazards.len() + 1;
        if self.graveyard.len() > bound {
            return Err(format!(
                "graveyard unbounded: {} retired versions with only {} hazard slots",
                self.graveyard.len(),
                self.hazards.len()
            ));
        }
        // The published version must never be freed.
        if self.is_freed(self.current) {
            return Err(format!("current version {} was freed", self.current));
        }
        Ok(())
    }
}

/// A grant/deny outcome in [`CacheModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Access granted.
    Allow,
    /// Access denied.
    Deny,
}

impl Outcome {
    fn bit(self) -> u8 {
        match self {
            Outcome::Allow => 0b01,
            Outcome::Deny => 0b10,
        }
    }
}

/// Configuration for [`CacheModel`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of reader threads performing one access check each.
    pub readers: usize,
    /// Known-bad mutation: the reader trusts a tag match without
    /// checking the payload verifier — exactly the check that makes the
    /// deliberate tag collision across epochs harmless in the real
    /// cache.
    pub skip_verifier: bool,
    /// Number of decision-cache slots the epoch bump conceptually
    /// retires. The correct invalidation never walks them (the bump
    /// alone retires every slot), so this only scales the damage of
    /// [`CacheConfig::invalidate_per_slot`].
    pub trace_slots: usize,
    /// Known-bad mutation: the writer emits one `cache_invalidate`
    /// trace event *per retired slot* instead of exactly one per epoch
    /// bump — the over-reporting bug the sack-trace contract rules out.
    pub invalidate_per_slot: bool,
}

impl CacheConfig {
    /// The faithful algorithm with `readers` readers.
    pub fn correct(readers: usize) -> CacheConfig {
        CacheConfig {
            readers,
            skip_verifier: false,
            trace_slots: 2,
            invalidate_per_slot: false,
        }
    }
}

/// The cache tag every key hashes to in this model. Making the tag
/// *identical across epochs* is deliberate: the real cache derives the
/// tag from a hash that includes the epoch, but a collision is always
/// possible, so the model forces the worst case and relies on the
/// verifier (which here is the epoch itself) to reject stale entries.
const TAG: u8 = 7;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheReaderPc {
    /// Read the policy epoch.
    Start,
    /// Load the slot tag.
    LoadTag,
    /// Load the slot payload and check the verifier.
    LoadPayload,
    /// Cache miss: evaluate the live policy.
    Eval,
    /// Store the payload word of a new grant entry.
    StorePayload,
    /// Store the tag word of a new grant entry.
    StoreTag,
    /// Finished.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheReader {
    pc: CacheReaderPc,
    /// Epoch observed at start.
    e: u8,
    /// The outcome this reader will report.
    outcome: Option<Outcome>,
    /// Bitmask of outcomes a linearizable execution may return, updated
    /// as the reload proceeds while this reader is in flight.
    valid: u8,
}

/// Writer progress through the reload: publish the new policy, bump the
/// epoch, then emit the `cache_invalidate` trace event(s). Between
/// publish and bump the system is mid-reload — readers may still
/// serialise before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReloadPc {
    /// About to publish the new policy.
    Publish,
    /// Policy published; about to bump the epoch.
    Bump,
    /// Epoch bumped; emitting `cache_invalidate` trace events (one
    /// atomic emission per step, matching the real `trace_emit` call
    /// that runs after the `fetch_add`).
    EmitInvalidate,
    /// Reload complete.
    Done,
}

/// Bounded model of the epoch-tagged decision cache across one policy
/// reload.
///
/// One access key exists; the old policy (version 0) grants it, the new
/// policy (version 1) denies it. Readers follow the real lookup
/// protocol (tag load, payload load + verifier check, miss fallback to
/// evaluation, payload-then-tag insertion of grant outcomes). The
/// writer publishes the new policy and then bumps the epoch, mirroring
/// `Rcu` publication followed by the epoch counter increment.
///
/// Linearizability bookkeeping: a reader that completes strictly before
/// the reload starts must report Allow; strictly after it completes,
/// Deny; overlapping the reload, either. The `valid` mask on each
/// in-flight reader is widened when the publish step executes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheModel {
    readers: Vec<CacheReader>,
    reload: ReloadPc,
    /// Live policy version: 0 grants, 1 denies.
    policy: u8,
    /// Epoch counter readers key the cache by.
    epoch: u8,
    /// Slot tag word (`None` = empty slot).
    slot_tag: Option<u8>,
    /// Slot payload word: (verifier, outcome).
    slot_payload: Option<(u8, Outcome)>,
    /// Epoch bumps performed by the writer.
    epoch_bumps: u8,
    /// `cache_invalidate` trace events emitted so far.
    invalidate_emits: u8,
    /// Emissions the writer still owes for the current bump.
    emits_pending: u8,
    trace_slots: u8,
    skip_verifier: bool,
    invalidate_per_slot: bool,
}

impl CacheModel {
    /// Builds the initial state for `config`.
    pub fn new(config: CacheConfig) -> CacheModel {
        CacheModel {
            readers: vec![
                CacheReader {
                    pc: CacheReaderPc::Start,
                    e: 0,
                    outcome: None,
                    valid: 0,
                };
                config.readers
            ],
            reload: ReloadPc::Publish,
            policy: 0,
            epoch: 0,
            slot_tag: None,
            slot_payload: None,
            epoch_bumps: 0,
            invalidate_emits: 0,
            emits_pending: 0,
            trace_slots: config.trace_slots as u8,
            skip_verifier: config.skip_verifier,
            invalidate_per_slot: config.invalidate_per_slot,
        }
    }

    fn eval(policy: u8) -> Outcome {
        if policy == 0 {
            Outcome::Allow
        } else {
            Outcome::Deny
        }
    }

    fn finish_reader(&mut self, i: usize, outcome: Outcome) -> Result<(), String> {
        self.readers[i].outcome = Some(outcome);
        self.readers[i].pc = CacheReaderPc::Done;
        if self.readers[i].valid & outcome.bit() == 0 {
            return Err(format!(
                "linearizability violation: reader {i} returned {outcome:?} but no \
                 atomic placement of its check relative to the reload produces it"
            ));
        }
        Ok(())
    }

    fn reader_step(&mut self, i: usize) -> Result<(), String> {
        let reader = self.readers[i];
        match reader.pc {
            CacheReaderPc::Start => {
                self.readers[i].e = self.epoch;
                self.readers[i].valid = match self.reload {
                    // Reload not begun: the old outcome is valid now; the
                    // publish step widens this if it happens in-flight.
                    ReloadPc::Publish => Self::eval(0).bit(),
                    // Mid-reload: the reader may serialise on either side.
                    ReloadPc::Bump => Self::eval(0).bit() | Self::eval(1).bit(),
                    // Publish and bump are both complete before this
                    // check began — only the trailing trace emission is
                    // outstanding, and it does not affect visibility.
                    ReloadPc::EmitInvalidate | ReloadPc::Done => Self::eval(1).bit(),
                };
                self.readers[i].pc = CacheReaderPc::LoadTag;
            }
            CacheReaderPc::LoadTag => {
                self.readers[i].pc = if self.slot_tag == Some(TAG) {
                    CacheReaderPc::LoadPayload
                } else {
                    CacheReaderPc::Eval
                };
            }
            CacheReaderPc::LoadPayload => match self.slot_payload {
                Some((verifier, outcome)) if self.skip_verifier || verifier == reader.e => {
                    return self.finish_reader(i, outcome);
                }
                _ => self.readers[i].pc = CacheReaderPc::Eval,
            },
            CacheReaderPc::Eval => {
                let outcome = Self::eval(self.policy);
                if outcome == Outcome::Allow {
                    // Only grants are cached; remember what to insert.
                    self.readers[i].outcome = Some(outcome);
                    self.readers[i].pc = CacheReaderPc::StorePayload;
                } else {
                    return self.finish_reader(i, outcome);
                }
            }
            CacheReaderPc::StorePayload => {
                self.slot_payload = Some((reader.e, Outcome::Allow));
                self.readers[i].pc = CacheReaderPc::StoreTag;
            }
            CacheReaderPc::StoreTag => {
                self.slot_tag = Some(TAG);
                return self.finish_reader(i, Outcome::Allow);
            }
            CacheReaderPc::Done => unreachable!(),
        }
        Ok(())
    }

    fn writer_step(&mut self) {
        match self.reload {
            ReloadPc::Publish => {
                self.policy = 1;
                // Every in-flight reader overlaps the reload from here
                // on, so the new outcome becomes a valid answer for it.
                for reader in &mut self.readers {
                    if reader.pc != CacheReaderPc::Start && reader.pc != CacheReaderPc::Done {
                        reader.valid |= Self::eval(1).bit();
                    }
                }
                self.reload = ReloadPc::Bump;
            }
            ReloadPc::Bump => {
                self.epoch = 1;
                self.epoch_bumps += 1;
                // The faithful writer owes exactly one `cache_invalidate`
                // for this bump; the mutated one walks the slots and emits
                // once per slot.
                self.emits_pending = if self.invalidate_per_slot {
                    self.trace_slots
                } else {
                    1
                };
                self.reload = ReloadPc::EmitInvalidate;
            }
            ReloadPc::EmitInvalidate => {
                self.invalidate_emits += 1;
                self.emits_pending -= 1;
                if self.emits_pending == 0 {
                    self.reload = ReloadPc::Done;
                }
            }
            ReloadPc::Done => unreachable!(),
        }
    }
}

impl Model for CacheModel {
    fn threads(&self) -> usize {
        self.readers.len() + 1
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread < self.readers.len() {
            self.readers[thread].pc != CacheReaderPc::Done
        } else {
            self.reload != ReloadPc::Done
        }
    }

    fn step(&mut self, thread: usize) -> Result<(), String> {
        if thread < self.readers.len() {
            self.reader_step(thread)
        } else {
            self.writer_step();
            Ok(())
        }
    }

    fn done(&self) -> bool {
        self.reload == ReloadPc::Done && self.readers.iter().all(|r| r.pc == CacheReaderPc::Done)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Insertion order is payload-then-tag, so a visible tag implies
        // a fully written payload.
        if self.slot_tag.is_some() && self.slot_payload.is_none() {
            return Err("slot tag visible before payload".to_string());
        }
        // The sack-trace contract: `cache_invalidate` fires exactly once
        // per epoch bump, never once per retired slot. Over-emission is
        // visible the moment the second event for one bump lands;
        // under-emission is visible at quiescence.
        if self.invalidate_emits > self.epoch_bumps {
            return Err(format!(
                "cache_invalidate fired {} times across {} epoch bump(s): \
                 the tracepoint must fire exactly once per bump, not per slot",
                self.invalidate_emits, self.epoch_bumps
            ));
        }
        if self.done() && self.invalidate_emits != self.epoch_bumps {
            return Err(format!(
                "cache_invalidate fired {} times across {} epoch bump(s) at \
                 quiescence: the tracepoint must fire exactly once per bump",
                self.invalidate_emits, self.epoch_bumps
            ));
        }
        Ok(())
    }
}

/// Configuration for [`PerCpuCacheModel`].
#[derive(Debug, Clone, Copy)]
pub struct PerCpuCacheConfig {
    /// Number of per-CPU cache instances.
    pub instances: usize,
    /// Number of reader threads, pinned round-robin to the instances
    /// (reader `i` runs on instance `i % instances`) — exactly the
    /// thread-local slot assignment of the real per-CPU array.
    pub readers: usize,
    /// Known-bad mutation: the epoch bump reaches every instance *except*
    /// instance 0 — the flush-walk-that-misses-one design. Readers on the
    /// skipped instance keep matching pre-reload entries and replay a
    /// grant the reload retired.
    pub skip_one_instance: bool,
}

impl PerCpuCacheConfig {
    /// The faithful algorithm with `instances` instances and `readers`
    /// pinned readers.
    pub fn correct(instances: usize, readers: usize) -> PerCpuCacheConfig {
        PerCpuCacheConfig {
            instances,
            readers,
            skip_one_instance: false,
        }
    }
}

/// One per-CPU cache instance in [`PerCpuCacheModel`]: a slot pair plus
/// the epoch its readers observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheInstance {
    /// Slot tag word (`None` = empty slot).
    tag: Option<u8>,
    /// Slot payload word: (verifier, outcome).
    payload: Option<(u8, Outcome)>,
    /// The policy epoch as visible from this instance. In the real array
    /// this is one global atomic — every instance sees a bump in the same
    /// instant — which the correct writer models by stamping all
    /// instances in a single step. The `skip_one_instance` mutation makes
    /// the stamp a per-instance walk that misses instance 0.
    epoch: u8,
}

/// Bounded model of the per-CPU decision-cache array across one policy
/// reload.
///
/// One access key exists; the old policy (version 0) grants it, the new
/// policy (version 1) denies it. Instance 0 starts warm (a pre-reload
/// grant entry, as if its CPU had already evaluated the key); the other
/// instances start empty so their readers exercise the miss/insert path.
/// Each reader follows the [`CacheModel`] lookup protocol against *its
/// own* instance only — there is no cross-instance traffic to hide a
/// missed invalidation. The writer publishes the new policy, then bumps
/// the epoch; because the epoch is one global counter embedded in every
/// cache key, the bump retires stale entries in every instance in the
/// same atomic step, with no flush walk that could skip one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PerCpuCacheModel {
    readers: Vec<CacheReader>,
    instances: Vec<CacheInstance>,
    /// Writer progress: `Publish -> Bump -> Done` (trace emission is
    /// covered by [`CacheModel`]).
    reload: ReloadPc,
    /// Live policy version: 0 grants, 1 denies.
    policy: u8,
    skip_one_instance: bool,
}

impl PerCpuCacheModel {
    /// Builds the initial state for `config`.
    pub fn new(config: PerCpuCacheConfig) -> PerCpuCacheModel {
        PerCpuCacheModel {
            readers: vec![
                CacheReader {
                    pc: CacheReaderPc::Start,
                    e: 0,
                    outcome: None,
                    valid: 0,
                };
                config.readers
            ],
            instances: (0..config.instances)
                .map(|i| CacheInstance {
                    // Instance 0 is warm with the epoch-0 grant; the rest
                    // are cold.
                    tag: (i == 0).then_some(TAG),
                    payload: (i == 0).then_some((0, Outcome::Allow)),
                    epoch: 0,
                })
                .collect(),
            reload: ReloadPc::Publish,
            policy: 0,
            skip_one_instance: config.skip_one_instance,
        }
    }

    /// The instance reader `i` is pinned to.
    fn instance_of(&self, i: usize) -> usize {
        i % self.instances.len()
    }

    fn eval(policy: u8) -> Outcome {
        if policy == 0 {
            Outcome::Allow
        } else {
            Outcome::Deny
        }
    }

    fn finish_reader(&mut self, i: usize, outcome: Outcome) -> Result<(), String> {
        let instance = self.instance_of(i);
        self.readers[i].outcome = Some(outcome);
        self.readers[i].pc = CacheReaderPc::Done;
        if self.readers[i].valid & outcome.bit() == 0 {
            return Err(format!(
                "linearizability violation: reader {i} on cache instance {instance} \
                 returned {outcome:?} but no atomic placement of its check relative \
                 to the reload produces it"
            ));
        }
        Ok(())
    }

    fn reader_step(&mut self, i: usize) -> Result<(), String> {
        let reader = self.readers[i];
        let instance = self.instance_of(i);
        match reader.pc {
            CacheReaderPc::Start => {
                self.readers[i].e = self.instances[instance].epoch;
                self.readers[i].valid = match self.reload {
                    ReloadPc::Publish => Self::eval(0).bit(),
                    ReloadPc::Bump => Self::eval(0).bit() | Self::eval(1).bit(),
                    ReloadPc::EmitInvalidate | ReloadPc::Done => Self::eval(1).bit(),
                };
                self.readers[i].pc = CacheReaderPc::LoadTag;
            }
            CacheReaderPc::LoadTag => {
                self.readers[i].pc = if self.instances[instance].tag == Some(TAG) {
                    CacheReaderPc::LoadPayload
                } else {
                    CacheReaderPc::Eval
                };
            }
            CacheReaderPc::LoadPayload => match self.instances[instance].payload {
                Some((verifier, outcome)) if verifier == reader.e => {
                    return self.finish_reader(i, outcome);
                }
                _ => self.readers[i].pc = CacheReaderPc::Eval,
            },
            CacheReaderPc::Eval => {
                let outcome = Self::eval(self.policy);
                if outcome == Outcome::Allow {
                    self.readers[i].outcome = Some(outcome);
                    self.readers[i].pc = CacheReaderPc::StorePayload;
                } else {
                    return self.finish_reader(i, outcome);
                }
            }
            CacheReaderPc::StorePayload => {
                self.instances[instance].payload = Some((reader.e, Outcome::Allow));
                self.readers[i].pc = CacheReaderPc::StoreTag;
            }
            CacheReaderPc::StoreTag => {
                self.instances[instance].tag = Some(TAG);
                return self.finish_reader(i, Outcome::Allow);
            }
            CacheReaderPc::Done => unreachable!(),
        }
        Ok(())
    }

    fn writer_step(&mut self) {
        match self.reload {
            ReloadPc::Publish => {
                self.policy = 1;
                for reader in &mut self.readers {
                    if reader.pc != CacheReaderPc::Start && reader.pc != CacheReaderPc::Done {
                        reader.valid |= Self::eval(1).bit();
                    }
                }
                self.reload = ReloadPc::Bump;
            }
            ReloadPc::Bump => {
                // One global `fetch_add`: every instance observes the new
                // epoch in the same atomic step. The mutation turns this
                // into a walk that skips instance 0, leaving its epoch-0
                // entries replayable.
                let first = usize::from(self.skip_one_instance);
                for instance in &mut self.instances[first..] {
                    instance.epoch = 1;
                }
                self.reload = ReloadPc::Done;
            }
            ReloadPc::EmitInvalidate | ReloadPc::Done => unreachable!(),
        }
    }
}

impl Model for PerCpuCacheModel {
    fn threads(&self) -> usize {
        self.readers.len() + 1
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread < self.readers.len() {
            self.readers[thread].pc != CacheReaderPc::Done
        } else {
            self.reload != ReloadPc::Done
        }
    }

    fn step(&mut self, thread: usize) -> Result<(), String> {
        if thread < self.readers.len() {
            self.reader_step(thread)
        } else {
            self.writer_step();
            Ok(())
        }
    }

    fn done(&self) -> bool {
        self.reload == ReloadPc::Done && self.readers.iter().all(|r| r.pc == CacheReaderPc::Done)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Insertion order is payload-then-tag in every instance.
        for (i, instance) in self.instances.iter().enumerate() {
            if instance.tag.is_some() && instance.payload.is_none() {
                return Err(format!("instance {i}: slot tag visible before payload"));
            }
        }
        // In the faithful algorithm the bump covers every instance
        // atomically: once the reload is done, no instance may still carry
        // the pre-bump epoch. (The mutation violates exactly this; its
        // readers surface it as a stale-grant replay, which is the
        // user-visible symptom the linearizability check reports.)
        if !self.skip_one_instance
            && self.reload == ReloadPc::Done
            && self.instances.iter().any(|inst| inst.epoch != 1)
        {
            return Err("completed epoch bump left an instance unstamped".to_string());
        }
        Ok(())
    }
}

/// Configuration for [`RcuProfileTableModel`].
///
/// At most one mutation switch may be on at a time.
#[derive(Debug, Clone, Copy)]
pub struct ProfileTableConfig {
    /// Number of hook threads performing one access check each.
    pub readers: usize,
    /// Known-bad mutation: the replace publishes the recompiled profile
    /// rules and the shared alphabet as two separate stores instead of
    /// one `Rcu<ProfileTable>` snapshot — a concurrent hook can evaluate
    /// rules from one version against byte classes from the other.
    pub split_publish: bool,
    /// Known-bad mutation: the replace swaps the table but never moves
    /// the decision-cache epoch, so grants cached before the replace
    /// keep verifying afterwards.
    pub skip_epoch_bump: bool,
    /// Known-bad mutation: the epoch moves *before* the table is
    /// published, so a hook running in the gap caches a pre-replace
    /// grant under the post-replace epoch.
    pub epoch_before_publish: bool,
}

impl ProfileTableConfig {
    /// The faithful algorithm with `readers` hook threads.
    pub fn correct(readers: usize) -> ProfileTableConfig {
        ProfileTableConfig {
            readers,
            split_publish: false,
            skip_epoch_bump: false,
            epoch_before_publish: false,
        }
    }
}

/// One atomic writer action in [`RcuProfileTableModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReplaceStep {
    /// Publish rules and alphabet together (the real single `Rcu` store).
    Publish,
    /// Publish only the recompiled rules (first half of the torn split).
    PublishRules,
    /// Publish only the shared alphabet (second half of the torn split).
    PublishAlphabet,
    /// Bump the decision-cache epoch (confinement generation).
    Bump,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TableReaderPc {
    /// Read the decision-cache epoch.
    Start,
    /// Load the cache slot tag.
    LoadTag,
    /// Load the slot payload and check the verifier.
    LoadPayload,
    /// Cache miss: walk the profile's compiled DFA.
    Eval,
    /// Store the payload word of a new grant entry.
    StorePayload,
    /// Store the tag word of a new grant entry.
    StoreTag,
    /// Finished.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableReader {
    pc: TableReaderPc,
    /// Epoch observed at start.
    e: u8,
    /// The outcome this reader will report.
    outcome: Option<Outcome>,
    /// Bitmask of outcomes a linearizable execution may return.
    valid: u8,
}

/// Bounded model of an AppArmor profile replace over `Rcu<ProfileTable>`
/// raced against hook reads and the decision-cache epoch bump.
///
/// One access key exists; profile-table version 0 grants it and version 1
/// (the replaced profile) denies it. The table is a pair
/// `(rules, alphabet)` because a compiled profile is only meaningful
/// against the byte-class alphabet it was compiled with: hooks must
/// observe the pair atomically, which the real implementation guarantees
/// by publishing both inside one `Rcu` snapshot. Readers follow the
/// decision-cache protocol of [`CacheModel`] (tag load, payload verifier,
/// miss fallback to evaluation, payload-then-tag insertion of grants),
/// keyed by the epoch the replace bumps after publishing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RcuProfileTableModel {
    readers: Vec<TableReader>,
    /// Index of the next writer step in the replace program.
    writer_pc: u8,
    /// Published profile-rules version: 0 grants, 1 denies.
    rules: u8,
    /// Published shared-alphabet version.
    alphabet: u8,
    /// Decision-cache epoch (the confinement generation).
    epoch: u8,
    /// Cache slot tag word (`None` = empty slot).
    slot_tag: Option<u8>,
    /// Cache slot payload word: (verifier, outcome).
    slot_payload: Option<(u8, Outcome)>,
    split_publish: bool,
    skip_epoch_bump: bool,
    epoch_before_publish: bool,
}

impl RcuProfileTableModel {
    /// Builds the initial state for `config`.
    pub fn new(config: ProfileTableConfig) -> RcuProfileTableModel {
        let mutations = [
            config.split_publish,
            config.skip_epoch_bump,
            config.epoch_before_publish,
        ]
        .iter()
        .filter(|&&m| m)
        .count();
        assert!(mutations <= 1, "at most one mutation switch at a time");
        RcuProfileTableModel {
            readers: vec![
                TableReader {
                    pc: TableReaderPc::Start,
                    e: 0,
                    outcome: None,
                    valid: 0,
                };
                config.readers
            ],
            writer_pc: 0,
            rules: 0,
            alphabet: 0,
            epoch: 0,
            slot_tag: None,
            slot_payload: None,
            split_publish: config.split_publish,
            skip_epoch_bump: config.skip_epoch_bump,
            epoch_before_publish: config.epoch_before_publish,
        }
    }

    /// The replace program the writer executes, one atomic step per entry.
    fn program(&self) -> &'static [ReplaceStep] {
        if self.split_publish {
            &[
                ReplaceStep::PublishRules,
                ReplaceStep::PublishAlphabet,
                ReplaceStep::Bump,
            ]
        } else if self.skip_epoch_bump {
            &[ReplaceStep::Publish]
        } else if self.epoch_before_publish {
            &[ReplaceStep::Bump, ReplaceStep::Publish]
        } else {
            &[ReplaceStep::Publish, ReplaceStep::Bump]
        }
    }

    fn writer_done(&self) -> bool {
        self.writer_pc as usize >= self.program().len()
    }

    fn eval(rules: u8) -> Outcome {
        if rules == 0 {
            Outcome::Allow
        } else {
            Outcome::Deny
        }
    }

    fn finish_reader(&mut self, i: usize, outcome: Outcome) -> Result<(), String> {
        self.readers[i].outcome = Some(outcome);
        self.readers[i].pc = TableReaderPc::Done;
        if self.readers[i].valid & outcome.bit() == 0 {
            return Err(format!(
                "linearizability violation: reader {i} returned {outcome:?} but no \
                 atomic placement of its check relative to the profile replace \
                 produces it (stale grant survived the replace)"
            ));
        }
        Ok(())
    }

    fn reader_step(&mut self, i: usize) -> Result<(), String> {
        let reader = self.readers[i];
        match reader.pc {
            TableReaderPc::Start => {
                self.readers[i].e = self.epoch;
                self.readers[i].valid = if self.writer_pc == 0 {
                    // Replace not begun: the old outcome is valid now; the
                    // publish step widens this if it happens in-flight.
                    Self::eval(0).bit()
                } else if self.writer_done() {
                    // Replace complete before this check began.
                    Self::eval(1).bit()
                } else {
                    // Mid-replace: the check may serialise on either side.
                    Self::eval(0).bit() | Self::eval(1).bit()
                };
                self.readers[i].pc = TableReaderPc::LoadTag;
            }
            TableReaderPc::LoadTag => {
                self.readers[i].pc = if self.slot_tag == Some(TAG) {
                    TableReaderPc::LoadPayload
                } else {
                    TableReaderPc::Eval
                };
            }
            TableReaderPc::LoadPayload => match self.slot_payload {
                Some((verifier, outcome)) if verifier == reader.e => {
                    return self.finish_reader(i, outcome);
                }
                _ => self.readers[i].pc = TableReaderPc::Eval,
            },
            TableReaderPc::Eval => {
                // The hook follows one snapshot handle to both the rules
                // and the alphabet; observing different versions means the
                // table was published in pieces.
                if self.rules != self.alphabet {
                    return Err(format!(
                        "torn profile-table read: reader {i} evaluated rules v{} \
                         against shared alphabet v{}",
                        self.rules, self.alphabet
                    ));
                }
                let outcome = Self::eval(self.rules);
                if outcome == Outcome::Allow {
                    // Only grants are cached; remember what to insert.
                    self.readers[i].outcome = Some(outcome);
                    self.readers[i].pc = TableReaderPc::StorePayload;
                } else {
                    return self.finish_reader(i, outcome);
                }
            }
            TableReaderPc::StorePayload => {
                self.slot_payload = Some((reader.e, Outcome::Allow));
                self.readers[i].pc = TableReaderPc::StoreTag;
            }
            TableReaderPc::StoreTag => {
                self.slot_tag = Some(TAG);
                return self.finish_reader(i, Outcome::Allow);
            }
            TableReaderPc::Done => unreachable!(),
        }
        Ok(())
    }

    fn writer_step(&mut self) {
        let step = self.program()[self.writer_pc as usize];
        match step {
            ReplaceStep::Publish => {
                self.rules = 1;
                self.alphabet = 1;
                self.widen_in_flight();
            }
            ReplaceStep::PublishRules => {
                self.rules = 1;
                self.widen_in_flight();
            }
            ReplaceStep::PublishAlphabet => {
                self.alphabet = 1;
            }
            ReplaceStep::Bump => {
                self.epoch = 1;
            }
        }
        self.writer_pc += 1;
    }

    /// Once the replaced rules are visible, every in-flight check
    /// overlaps the replace and may serialise after it.
    fn widen_in_flight(&mut self) {
        for reader in &mut self.readers {
            if reader.pc != TableReaderPc::Start && reader.pc != TableReaderPc::Done {
                reader.valid |= Self::eval(1).bit();
            }
        }
    }
}

impl Model for RcuProfileTableModel {
    fn threads(&self) -> usize {
        self.readers.len() + 1
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread < self.readers.len() {
            self.readers[thread].pc != TableReaderPc::Done
        } else {
            !self.writer_done()
        }
    }

    fn step(&mut self, thread: usize) -> Result<(), String> {
        if thread < self.readers.len() {
            self.reader_step(thread)
        } else {
            self.writer_step();
            Ok(())
        }
    }

    fn done(&self) -> bool {
        self.writer_done() && self.readers.iter().all(|r| r.pc == TableReaderPc::Done)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Insertion order is payload-then-tag, so a visible tag implies
        // a fully written payload.
        if self.slot_tag.is_some() && self.slot_payload.is_none() {
            return Err("slot tag visible before payload".to_string());
        }
        Ok(())
    }
}

/// Configuration for [`RingModel`].
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Number of producer threads.
    pub producers: usize,
    /// Values each producer enqueues (drop-oldest on a full ring).
    pub values: usize,
    /// Failed dequeue probes the consumer absorbs before giving up
    /// (successful dequeues are free, so the consumer drains what it can).
    pub attempts: usize,
    /// Ring capacity in slots (power of two, like the real ring).
    pub capacity: usize,
    /// Known-bad mutation: a producer that loses the tail CAS publishes
    /// its frame anyway, overwriting the winner's claimed slot.
    pub torn_publish: bool,
}

impl RingConfig {
    /// The faithful protocol with `producers` producers of `values`
    /// frames each into a 2-slot ring — small enough to explore
    /// exhaustively, full enough to exercise wraparound and drops.
    pub fn correct(producers: usize, values: usize) -> RingConfig {
        RingConfig {
            producers,
            values,
            attempts: 2,
            capacity: 2,
            torn_publish: false,
        }
    }
}

/// Per-producer program counter for [`RingModel`]. The `Drop*` states are
/// the inlined drop-oldest path of `force_enqueue`: the producer runs the
/// consumer protocol once to discard the oldest frame, then retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RingProdPc {
    /// Load the tail cursor.
    LoadTail,
    /// Load the claimed slot's sequence word and classify it.
    LoadSeq,
    /// CAS the tail from the loaded position to position + 1.
    Cas,
    /// Write the frame into the claimed slot.
    WriteValue,
    /// Publish: store sequence = position + 1.
    Publish,
    /// Drop-oldest: load the head cursor.
    DropLoadHead,
    /// Drop-oldest: load the head slot's sequence word.
    DropLoadSeq,
    /// Drop-oldest: CAS the head forward to claim the oldest frame.
    DropCas,
    /// Drop-oldest: read (and count) the discarded frame.
    DropRead,
    /// Drop-oldest: recycle the slot (sequence = position + capacity).
    DropBumpSeq,
    /// Finished all values.
    Done,
}

/// Consumer program counter for [`RingModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RingConsPc {
    /// Load the head cursor.
    LoadHead,
    /// Load the head slot's sequence word and classify it.
    LoadSeq,
    /// CAS the head forward to claim the frame.
    Cas,
    /// Read the claimed frame.
    ReadValue,
    /// Recycle the slot (sequence = position + capacity).
    BumpSeq,
    /// Out of probe attempts.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RingProducerState {
    pc: RingProdPc,
    /// Index of the next value this producer enqueues.
    next: u8,
    /// Loaded cursor (tail in the enqueue path, head in the drop path).
    pos: u8,
}

/// Bounded model of the Vyukov MPSC submission ring
/// (`sack_kernel::ring::RingIn`) at atomic-step granularity.
///
/// Frames are tagged `producer << 4 | index`, so the invariants can track
/// every frame individually: at quiescence each produced frame is
/// consumed, discarded (with the drop counter matching exactly) or still
/// in the ring — never lost, never duplicated — and the consumed stream
/// preserves each producer's enqueue order. The `torn_publish` mutation
/// models the tempting bug the real enqueue's CAS-failure branch guards
/// against: publishing into a slot whose claim was lost.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingModel {
    producers: Vec<RingProducerState>,
    consumer_pc: RingConsPc,
    consumer_pos: u8,
    attempts_left: u8,
    tail: u8,
    head: u8,
    seq: Vec<u8>,
    val: Vec<Option<u8>>,
    consumed: Vec<u8>,
    discarded: Vec<u8>,
    drop_count: u8,
    capacity: u8,
    values: u8,
    torn_publish: bool,
}

impl RingModel {
    /// Builds the initial state for `config`.
    pub fn new(config: RingConfig) -> RingModel {
        assert!(
            config.capacity.is_power_of_two() && config.capacity >= 2,
            "ring capacity must be a power of two >= 2"
        );
        assert!(config.producers < 16 && config.values < 16, "4-bit tags");
        RingModel {
            producers: vec![
                RingProducerState {
                    pc: if config.values == 0 {
                        RingProdPc::Done
                    } else {
                        RingProdPc::LoadTail
                    },
                    next: 0,
                    pos: 0,
                };
                config.producers
            ],
            consumer_pc: if config.attempts == 0 {
                RingConsPc::Done
            } else {
                RingConsPc::LoadHead
            },
            consumer_pos: 0,
            attempts_left: config.attempts as u8,
            tail: 0,
            head: 0,
            // Slot i starts with sequence i: "empty, awaiting position i".
            seq: (0..config.capacity as u8).collect(),
            val: vec![None; config.capacity],
            consumed: Vec::new(),
            discarded: Vec::new(),
            drop_count: 0,
            capacity: config.capacity as u8,
            values: config.values as u8,
            torn_publish: config.torn_publish,
        }
    }

    fn tag(&self, producer: usize, index: u8) -> u8 {
        ((producer as u8) << 4) | index
    }

    fn slot(&self, pos: u8) -> usize {
        (pos & (self.capacity - 1)) as usize
    }

    fn producer_step(&mut self, i: usize) -> Result<(), String> {
        let p = self.producers[i];
        match p.pc {
            RingProdPc::LoadTail => {
                self.producers[i].pos = self.tail;
                self.producers[i].pc = RingProdPc::LoadSeq;
            }
            RingProdPc::LoadSeq => {
                let dif = self.seq[self.slot(p.pos)] as i16 - p.pos as i16;
                self.producers[i].pc = if dif == 0 {
                    RingProdPc::Cas
                } else if dif < 0 {
                    // Full: run the drop-oldest path, then retry.
                    RingProdPc::DropLoadHead
                } else {
                    // Stale tail snapshot: reload.
                    RingProdPc::LoadTail
                };
            }
            RingProdPc::Cas => {
                if self.tail == p.pos {
                    self.tail = p.pos + 1;
                    self.producers[i].pc = RingProdPc::WriteValue;
                } else if self.torn_publish {
                    // Mutation: the claim was lost, publish anyway.
                    self.producers[i].pc = RingProdPc::WriteValue;
                } else {
                    self.producers[i].pc = RingProdPc::LoadTail;
                }
            }
            RingProdPc::WriteValue => {
                let tag = self.tag(i, p.next);
                let slot = self.slot(p.pos);
                self.val[slot] = Some(tag);
                self.producers[i].pc = RingProdPc::Publish;
            }
            RingProdPc::Publish => {
                let slot = self.slot(p.pos);
                self.seq[slot] = p.pos + 1;
                self.producers[i].next += 1;
                self.producers[i].pc = if self.producers[i].next == self.values {
                    RingProdPc::Done
                } else {
                    RingProdPc::LoadTail
                };
            }
            RingProdPc::DropLoadHead => {
                self.producers[i].pos = self.head;
                self.producers[i].pc = RingProdPc::DropLoadSeq;
            }
            RingProdPc::DropLoadSeq => {
                let dif = self.seq[self.slot(p.pos)] as i16 - (p.pos as i16 + 1);
                self.producers[i].pc = if dif == 0 {
                    RingProdPc::DropCas
                } else {
                    // Empty or raced: someone made room, retry the enqueue.
                    RingProdPc::LoadTail
                };
            }
            RingProdPc::DropCas => {
                if self.head == p.pos {
                    self.head = p.pos + 1;
                    self.producers[i].pc = RingProdPc::DropRead;
                } else {
                    self.producers[i].pc = RingProdPc::LoadTail;
                }
            }
            RingProdPc::DropRead => {
                let Some(tag) = self.val[self.slot(p.pos)] else {
                    return Err(format!(
                        "producer {i} discarded an unpublished slot at position {}",
                        p.pos
                    ));
                };
                self.discarded.push(tag);
                self.drop_count += 1;
                self.producers[i].pc = RingProdPc::DropBumpSeq;
            }
            RingProdPc::DropBumpSeq => {
                let slot = self.slot(p.pos);
                self.seq[slot] = p.pos + self.capacity;
                self.producers[i].pc = RingProdPc::LoadTail;
            }
            RingProdPc::Done => unreachable!(),
        }
        Ok(())
    }

    fn consumer_fail(&mut self) {
        self.attempts_left -= 1;
        self.consumer_pc = if self.attempts_left == 0 {
            RingConsPc::Done
        } else {
            RingConsPc::LoadHead
        };
    }

    fn consumer_step(&mut self) -> Result<(), String> {
        match self.consumer_pc {
            RingConsPc::LoadHead => {
                self.consumer_pos = self.head;
                self.consumer_pc = RingConsPc::LoadSeq;
            }
            RingConsPc::LoadSeq => {
                let pos = self.consumer_pos;
                let dif = self.seq[self.slot(pos)] as i16 - (pos as i16 + 1);
                if dif == 0 {
                    self.consumer_pc = RingConsPc::Cas;
                } else {
                    // Empty or raced by a dropping producer: burn a probe.
                    self.consumer_fail();
                }
            }
            RingConsPc::Cas => {
                if self.head == self.consumer_pos {
                    self.head = self.consumer_pos + 1;
                    self.consumer_pc = RingConsPc::ReadValue;
                } else {
                    self.consumer_fail();
                }
            }
            RingConsPc::ReadValue => {
                let Some(tag) = self.val[self.slot(self.consumer_pos)] else {
                    return Err(format!(
                        "consumer dequeued an unpublished slot at position {}",
                        self.consumer_pos
                    ));
                };
                self.consumed.push(tag);
                self.consumer_pc = RingConsPc::BumpSeq;
            }
            RingConsPc::BumpSeq => {
                let slot = self.slot(self.consumer_pos);
                self.seq[slot] = self.consumer_pos + self.capacity;
                self.consumer_pc = RingConsPc::LoadHead;
            }
            RingConsPc::Done => unreachable!(),
        }
        Ok(())
    }

    /// Frames still in the ring at quiescence, in ring order.
    fn residue(&self) -> Result<Vec<u8>, String> {
        let mut out = Vec::new();
        for pos in self.head..self.tail {
            if self.seq[self.slot(pos)] != pos + 1 {
                return Err(format!(
                    "occupied span holds an unpublished slot at position {pos}"
                ));
            }
            match self.val[self.slot(pos)] {
                Some(tag) => out.push(tag),
                None => return Err(format!("occupied slot without a frame at position {pos}")),
            }
        }
        Ok(out)
    }

    fn check_order(&self, stream: &[u8], what: &str) -> Result<(), String> {
        for producer in 0..self.producers.len() as u8 {
            let mut last: Option<u8> = None;
            for &tag in stream.iter().filter(|&&t| t >> 4 == producer) {
                let index = tag & 0xF;
                if let Some(prev) = last {
                    if index <= prev {
                        return Err(format!(
                            "reordered frames for producer {producer} in {what}: \
                             {index} after {prev}"
                        ));
                    }
                }
                last = Some(index);
            }
        }
        Ok(())
    }
}

impl Model for RingModel {
    fn threads(&self) -> usize {
        self.producers.len() + 1
    }

    fn enabled(&self, thread: usize) -> bool {
        if thread < self.producers.len() {
            self.producers[thread].pc != RingProdPc::Done
        } else {
            self.consumer_pc != RingConsPc::Done
        }
    }

    fn step(&mut self, thread: usize) -> Result<(), String> {
        if thread < self.producers.len() {
            self.producer_step(thread)
        } else {
            self.consumer_step()
        }
    }

    fn done(&self) -> bool {
        self.consumer_pc == RingConsPc::Done
            && self.producers.iter().all(|p| p.pc == RingProdPc::Done)
    }

    fn check_invariants(&self) -> Result<(), String> {
        let span = self.tail as i16 - self.head as i16;
        if span < 0 {
            return Err(format!("head {} overtook tail {}", self.head, self.tail));
        }
        if span > self.capacity as i16 {
            return Err(format!(
                "ring over-full: {} positions occupied with capacity {}",
                span, self.capacity
            ));
        }
        if self.drop_count as usize != self.discarded.len() {
            return Err(format!(
                "drop counter drift: counted {} but discarded {}",
                self.drop_count,
                self.discarded.len()
            ));
        }
        if !self.done() {
            return Ok(());
        }
        // Quiescent accounting: every produced frame is consumed,
        // discarded or still queued — exactly once.
        let residue = self.residue()?;
        for producer in 0..self.producers.len() {
            for index in 0..self.values {
                let tag = self.tag(producer, index);
                let copies = self
                    .consumed
                    .iter()
                    .chain(&self.discarded)
                    .chain(&residue)
                    .filter(|&&t| t == tag)
                    .count();
                if copies == 0 {
                    return Err(format!(
                        "lost frame: producer {producer} value {index} \
                         neither consumed, discarded nor queued"
                    ));
                }
                if copies > 1 {
                    return Err(format!(
                        "duplicated frame: producer {producer} value {index} \
                         delivered {copies} times"
                    ));
                }
            }
        }
        // Per-producer FIFO: the delivered stream (consumed now, residue
        // later) and the drop-oldest discards each preserve enqueue order.
        let mut delivered = self.consumed.clone();
        delivered.extend(&residue);
        self.check_order(&delivered, "delivered stream")?;
        self.check_order(&self.discarded, "discarded stream")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::explore;

    #[test]
    fn rcu_correct_algorithm_is_exhaustively_safe() {
        let stats = explore(&RcuModel::new(RcuConfig::correct(2, 2)), 64).unwrap();
        assert!(stats.complete_schedules > 0);
        assert!(stats.states > 100, "model should be non-trivial");
    }

    #[test]
    fn rcu_skipping_validation_is_caught() {
        let config = RcuConfig {
            skip_validation: true,
            ..RcuConfig::correct(1, 1)
        };
        let violation = explore(&RcuModel::new(config), 64).unwrap_err();
        assert!(violation.message.contains("use-after-free"), "{violation}");
    }

    #[test]
    fn rcu_skipping_the_hazard_scan_is_caught() {
        let config = RcuConfig {
            skip_hazard_scan: true,
            ..RcuConfig::correct(1, 1)
        };
        let violation = explore(&RcuModel::new(config), 64).unwrap_err();
        assert!(violation.message.contains("use-after-free"), "{violation}");
    }

    #[test]
    fn cache_correct_algorithm_is_exhaustively_linearizable() {
        let stats = explore(&CacheModel::new(CacheConfig::correct(2)), 64).unwrap();
        assert!(stats.complete_schedules > 0);
        assert!(stats.states > 100, "model should be non-trivial");
    }

    #[test]
    fn cache_skipping_the_verifier_is_caught() {
        let config = CacheConfig {
            skip_verifier: true,
            ..CacheConfig::correct(2)
        };
        let violation = explore(&CacheModel::new(config), 64).unwrap_err();
        assert!(violation.message.contains("linearizability"), "{violation}");
    }

    #[test]
    fn cache_invalidate_fires_once_per_bump_in_the_correct_model() {
        let stats = explore(&CacheModel::new(CacheConfig::correct(2)), 64).unwrap();
        assert!(stats.complete_schedules > 0);
    }

    #[test]
    fn cache_invalidate_per_slot_is_caught() {
        let config = CacheConfig {
            invalidate_per_slot: true,
            ..CacheConfig::correct(1)
        };
        let violation = explore(&CacheModel::new(config), 64).unwrap_err();
        assert!(
            violation.message.contains("exactly once per bump"),
            "{violation}"
        );
    }

    #[test]
    fn per_cpu_cache_correct_algorithm_is_exhaustively_linearizable() {
        // Three readers pinned round-robin to two instances (so one
        // instance carries two racing readers), every interleaving with
        // the reload explored: the single global epoch bump must retire
        // the warm entry in every instance before any post-bump reader
        // can replay it.
        let model = PerCpuCacheModel::new(PerCpuCacheConfig::correct(2, 3));
        let stats = explore(&model, 64).unwrap();
        assert!(stats.complete_schedules > 0);
        assert!(stats.states > 100, "model should be non-trivial");
    }

    #[test]
    fn per_cpu_cache_skipping_one_instance_is_caught() {
        let config = PerCpuCacheConfig {
            skip_one_instance: true,
            ..PerCpuCacheConfig::correct(2, 3)
        };
        let violation = explore(&PerCpuCacheModel::new(config), 64).unwrap_err();
        assert!(
            violation.message.contains("linearizability violation"),
            "{violation}"
        );
        assert!(
            violation.message.contains("instance 0"),
            "the skipped instance must be the one replaying a stale grant: {violation}"
        );
    }

    #[test]
    fn profile_table_correct_replace_is_exhaustively_safe() {
        let model = RcuProfileTableModel::new(ProfileTableConfig::correct(2));
        let stats = explore(&model, 64).unwrap();
        assert!(stats.complete_schedules > 0);
        assert!(stats.states > 100, "model should be non-trivial");
    }

    #[test]
    fn profile_table_split_publish_is_caught_as_torn_read() {
        let config = ProfileTableConfig {
            split_publish: true,
            ..ProfileTableConfig::correct(1)
        };
        let violation = explore(&RcuProfileTableModel::new(config), 64).unwrap_err();
        assert!(
            violation.message.contains("torn profile-table read"),
            "{violation}"
        );
    }

    #[test]
    fn profile_table_skipping_the_epoch_bump_is_caught() {
        let config = ProfileTableConfig {
            skip_epoch_bump: true,
            ..ProfileTableConfig::correct(2)
        };
        let violation = explore(&RcuProfileTableModel::new(config), 64).unwrap_err();
        assert!(violation.message.contains("linearizability"), "{violation}");
    }

    #[test]
    fn profile_table_bumping_the_epoch_early_is_caught() {
        let config = ProfileTableConfig {
            epoch_before_publish: true,
            ..ProfileTableConfig::correct(2)
        };
        let violation = explore(&RcuProfileTableModel::new(config), 64).unwrap_err();
        assert!(violation.message.contains("linearizability"), "{violation}");
    }

    #[test]
    fn ring_correct_protocol_accounts_for_every_frame() {
        // Two producers of two frames each through a 2-slot ring: every
        // schedule wraps the ring at least once and many exercise the
        // drop-oldest path, so exact accounting is proven under
        // wraparound, drops and CAS races together.
        let stats = explore(&RingModel::new(RingConfig::correct(2, 2)), 160).unwrap();
        assert!(stats.complete_schedules > 0);
        assert!(stats.states > 100, "model should be non-trivial");
    }

    #[test]
    fn ring_single_producer_is_fifo() {
        let stats = explore(&RingModel::new(RingConfig::correct(1, 3)), 160).unwrap();
        assert!(stats.complete_schedules > 0);
    }

    #[test]
    fn ring_torn_publish_is_caught() {
        let config = RingConfig {
            torn_publish: true,
            ..RingConfig::correct(2, 2)
        };
        let violation = explore(&RingModel::new(config), 160).unwrap_err();
        assert!(
            violation.message.contains("lost frame")
                || violation.message.contains("duplicated frame")
                || violation.message.contains("unpublished slot"),
            "{violation}"
        );
    }
}
