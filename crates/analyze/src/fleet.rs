//! Fleet telemetry forensics: lints over [`FleetAlert`] streams and the
//! `sack-analyze fleet` end-to-end self-check.
//!
//! The alert lints treat a rollout's alert log the way [`crate::trace`]
//! treats a flight dump: a healthy run produces either nothing or one
//! crisp, replayable alert per incident. Streams that flap, storm, or
//! arrive without a flight excerpt indicate a mis-tuned detector bank or
//! an instance whose flight ring is being starved — both worth blocking
//! a rollout pipeline over.

use std::collections::BTreeMap;
use std::fmt;

use sack_fleet::FleetAlert;

/// One finding from [`lint_alerts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertFinding {
    /// Stable check id (`fleet-excerpt-missing`, `fleet-flapping`,
    /// `fleet-alert-storm`).
    pub check: &'static str,
    /// Human-readable description with the offending cohort/tick.
    pub message: String,
}

impl fmt::Display for AlertFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.message)
    }
}

/// Alerts in one tick (across cohorts) at or above which
/// [`lint_alerts`] reports a storm.
pub const ALERT_STORM_PER_TICK: usize = 8;

/// Distinct ticks on which the same (cohort, kind) pair may alert before
/// [`lint_alerts`] reports flapping.
pub const ALERT_FLAP_TICKS: usize = 3;

/// Lints an alert stream (e.g. a [`sack_fleet::RolloutDriver`]'s log):
///
/// * `fleet-excerpt-missing` — an alert carries no flight-recorder
///   excerpt, so the incident cannot be replayed;
/// * `fleet-flapping` — the same (cohort, detector) pair alerted on
///   [`ALERT_FLAP_TICKS`]+ distinct ticks: the detector threshold sits
///   on top of the steady-state signal;
/// * `fleet-alert-storm` — [`ALERT_STORM_PER_TICK`]+ alerts landed on a
///   single tick: a fleet-wide event is being reported once per cohort
///   instead of being aggregated.
pub fn lint_alerts(alerts: &[FleetAlert]) -> Vec<AlertFinding> {
    let mut findings = Vec::new();
    let mut per_pair: BTreeMap<(String, &'static str), Vec<u64>> = BTreeMap::new();
    let mut per_tick: BTreeMap<u64, usize> = BTreeMap::new();
    for alert in alerts {
        if alert.flight_excerpt.is_empty() {
            findings.push(AlertFinding {
                check: "fleet-excerpt-missing",
                message: format!(
                    "{} alert for cohort `{}` at tick {} has no flight excerpt",
                    alert.kind, alert.cohort, alert.tick
                ),
            });
        }
        let ticks = per_pair
            .entry((alert.cohort.clone(), alert.kind.name()))
            .or_default();
        if !ticks.contains(&alert.tick) {
            ticks.push(alert.tick);
        }
        *per_tick.entry(alert.tick).or_insert(0) += 1;
    }
    for ((cohort, kind), ticks) in &per_pair {
        if ticks.len() >= ALERT_FLAP_TICKS {
            findings.push(AlertFinding {
                check: "fleet-flapping",
                message: format!(
                    "cohort `{cohort}` raised `{kind}` on {} distinct ticks {ticks:?}",
                    ticks.len()
                ),
            });
        }
    }
    for (tick, count) in &per_tick {
        if *count >= ALERT_STORM_PER_TICK {
            findings.push(AlertFinding {
                check: "fleet-alert-storm",
                message: format!("{count} alerts landed on tick {tick}"),
            });
        }
    }
    findings
}

/// End-to-end fleet self-check, behind `sack-analyze fleet`: boots a
/// small multi-cohort fleet, promotes a clean rollout cohort-by-cohort,
/// rolls a second rollout back off an injected canary denial spike,
/// validates the aggregated Prometheus endpoint with the same strict
/// HELP/TYPE validator used for per-instance metrics, and runs
/// [`lint_alerts`] over both alert logs.
///
/// Returns a short human-readable report of what was proven.
///
/// # Errors
///
/// A message naming the first check that failed.
pub fn fleet_self_check() -> Result<String, String> {
    use std::sync::Arc;

    use sack_core::Sack;
    use sack_fleet::{FleetAggregator, RolloutConfig, RolloutDriver, RolloutStatus};
    use sack_kernel::cred::Credentials;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
    use sack_kernel::path::KPath;
    use sack_kernel::types::Pid;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { CAR; }
        state_per { normal: CAR; emergency: CAR; }
        per_rules { CAR: allow subject=* /dev/car/** r; }
    "#;
    const COHORTS: [&str; 3] = ["canary", "wave-1", "wave-2"];
    const PER_COHORT: usize = 4;

    let fail = |what: &str, detail: String| format!("fleet self-check: {what}: {detail}");

    let agg = FleetAggregator::new();
    let mut kernels = Vec::new();
    for cohort in COHORTS {
        for _ in 0..PER_COHORT {
            let sack = Sack::independent(POLICY).map_err(|e| fail("policy load", e.to_string()))?;
            let kernel = KernelBuilder::new()
                .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
                .boot();
            sack.attach(&kernel)
                .map_err(|e| fail("attach", e.to_string()))?;
            kernel.trace().set_enabled(true);
            agg.register(&kernel, &sack, cohort);
            kernels.push((kernel, sack));
        }
    }

    let door = KPath::new("/dev/car/door0").map_err(|e| fail("path", e.to_string()))?;
    let drive = |mask: AccessMask, n: usize| {
        let ctx = HookCtx::new(Pid(7000), Credentials::user(1000, 1000), None);
        let obj = ObjectRef::regular(&door);
        for (kernel, _) in &kernels {
            for _ in 0..n {
                let _ = kernel.lsm().file_open(&ctx, &obj, mask);
            }
        }
    };

    // Rollout 1: same policy everywhere, clean telemetry — must promote
    // every cohort.
    let cohorts: Vec<String> = COHORTS.iter().map(|c| c.to_string()).collect();
    let mut promote = RolloutDriver::new(
        Arc::clone(&agg),
        cohorts.clone(),
        POLICY,
        POLICY,
        RolloutConfig {
            soak_ticks: 2,
            ..RolloutConfig::default()
        },
    );
    let mut steps = 0;
    while !promote.finished() {
        drive(AccessMask::READ, 4);
        promote.step();
        steps += 1;
        if steps > 64 {
            return Err(fail("promote", "rollout did not converge".to_string()));
        }
    }
    if promote.status() != RolloutStatus::Promoted {
        return Err(fail("promote", format!("{}", promote.status())));
    }

    // Rollout 2: inject a canary denial spike mid-soak — must roll back.
    let mut rollback = RolloutDriver::new(
        Arc::clone(&agg),
        cohorts,
        POLICY,
        POLICY,
        RolloutConfig {
            soak_ticks: 4,
            ..RolloutConfig::default()
        },
    );
    rollback.step(); // prime + push to canary
    {
        let ctx = HookCtx::new(Pid(7000), Credentials::user(1000, 1000), None);
        let obj = ObjectRef::regular(&door);
        for (kernel, _) in &kernels[..PER_COHORT] {
            for _ in 0..16 {
                if kernel
                    .lsm()
                    .file_open(&ctx, &obj, AccessMask::WRITE)
                    .is_ok()
                {
                    return Err(fail(
                        "spike injection",
                        "door write unexpectedly granted".to_string(),
                    ));
                }
            }
        }
    }
    rollback.step();
    let RolloutStatus::RolledBack { cohort, .. } = rollback.status() else {
        return Err(fail("rollback", format!("{}", rollback.status())));
    };
    if cohort != "canary" {
        return Err(fail("rollback", format!("blamed cohort `{cohort}`")));
    }

    // The aggregated endpoint must satisfy the strict HELP/TYPE validator
    // and label rollups by cohort.
    let text = agg.render_prometheus();
    let samples =
        crate::trace::validate_prometheus(&text).map_err(|e| fail("fleet prometheus", e))?;
    for cohort in COHORTS {
        if !text.contains(&format!("cohort=\"{cohort}\"")) {
            return Err(fail(
                "fleet prometheus",
                format!("no samples labelled cohort=\"{cohort}\""),
            ));
        }
    }

    // Both alert logs must lint clean: promotion saw no alerts at all,
    // and the rollback saw one crisp excerpt-bearing incident.
    if !promote.alerts().is_empty() {
        return Err(fail(
            "promote alerts",
            format!("{} unexpected alert(s)", promote.alerts().len()),
        ));
    }
    let findings = lint_alerts(rollback.alerts());
    if let Some(finding) = findings.first() {
        return Err(fail("alert lint", finding.to_string()));
    }

    Ok(format!(
        "fleet self-check passed: {} instances in {} cohorts, clean rollout \
         promoted in {steps} steps, canary spike rolled back with {} alert(s) \
         lint clean, fleet endpoint valid ({samples} Prometheus samples)\n",
        COHORTS.len() * PER_COHORT,
        COHORTS.len(),
        rollback.alerts().len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_fleet::{FleetAlert, FleetAlertKind};

    fn alert(kind: FleetAlertKind, cohort: &str, tick: u64, excerpt: bool) -> FleetAlert {
        FleetAlert {
            kind,
            cohort: cohort.to_string(),
            tick,
            detail: "test".to_string(),
            flight_excerpt: if excerpt {
                vec!["seq=1 producer=0 hook_exit".to_string()]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn lint_flags_missing_excerpt_flapping_and_storms() {
        let clean = [alert(FleetAlertKind::DenialSpike, "canary", 3, true)];
        assert!(lint_alerts(&clean).is_empty());

        let missing = [alert(FleetAlertKind::DenialSpike, "canary", 3, false)];
        let findings = lint_alerts(&missing);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, "fleet-excerpt-missing");

        let flapping: Vec<FleetAlert> = (1..=3)
            .map(|t| alert(FleetAlertKind::TransitionStorm, "wave-1", t, true))
            .collect();
        let findings = lint_alerts(&flapping);
        assert!(findings.iter().any(|f| f.check == "fleet-flapping"));

        let storm: Vec<FleetAlert> = (0..ALERT_STORM_PER_TICK)
            .map(|i| alert(FleetAlertKind::FlightOverflow, &format!("c{i}"), 7, true))
            .collect();
        let findings = lint_alerts(&storm);
        assert!(findings.iter().any(|f| f.check == "fleet-alert-storm"));
    }

    #[test]
    fn fleet_self_check_passes_end_to_end() {
        let report = fleet_self_check().unwrap();
        assert!(report.contains("fleet self-check passed"), "{report}");
    }
}
