//! Synthetic driving traces.
//!
//! Substitutes for the road data the paper's testbed would observe. Each
//! generator is deterministic given its parameters (and seed, where used),
//! so scenarios replay identically across test runs and benchmarks.

use std::time::Duration;

use crate::sensors::SensorFrame;

/// A timed sequence of sensor frames.
pub type Trace = Vec<SensorFrame>;

/// A commute: pull out, drive at city speed, park, driver leaves.
///
/// Frames are 1 s apart; the trace lasts `2*city_secs + 8` frames.
pub fn city_drive(city_secs: u64) -> Trace {
    let mut frames: Vec<SensorFrame> = Vec::new();
    let at = |frames: &Vec<SensorFrame>| Duration::from_secs(frames.len() as u64);
    // Parked with driver, ignition on.
    frames.push(SensorFrame::parked(at(&frames)).with_ignition(true));
    // Accelerate.
    for speed in [10.0, 25.0, 40.0] {
        frames.push(SensorFrame::parked(at(&frames)).with_speed(speed));
    }
    // Cruise.
    for _ in 0..city_secs {
        frames.push(SensorFrame::parked(at(&frames)).with_speed(45.0));
    }
    // Slow down and stop.
    for speed in [30.0, 15.0, 0.0, 0.0, 0.0, 0.0] {
        frames.push(SensorFrame::parked(at(&frames)).with_speed(speed));
    }
    // Driver leaves.
    frames.push(SensorFrame::parked(at(&frames)).with_driver(false));
    frames
}

/// A highway drive that ends in a crash at `crash_at` seconds: speeds past
/// the high-speed threshold, then a 30 g pulse with airbag deployment.
pub fn highway_crash(crash_at: u64) -> Trace {
    let mut frames = Vec::new();
    for t in 0..crash_at {
        let speed = (20.0 + 10.0 * t as f64).min(110.0);
        frames.push(SensorFrame::parked(Duration::from_secs(t)).with_speed(speed));
    }
    frames.push(
        SensorFrame::parked(Duration::from_secs(crash_at))
            .with_speed(0.0)
            .with_accel(30.0)
            .with_airbag(true),
    );
    // Aftermath: stationary, airbag deployed.
    for dt in 1..=5 {
        frames.push(SensorFrame::parked(Duration::from_secs(crash_at + dt)).with_airbag(true));
    }
    frames
}

/// A parking-lot scenario: driver parks, leaves, returns later.
pub fn park_and_return(away_secs: u64) -> Trace {
    let mut frames = Vec::new();
    let mut t = 0u64;
    for speed in [15.0, 8.0, 0.0, 0.0, 0.0, 0.0] {
        frames.push(SensorFrame::parked(Duration::from_secs(t)).with_speed(speed));
        t += 1;
    }
    frames.push(SensorFrame::parked(Duration::from_secs(t)).with_driver(false));
    t += 1;
    for _ in 0..away_secs {
        frames.push(SensorFrame::parked(Duration::from_secs(t)).with_driver(false));
        t += 1;
    }
    frames.push(SensorFrame::parked(Duration::from_secs(t)).with_driver(true));
    frames
}

/// A square-wave speed profile oscillating across the high/low-speed
/// thresholds with the given half-period — drives the Fig. 3b
/// transition-frequency experiment. `period` is simulated time between
/// consecutive situation transitions; `transitions` is how many to produce.
pub fn speed_oscillation(period: Duration, transitions: u32) -> Trace {
    let mut frames = Vec::new();
    let mut now = Duration::ZERO;
    for i in 0..transitions {
        let fast = i % 2 == 0;
        let speed = if fast { 90.0 } else { 10.0 };
        frames.push(SensorFrame::parked(now).with_speed(speed));
        now += period;
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{
        CrashDetector, Detector, DriverPresenceDetector, ParkingDetector, SpeedDetector,
    };

    fn run_detectors(trace: &Trace) -> Vec<String> {
        let mut detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(CrashDetector::new()),
            Box::new(SpeedDetector::new(30.0, 60.0)),
            Box::new(DriverPresenceDetector::new()),
            Box::new(ParkingDetector::new(3)),
        ];
        let mut events = Vec::new();
        for frame in trace {
            for d in &mut detectors {
                events.extend(d.observe(frame));
            }
        }
        events
    }

    #[test]
    fn city_drive_produces_drive_park_leave() {
        let events = run_detectors(&city_drive(5));
        assert!(events.contains(&"start_driving".to_string()));
        assert!(events.contains(&"park".to_string()));
        assert!(events.contains(&"driver_left".to_string()));
        assert!(!events.contains(&"crash".to_string()));
    }

    #[test]
    fn highway_crash_produces_high_speed_then_crash() {
        let events = run_detectors(&highway_crash(10));
        let hs = events.iter().position(|e| e == "high_speed");
        let crash = events.iter().position(|e| e == "crash");
        assert!(hs.is_some(), "events: {events:?}");
        assert!(crash.is_some());
        assert!(hs < crash, "high speed precedes the crash");
        assert_eq!(events.iter().filter(|e| *e == "crash").count(), 1);
    }

    #[test]
    fn park_and_return_produces_presence_edges() {
        let events = run_detectors(&park_and_return(10));
        assert!(events.contains(&"driver_left".to_string()));
        assert!(events.contains(&"driver_entered".to_string()));
    }

    #[test]
    fn speed_oscillation_alternates_transitions() {
        let trace = speed_oscillation(Duration::from_millis(100), 10);
        assert_eq!(trace.len(), 10);
        let events = run_detectors(&trace);
        let highs = events.iter().filter(|e| *e == "high_speed").count();
        let lows = events.iter().filter(|e| *e == "low_speed").count();
        assert_eq!(highs, 5);
        assert_eq!(lows, 5);
        // Timestamps are `period` apart.
        assert_eq!(trace[1].t - trace[0].t, Duration::from_millis(100));
    }
}
