//! Vehicle sensor frames — the environment-information input to the SDS.
//!
//! The paper's SDS "monitors environment information (e.g., location,
//! speed) and detects situation events". Real sensors are replaced by
//! synthetic [`SensorFrame`] streams (see [`crate::traces`]); the detection
//! logic downstream is identical either way.

use std::time::Duration;

/// One sample of the vehicle's environment state.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorFrame {
    /// Timestamp (simulated time).
    pub t: Duration,
    /// Vehicle speed in km/h.
    pub speed_kmh: f64,
    /// Longitudinal acceleration magnitude in g (positive = deceleration
    /// spike; a crash pulse is tens of g).
    pub accel_g: f64,
    /// GPS position (latitude, longitude).
    pub gps: (f64, f64),
    /// Driver-seat occupancy.
    pub driver_present: bool,
    /// Airbag deployment flag from the restraint controller.
    pub airbag_deployed: bool,
    /// Ignition on/off.
    pub ignition_on: bool,
}

impl SensorFrame {
    /// A parked, driver-present, ignition-off frame at time `t` — the
    /// neutral baseline the builders start from.
    pub fn parked(t: Duration) -> SensorFrame {
        SensorFrame {
            t,
            speed_kmh: 0.0,
            accel_g: 0.0,
            gps: (48.7758, 9.1829),
            driver_present: true,
            airbag_deployed: false,
            ignition_on: false,
        }
    }

    /// Returns the frame with the given speed (builder-style).
    pub fn with_speed(mut self, speed_kmh: f64) -> SensorFrame {
        self.speed_kmh = speed_kmh;
        self.ignition_on = self.ignition_on || speed_kmh > 0.0;
        self
    }

    /// Returns the frame with the given deceleration pulse (builder-style).
    pub fn with_accel(mut self, accel_g: f64) -> SensorFrame {
        self.accel_g = accel_g;
        self
    }

    /// Returns the frame with airbag state set (builder-style).
    pub fn with_airbag(mut self, deployed: bool) -> SensorFrame {
        self.airbag_deployed = deployed;
        self
    }

    /// Returns the frame with driver presence set (builder-style).
    pub fn with_driver(mut self, present: bool) -> SensorFrame {
        self.driver_present = present;
        self
    }

    /// Returns the frame with ignition state set (builder-style).
    pub fn with_ignition(mut self, on: bool) -> SensorFrame {
        self.ignition_on = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_baseline() {
        let f = SensorFrame::parked(Duration::from_secs(1));
        assert_eq!(f.speed_kmh, 0.0);
        assert!(f.driver_present);
        assert!(!f.airbag_deployed);
        assert!(!f.ignition_on);
    }

    #[test]
    fn builders_compose() {
        let f = SensorFrame::parked(Duration::ZERO)
            .with_speed(80.0)
            .with_accel(0.3)
            .with_driver(true);
        assert_eq!(f.speed_kmh, 80.0);
        assert!(f.ignition_on, "driving implies ignition");
        assert_eq!(f.accel_g, 0.3);
    }
}
