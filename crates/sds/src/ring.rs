//! Producer side of the batched event plane.
//!
//! The synchronous [`crate::service::SdsService`] pays one `write(2)` per
//! detected event. At sensor rates the syscall + per-event SSM evaluation
//! dominates, so this module batches: detections accumulate in a line
//! buffer and ship as one multi-line write to `SACK/sds/ring`, where the
//! kernel enqueues every frame and coalesces the whole batch into at most
//! one SSM transition + epoch bump (one write = one drain).
//!
//! Unknown event names are filtered client-side against the event list the
//! policy node publishes, mirroring the sync path's per-event `EINVAL`
//! without failing a whole batch for one stray detection.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::error::KernelResult;
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::Kernel;
use sack_kernel::types::Fd;
use sack_kernel::uctx::UserContext;

pub use sack_core::{BackpressurePolicy, EventFrame, EventPlane, FrameError, MAX_EVENT_NAME};

use crate::detector::Detector;
use crate::sensors::SensorFrame;
use crate::service::SdsReport;

/// Path of the SACKfs batched submission node.
pub const SACK_RING_PATH: &str = "/sys/kernel/security/SACK/sds/ring";

/// Path of the SACKfs policy node (read to learn the known event names).
const SACK_POLICY_PATH: &str = "/sys/kernel/security/SACK/policy";

/// A batching writer over `SACK/sds/ring`.
///
/// Detections [`queue`](RingProducer::queue) into a line buffer; once
/// `batch` events accumulate (or on an explicit
/// [`flush`](RingProducer::flush)) the buffer ships as one write, which the
/// kernel drains as one coalesced batch.
pub struct RingProducer {
    proc: UserContext,
    ring_fd: Fd,
    known_events: BTreeSet<String>,
    buf: String,
    queued: usize,
    batch: usize,
    batches_sent: u64,
    events_sent: u64,
}

impl RingProducer {
    /// Spawns the producer as a new process (uid 500, `CAP_MAC_ADMIN`
    /// only — the same principal as the sync SDS), opens the ring node and
    /// snapshots the policy's event list for client-side filtering.
    ///
    /// # Errors
    ///
    /// Fails if SACKfs is not attached, or `batch` is 0.
    pub fn spawn(kernel: &Arc<Kernel>, batch: usize) -> KernelResult<RingProducer> {
        if batch == 0 {
            return Err(sack_kernel::error::KernelError::with_context(
                sack_kernel::error::Errno::EINVAL,
                "sds-ring",
            ));
        }
        let cred = Credentials::user(500, 500).with_capability(Capability::MacAdmin);
        let proc = kernel.spawn(cred);
        let ring_fd = proc.open(SACK_RING_PATH, OpenFlags::write_only())?;
        let policy = proc.read_to_vec(SACK_POLICY_PATH)?;
        let known_events = String::from_utf8_lossy(&policy)
            .lines()
            .find_map(|l| l.strip_prefix("events ").map(str::to_string))
            .unwrap_or_default()
            .split_whitespace()
            .map(str::to_string)
            .collect();
        Ok(RingProducer {
            proc,
            ring_fd,
            known_events,
            buf: String::new(),
            queued: 0,
            batch,
            batches_sent: 0,
            events_sent: 0,
        })
    }

    /// The producer process handle.
    pub fn process(&self) -> &UserContext {
        &self.proc
    }

    /// True when the loaded policy knows `name` (snapshot at spawn time).
    pub fn knows(&self, name: &str) -> bool {
        self.known_events.contains(name)
    }

    /// Queues one event for the next batch, flushing when the batch is
    /// full. Returns `false` (without queuing) for events the policy does
    /// not know — the client-side mirror of the sync path's `EINVAL`.
    ///
    /// # Errors
    ///
    /// Write errors from an intervening flush.
    pub fn queue(&mut self, name: &str) -> KernelResult<bool> {
        if !self.knows(name) {
            return Ok(false);
        }
        self.buf.push_str(name);
        self.buf.push('\n');
        self.queued += 1;
        if self.queued >= self.batch {
            self.flush()?;
        }
        Ok(true)
    }

    /// Ships the buffered events as one write (one kernel drain). A no-op
    /// on an empty buffer. Returns the number of events shipped.
    ///
    /// # Errors
    ///
    /// Write errors from the ring node.
    pub fn flush(&mut self) -> KernelResult<usize> {
        if self.queued == 0 {
            return Ok(0);
        }
        self.proc.write(self.ring_fd, self.buf.as_bytes())?;
        let shipped = self.queued;
        self.batches_sent += 1;
        self.events_sent += shipped as u64;
        self.buf.clear();
        self.queued = 0;
        Ok(shipped)
    }

    /// Batches shipped so far.
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent
    }

    /// Events shipped so far (excludes queued-but-unflushed ones).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Flushes any queued events, closes the descriptor and exits.
    ///
    /// # Errors
    ///
    /// Write errors from the final flush.
    pub fn shutdown(mut self) -> KernelResult<()> {
        self.flush()?;
        let _ = self.proc.close(self.ring_fd);
        self.proc.exit();
        Ok(())
    }
}

impl fmt::Debug for RingProducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingProducer")
            .field("pid", &self.proc.pid())
            .field("batch", &self.batch)
            .field("queued", &self.queued)
            .field("batches_sent", &self.batches_sent)
            .finish()
    }
}

/// Runs a full trace through `detectors` on the batched path: the
/// counterpart of [`crate::service::SdsService::run_trace`], shipping
/// detections in batches of `batch` events. The final flush happens before
/// returning, so the kernel state reflects the whole trace.
///
/// # Errors
///
/// Spawn or write errors from the ring node.
pub fn run_trace_batched<'a>(
    kernel: &Arc<Kernel>,
    detectors: &mut [Box<dyn Detector>],
    frames: impl IntoIterator<Item = &'a SensorFrame>,
    batch: usize,
) -> KernelResult<SdsReport> {
    let mut producer = RingProducer::spawn(kernel, batch)?;
    let mut report = SdsReport::default();
    for frame in frames {
        if frame.t > kernel.clock().now() {
            kernel.clock().set(frame.t);
        }
        for detector in detectors.iter_mut() {
            for event in detector.observe(frame) {
                if producer.queue(&event)? {
                    report.events.push(event);
                } else {
                    report.rejected.push(event);
                }
            }
        }
        report.frames += 1;
    }
    producer.shutdown()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{standard_detectors, SdsService};
    use sack_core::Sack;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::SecurityModule;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { P; }
        state_per { emergency: P; }
        per_rules { P: allow subject=* /dev/car/** wi; }
    "#;

    fn boot() -> (Arc<Kernel>, Arc<Sack>) {
        let sack = Sack::independent(POLICY).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).unwrap();
        (kernel, sack)
    }

    #[test]
    fn queue_and_flush_coalesce_one_batch() {
        let (kernel, sack) = boot();
        let mut producer = RingProducer::spawn(&kernel, 64).unwrap();
        for name in ["crash", "rescue_done", "crash"] {
            assert!(producer.queue(name).unwrap());
        }
        assert_eq!(producer.flush().unwrap(), 3);
        assert_eq!(producer.batches_sent(), 1);
        assert_eq!(sack.current_state_name(), "emergency");
        // The whole batch published exactly one transition.
        assert_eq!(sack.active().ssm.taken_count(), 1);
        producer.shutdown().unwrap();
    }

    #[test]
    fn full_batch_auto_flushes() {
        let (kernel, sack) = boot();
        let mut producer = RingProducer::spawn(&kernel, 2).unwrap();
        producer.queue("crash").unwrap();
        assert_eq!(sack.current_state_name(), "normal", "still buffered");
        producer.queue("rescue_done").unwrap();
        assert_eq!(producer.batches_sent(), 1, "batch boundary flushed");
        // crash then rescue_done coalesce back to normal (one publish of
        // the round trip would be from==to; the SSM records the self-loop).
        assert_eq!(sack.current_state_name(), "normal");
        producer.shutdown().unwrap();
    }

    #[test]
    fn unknown_events_filter_client_side() {
        let (kernel, sack) = boot();
        let mut producer = RingProducer::spawn(&kernel, 8).unwrap();
        assert!(producer.knows("crash"));
        assert!(!producer.knows("high_speed"));
        assert!(!producer.queue("high_speed").unwrap());
        assert!(producer.queue("crash").unwrap());
        producer.shutdown().unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        assert_eq!(
            sack.event_plane().unwrap().submitted(),
            1,
            "rejected event never entered the ring"
        );
    }

    #[test]
    fn batched_trace_matches_sync_final_state() {
        let trace = crate::traces::highway_crash(30);
        let (sync_kernel, sync_sack) = boot();
        let mut sds = SdsService::spawn(&sync_kernel, standard_detectors()).unwrap();
        let sync_report = sds.run_trace(&sync_kernel, &trace);
        sds.shutdown();

        let (batched_kernel, batched_sack) = boot();
        let mut detectors = standard_detectors();
        let batched_report =
            run_trace_batched(&batched_kernel, &mut detectors, &trace, 16).unwrap();

        assert_eq!(
            sync_sack.current_state_name(),
            batched_sack.current_state_name(),
            "both ingestion paths must land in the same state"
        );
        assert_eq!(sync_report.frames, batched_report.frames);
        assert_eq!(sync_report.events, batched_report.events);
        assert_eq!(sync_report.rejected, batched_report.rejected);
    }
}
