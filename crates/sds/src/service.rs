//! The situation detection service (SDS) — SACK's trusted user-space half.
//!
//! The SDS runs as an unprivileged process holding `CAP_MAC_ADMIN` only. It
//! feeds sensor frames through its detectors and writes each detected
//! situation event into SACKfs (`/sys/kernel/security/SACK/events`), which
//! is the only channel by which the kernel's situation state can change.

use std::fmt;
use std::time::Duration;

use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::error::KernelResult;
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::Kernel;
use sack_kernel::types::Fd;
use sack_kernel::uctx::UserContext;

use crate::detector::Detector;
use crate::sensors::SensorFrame;

/// Path of the SACKfs events node.
pub const SACK_EVENTS_PATH: &str = "/sys/kernel/security/SACK/events";

/// Summary of one trace run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SdsReport {
    /// Frames processed.
    pub frames: usize,
    /// Events detected and transmitted, in order.
    pub events: Vec<String>,
    /// Events the kernel rejected (unknown to the loaded policy).
    pub rejected: Vec<String>,
}

/// The SDS process: detectors plus the SACKfs writer.
pub struct SdsService {
    proc: UserContext,
    events_fd: Fd,
    detectors: Vec<Box<dyn Detector>>,
}

impl SdsService {
    /// Spawns the SDS as a new process on `kernel` (uid 500, holding only
    /// `CAP_MAC_ADMIN`) and opens the SACKfs events node.
    ///
    /// # Errors
    ///
    /// Fails if SACKfs is not attached ([`sack_core::Sack::attach`]).
    pub fn spawn(
        kernel: &std::sync::Arc<Kernel>,
        detectors: Vec<Box<dyn Detector>>,
    ) -> KernelResult<SdsService> {
        let cred = Credentials::user(500, 500).with_capability(Capability::MacAdmin);
        let proc = kernel.spawn(cred);
        let events_fd = proc.open(SACK_EVENTS_PATH, OpenFlags::write_only())?;
        Ok(SdsService {
            proc,
            events_fd,
            detectors,
        })
    }

    /// The SDS process handle.
    pub fn process(&self) -> &UserContext {
        &self.proc
    }

    /// Transmits one event by name (used directly by tests and by the
    /// emulated "react app" in the case study).
    ///
    /// # Errors
    ///
    /// `EINVAL` if the kernel policy does not know the event.
    pub fn send_event(&self, name: &str) -> KernelResult<()> {
        let line = format!("{name}\n");
        self.proc.write(self.events_fd, line.as_bytes())?;
        Ok(())
    }

    /// Feeds one frame through every detector, transmitting each detected
    /// event; returns the transmitted and rejected event names.
    pub fn process_frame(&mut self, frame: &SensorFrame) -> (Vec<String>, Vec<String>) {
        let mut sent = Vec::new();
        let mut rejected = Vec::new();
        let (proc, fd) = (&self.proc, self.events_fd);
        for detector in &mut self.detectors {
            for event in detector.observe(frame) {
                let line = format!("{event}\n");
                match proc.write(fd, line.as_bytes()) {
                    Ok(_) => sent.push(event),
                    Err(_) => rejected.push(event),
                }
            }
        }
        (sent, rejected)
    }

    /// Runs a full trace, advancing the kernel clock to each frame's
    /// timestamp before processing it.
    pub fn run_trace<'a>(
        &mut self,
        kernel: &Kernel,
        frames: impl IntoIterator<Item = &'a SensorFrame>,
    ) -> SdsReport {
        let mut report = SdsReport::default();
        for frame in frames {
            if frame.t > kernel.clock().now() {
                kernel.clock().set(frame.t);
            }
            let (sent, rejected) = self.process_frame(frame);
            report.events.extend(sent);
            report.rejected.extend(rejected);
            report.frames += 1;
        }
        report
    }

    /// Shuts the service down, closing its descriptor and exiting the task.
    pub fn shutdown(self) {
        let _ = self.proc.close(self.events_fd);
        self.proc.exit();
    }
}

impl fmt::Debug for SdsService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SdsService")
            .field("pid", &self.proc.pid())
            .field("detectors", &self.detectors.len())
            .finish()
    }
}

/// Convenience: the standard vehicle detector set used by the examples and
/// benchmarks (crash, speed hysteresis 30/60, driver presence, parking).
pub fn standard_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(crate::detector::CrashDetector::new()),
        Box::new(crate::detector::SpeedDetector::new(30.0, 60.0)),
        Box::new(crate::detector::DriverPresenceDetector::new()),
        Box::new(crate::detector::ParkingDetector::new(3)),
    ]
}

/// A no-op duration helper re-exported for trace code readability.
pub fn seconds(s: u64) -> Duration {
    Duration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_core::Sack;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::SecurityModule;
    use std::sync::Arc;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { P; }
        state_per { emergency: P; }
        per_rules { P: allow subject=* /dev/car/** wi; }
    "#;

    fn boot() -> (Arc<Kernel>, Arc<Sack>) {
        let sack = Sack::independent(POLICY).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).unwrap();
        (kernel, sack)
    }

    #[test]
    fn crash_frame_flips_kernel_state() {
        let (kernel, sack) = boot();
        let mut sds = SdsService::spawn(&kernel, standard_detectors()).unwrap();
        let calm = SensorFrame::parked(Duration::from_secs(1)).with_speed(50.0);
        let crash = SensorFrame::parked(Duration::from_secs(2))
            .with_speed(50.0)
            .with_accel(25.0);
        let (sent, _) = sds.process_frame(&calm);
        assert!(sent.iter().all(|e| e != "crash"));
        let (sent, rejected) = sds.process_frame(&crash);
        assert!(sent.contains(&"crash".to_string()));
        assert!(rejected.is_empty() || !rejected.contains(&"crash".to_string()));
        assert_eq!(sack.current_state_name(), "emergency");
        sds.shutdown();
    }

    #[test]
    fn events_unknown_to_policy_are_rejected_not_fatal() {
        let (kernel, sack) = boot();
        // Speed detector emits high_speed, which this policy doesn't know.
        let mut sds = SdsService::spawn(&kernel, standard_detectors()).unwrap();
        let fast = SensorFrame::parked(Duration::from_secs(1)).with_speed(120.0);
        let (sent, rejected) = sds.process_frame(&fast);
        assert!(rejected.contains(&"high_speed".to_string()));
        assert!(!sent.contains(&"high_speed".to_string()));
        assert_eq!(sack.current_state_name(), "normal");
        sds.shutdown();
    }

    #[test]
    fn run_trace_advances_clock_and_reports() {
        let (kernel, sack) = boot();
        let mut sds = SdsService::spawn(
            &kernel,
            vec![Box::new(crate::detector::CrashDetector::new())],
        )
        .unwrap();
        let frames = vec![
            SensorFrame::parked(Duration::from_secs(1)).with_speed(40.0),
            SensorFrame::parked(Duration::from_secs(2)).with_speed(45.0),
            SensorFrame::parked(Duration::from_secs(3))
                .with_speed(45.0)
                .with_airbag(true),
        ];
        let report = sds.run_trace(&kernel, &frames);
        assert_eq!(report.frames, 3);
        assert_eq!(report.events, vec!["crash"]);
        assert_eq!(kernel.clock().now(), Duration::from_secs(3));
        // The kernel history records the simulated event time.
        let active = sack.active();
        assert_eq!(active.ssm.history()[0].at, Duration::from_secs(3));
        sds.shutdown();
    }

    #[test]
    fn sds_without_sackfs_fails_to_spawn() {
        let kernel = Kernel::boot_default();
        assert!(SdsService::spawn(&kernel, standard_detectors()).is_err());
    }
}
