//! Trace (de)serialization: a line-oriented CSV format so recorded or
//! hand-authored scenarios can be stored in the simulated VFS (or a real
//! file) and replayed bit-identically.
//!
//! Format, one frame per line (header optional, `#` comments allowed):
//!
//! ```text
//! t_ms,speed_kmh,accel_g,lat,lon,driver,airbag,ignition
//! 0,0.0,0.0,48.7758,9.1829,1,0,0
//! 1000,35.5,0.1,48.7760,9.1831,1,0,1
//! ```

use std::fmt;
use std::time::Duration;

use crate::sensors::SensorFrame;

/// Header line written by [`to_csv`].
pub const CSV_HEADER: &str = "t_ms,speed_kmh,accel_g,lat,lon,driver,airbag,ignition";

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes frames to CSV (with header).
pub fn to_csv<'a>(frames: impl IntoIterator<Item = &'a SensorFrame>) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for f in frames {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            f.t.as_millis(),
            f.speed_kmh,
            f.accel_g,
            f.gps.0,
            f.gps.1,
            u8::from(f.driver_present),
            u8::from(f.airbag_deployed),
            u8::from(f.ignition_on),
        ));
    }
    out
}

/// Parses a CSV trace. Frames must be in non-decreasing time order.
///
/// # Errors
///
/// [`ParseTraceError`] with the offending line for malformed rows, wrong
/// field counts, or time going backwards.
pub fn from_csv(text: &str) -> Result<Vec<SensorFrame>, ParseTraceError> {
    let mut frames = Vec::new();
    let mut last_t = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line == CSV_HEADER {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 8 {
            return Err(ParseTraceError::new(
                lineno,
                format!("expected 8 fields, found {}", fields.len()),
            ));
        }
        let num = |idx: usize, what: &str| -> Result<f64, ParseTraceError> {
            fields[idx].parse::<f64>().map_err(|_| {
                ParseTraceError::new(lineno, format!("invalid {what} `{}`", fields[idx]))
            })
        };
        let flag = |idx: usize, what: &str| -> Result<bool, ParseTraceError> {
            match fields[idx] {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(ParseTraceError::new(
                    lineno,
                    format!("invalid {what} `{other}` (expected 0 or 1)"),
                )),
            }
        };
        let t_ms = fields[0]
            .parse::<u64>()
            .map_err(|_| ParseTraceError::new(lineno, format!("invalid t_ms `{}`", fields[0])))?;
        let t = Duration::from_millis(t_ms);
        if let Some(prev) = last_t {
            if t < prev {
                return Err(ParseTraceError::new(lineno, "time goes backwards"));
            }
        }
        last_t = Some(t);
        let speed = num(1, "speed_kmh")?;
        if speed < 0.0 {
            return Err(ParseTraceError::new(lineno, "negative speed"));
        }
        frames.push(SensorFrame {
            t,
            speed_kmh: speed,
            accel_g: num(2, "accel_g")?,
            gps: (num(3, "lat")?, num(4, "lon")?),
            driver_present: flag(5, "driver")?,
            airbag_deployed: flag(6, "airbag")?,
            ignition_on: flag(7, "ignition")?,
        });
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces;

    #[test]
    fn roundtrip_generated_traces() {
        for trace in [
            traces::city_drive(5),
            traces::highway_crash(8),
            traces::park_and_return(10),
        ] {
            let csv = to_csv(&trace);
            let parsed = from_csv(&csv).unwrap();
            assert_eq!(parsed, trace);
        }
    }

    #[test]
    fn parses_comments_and_header() {
        let text = "# hand-authored\nt_ms,speed_kmh,accel_g,lat,lon,driver,airbag,ignition\n\
                    0,0,0,48.0,9.0,1,0,0\n\n500,12.5,0.1,48.0,9.0,1,0,1\n";
        let frames = from_csv(text).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].t, Duration::from_millis(500));
        assert_eq!(frames[1].speed_kmh, 12.5);
        assert!(frames[1].ignition_on);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert_eq!(from_csv("1,2,3").unwrap_err().line, 1);
        assert!(from_csv("0,abc,0,0,0,1,0,0")
            .unwrap_err()
            .to_string()
            .contains("speed"));
        assert!(from_csv("0,0,0,0,0,2,0,0")
            .unwrap_err()
            .to_string()
            .contains("driver"));
        assert!(from_csv("0,-5,0,0,0,1,0,0")
            .unwrap_err()
            .to_string()
            .contains("negative"));
        let backwards = "1000,0,0,0,0,1,0,0\n500,0,0,0,0,1,0,0";
        assert!(from_csv(backwards)
            .unwrap_err()
            .to_string()
            .contains("backwards"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(from_csv("").unwrap().is_empty());
        assert!(from_csv("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn trace_stored_in_simulated_vfs_replays() {
        use sack_kernel::{Credentials, Kernel};
        let kernel = Kernel::boot_default();
        let proc = kernel.spawn(Credentials::root());
        let trace = traces::highway_crash(4);
        proc.write_file("/etc/trace.csv", to_csv(&trace).as_bytes())
            .unwrap();
        let loaded =
            from_csv(std::str::from_utf8(&proc.read_to_vec("/etc/trace.csv").unwrap()).unwrap())
                .unwrap();
        assert_eq!(loaded, trace);
    }
}
