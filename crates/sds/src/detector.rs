//! Situation-event detectors.
//!
//! Each detector watches the sensor stream for one class of situation
//! change and emits *edge-triggered* events (SACK's C1 design: "SDS
//! monitors situation events and only transmits them when detected" — the
//! stream of frames is never forwarded to the kernel, only the events).

use crate::sensors::SensorFrame;

/// A situation-event detector over the sensor stream.
pub trait Detector: Send {
    /// Detector name, for diagnostics.
    fn name(&self) -> &str;

    /// Consumes one frame; returns the situation events it detected.
    fn observe(&mut self, frame: &SensorFrame) -> Vec<String>;
}

/// Detects vehicle crashes from the deceleration pulse and airbag flag.
///
/// Emits `crash` once per crash episode (re-armed when conditions clear).
#[derive(Debug)]
pub struct CrashDetector {
    threshold_g: f64,
    in_crash: bool,
}

impl CrashDetector {
    /// NHTSA-style 8 g pulse threshold by default.
    pub fn new() -> CrashDetector {
        CrashDetector::with_threshold(8.0)
    }

    /// Custom pulse threshold in g.
    pub fn with_threshold(threshold_g: f64) -> CrashDetector {
        CrashDetector {
            threshold_g,
            in_crash: false,
        }
    }
}

impl Default for CrashDetector {
    fn default() -> Self {
        CrashDetector::new()
    }
}

impl Detector for CrashDetector {
    fn name(&self) -> &str {
        "crash"
    }

    fn observe(&mut self, frame: &SensorFrame) -> Vec<String> {
        let crashed = frame.airbag_deployed || frame.accel_g >= self.threshold_g;
        if crashed && !self.in_crash {
            self.in_crash = true;
            vec!["crash".to_string()]
        } else {
            if !crashed {
                self.in_crash = false;
            }
            Vec::new()
        }
    }
}

/// Detects high-speed / low-speed situations with hysteresis (the Fig. 3b
/// scenario gates a critical file on speed).
#[derive(Debug)]
pub struct SpeedDetector {
    high_kmh: f64,
    low_kmh: f64,
    is_high: bool,
}

impl SpeedDetector {
    /// High-speed above `high_kmh`, back to low below `low_kmh`.
    ///
    /// # Panics
    ///
    /// Panics unless `low_kmh < high_kmh` (hysteresis band must be valid).
    pub fn new(low_kmh: f64, high_kmh: f64) -> SpeedDetector {
        assert!(
            low_kmh < high_kmh,
            "hysteresis band must satisfy low < high"
        );
        SpeedDetector {
            high_kmh,
            low_kmh,
            is_high: false,
        }
    }
}

impl Detector for SpeedDetector {
    fn name(&self) -> &str {
        "speed"
    }

    fn observe(&mut self, frame: &SensorFrame) -> Vec<String> {
        if !self.is_high && frame.speed_kmh >= self.high_kmh {
            self.is_high = true;
            vec!["high_speed".to_string()]
        } else if self.is_high && frame.speed_kmh <= self.low_kmh {
            self.is_high = false;
            vec!["low_speed".to_string()]
        } else {
            Vec::new()
        }
    }
}

/// Detects driver entry/exit (parking-with-driver vs parking-without-driver
/// in the paper's Fig. 2 machine).
#[derive(Debug, Default)]
pub struct DriverPresenceDetector {
    last_present: Option<bool>,
}

impl DriverPresenceDetector {
    /// Creates the detector; the first frame establishes the baseline.
    pub fn new() -> DriverPresenceDetector {
        DriverPresenceDetector::default()
    }
}

impl Detector for DriverPresenceDetector {
    fn name(&self) -> &str {
        "driver-presence"
    }

    fn observe(&mut self, frame: &SensorFrame) -> Vec<String> {
        let events = match self.last_present {
            Some(prev) if prev != frame.driver_present => {
                if frame.driver_present {
                    vec!["driver_entered".to_string()]
                } else {
                    vec!["driver_left".to_string()]
                }
            }
            _ => Vec::new(),
        };
        self.last_present = Some(frame.driver_present);
        events
    }
}

/// Detects driving/parking transitions: `start_driving` when the vehicle
/// moves, `park` after the vehicle has been stationary for `still_frames`
/// consecutive frames with ignition engaged-then-off semantics relaxed.
#[derive(Debug)]
pub struct ParkingDetector {
    still_frames: u32,
    still_count: u32,
    driving: bool,
}

impl ParkingDetector {
    /// `still_frames` consecutive stationary frames declare a parked state.
    pub fn new(still_frames: u32) -> ParkingDetector {
        ParkingDetector {
            still_frames,
            still_count: 0,
            driving: false,
        }
    }
}

impl Detector for ParkingDetector {
    fn name(&self) -> &str {
        "parking"
    }

    fn observe(&mut self, frame: &SensorFrame) -> Vec<String> {
        if frame.speed_kmh > 0.5 {
            self.still_count = 0;
            if !self.driving {
                self.driving = true;
                return vec!["start_driving".to_string()];
            }
        } else if self.driving {
            self.still_count += 1;
            if self.still_count >= self.still_frames {
                self.driving = false;
                self.still_count = 0;
                return vec!["park".to_string()];
            }
        }
        Vec::new()
    }
}

/// Detects entry/exit of a circular geofence (the "location" environmental
/// attribute the paper cites for ABAC-style policies): emits
/// `entered_<name>` / `left_<name>` on boundary crossings.
#[derive(Debug)]
pub struct GeofenceDetector {
    name: String,
    center: (f64, f64),
    radius_deg: f64,
    inside: Option<bool>,
}

impl GeofenceDetector {
    /// A fence around `center` with radius given in coordinate degrees
    /// (small-area approximation, adequate for depot/home zones).
    ///
    /// # Panics
    ///
    /// Panics for non-positive radii.
    pub fn new(name: impl Into<String>, center: (f64, f64), radius_deg: f64) -> GeofenceDetector {
        assert!(radius_deg > 0.0, "geofence radius must be positive");
        GeofenceDetector {
            name: name.into(),
            center,
            radius_deg,
            inside: None,
        }
    }

    fn contains(&self, gps: (f64, f64)) -> bool {
        let d_lat = gps.0 - self.center.0;
        let d_lon = gps.1 - self.center.1;
        (d_lat * d_lat + d_lon * d_lon).sqrt() <= self.radius_deg
    }
}

impl Detector for GeofenceDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, frame: &SensorFrame) -> Vec<String> {
        let now_inside = self.contains(frame.gps);
        let events = match self.inside {
            Some(prev) if prev != now_inside => {
                if now_inside {
                    vec![format!("entered_{}", self.name)]
                } else {
                    vec![format!("left_{}", self.name)]
                }
            }
            None if now_inside => vec![format!("entered_{}", self.name)],
            _ => Vec::new(),
        };
        self.inside = Some(now_inside);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn frame(speed: f64) -> SensorFrame {
        SensorFrame::parked(Duration::ZERO).with_speed(speed)
    }

    #[test]
    fn crash_detector_edge_triggers_once() {
        let mut d = CrashDetector::new();
        assert!(d.observe(&frame(50.0)).is_empty());
        let crash_frame = frame(50.0).with_accel(20.0);
        assert_eq!(d.observe(&crash_frame), vec!["crash"]);
        // Still crashing: no repeat event.
        assert!(d.observe(&crash_frame).is_empty());
        // Clears, then crashes again: new event.
        assert!(d.observe(&frame(0.0)).is_empty());
        assert_eq!(d.observe(&frame(0.0).with_airbag(true)), vec!["crash"]);
    }

    #[test]
    fn crash_detector_airbag_alone_triggers() {
        let mut d = CrashDetector::new();
        assert_eq!(d.observe(&frame(10.0).with_airbag(true)), vec!["crash"]);
    }

    #[test]
    fn speed_detector_hysteresis() {
        let mut d = SpeedDetector::new(30.0, 60.0);
        assert!(d.observe(&frame(50.0)).is_empty(), "below high threshold");
        assert_eq!(d.observe(&frame(65.0)), vec!["high_speed"]);
        // In the band: no flapping.
        assert!(d.observe(&frame(45.0)).is_empty());
        assert!(d.observe(&frame(61.0)).is_empty());
        assert_eq!(d.observe(&frame(25.0)), vec!["low_speed"]);
        assert!(d.observe(&frame(25.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn speed_detector_rejects_inverted_band() {
        let _ = SpeedDetector::new(60.0, 30.0);
    }

    #[test]
    fn driver_presence_edges() {
        let mut d = DriverPresenceDetector::new();
        assert!(
            d.observe(&frame(0.0).with_driver(true)).is_empty(),
            "baseline"
        );
        assert_eq!(
            d.observe(&frame(0.0).with_driver(false)),
            vec!["driver_left"]
        );
        assert!(d.observe(&frame(0.0).with_driver(false)).is_empty());
        assert_eq!(
            d.observe(&frame(0.0).with_driver(true)),
            vec!["driver_entered"]
        );
    }

    #[test]
    fn geofence_edges() {
        let mut d = GeofenceDetector::new("depot", (48.0, 9.0), 0.01);
        let mut at = |lat: f64, lon: f64| {
            let mut f = frame(0.0);
            f.gps = (lat, lon);
            d.observe(&f)
        };
        // First frame inside announces entry (baseline is "unknown").
        assert_eq!(at(48.0, 9.0), vec!["entered_depot"]);
        assert!(at(48.001, 9.001).is_empty(), "still inside");
        assert_eq!(at(48.5, 9.5), vec!["left_depot"]);
        assert!(at(48.5, 9.5).is_empty());
        assert_eq!(at(48.0, 9.0), vec!["entered_depot"]);
    }

    #[test]
    fn geofence_starting_outside_stays_quiet() {
        let mut d = GeofenceDetector::new("depot", (48.0, 9.0), 0.01);
        let mut f = frame(0.0);
        f.gps = (50.0, 10.0);
        assert!(
            d.observe(&f).is_empty(),
            "no exit event without prior entry"
        );
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn geofence_rejects_bad_radius() {
        let _ = GeofenceDetector::new("x", (0.0, 0.0), 0.0);
    }

    #[test]
    fn parking_detector_requires_sustained_stillness() {
        let mut d = ParkingDetector::new(3);
        assert_eq!(d.observe(&frame(20.0)), vec!["start_driving"]);
        assert!(d.observe(&frame(0.0)).is_empty());
        assert!(d.observe(&frame(0.0)).is_empty());
        // Moves again: counter resets.
        assert!(d.observe(&frame(5.0)).is_empty());
        assert!(d.observe(&frame(0.0)).is_empty());
        assert!(d.observe(&frame(0.0)).is_empty());
        assert_eq!(d.observe(&frame(0.0)), vec!["park"]);
        // Parked: no repeat until it drives again.
        assert!(d.observe(&frame(0.0)).is_empty());
        assert_eq!(d.observe(&frame(10.0)), vec!["start_driving"]);
    }
}
