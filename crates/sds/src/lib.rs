//! # sack-sds — the situation detection service
//!
//! SACK's trusted user-space component (paper Fig. 1): monitors environment
//! information, detects situation events, and transmits them to the kernel
//! through SACKfs. This crate provides the sensor-frame model
//! ([`sensors`]), edge-triggered detectors ([`detector`]), deterministic
//! synthetic driving traces standing in for real road data ([`traces`]),
//! and the service loop that writes detected events into
//! `/sys/kernel/security/SACK/events` ([`service`]).
//!
//! ## Example
//!
//! ```
//! use sack_sds::detector::{CrashDetector, Detector};
//! use sack_sds::sensors::SensorFrame;
//! use std::time::Duration;
//!
//! let mut detector = CrashDetector::new();
//! let crash = SensorFrame::parked(Duration::ZERO).with_accel(25.0);
//! assert_eq!(detector.observe(&crash), vec!["crash"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detector;
pub mod ring;
pub mod sensors;
pub mod service;
pub mod tracefile;
pub mod traces;

pub use detector::{
    CrashDetector, Detector, DriverPresenceDetector, GeofenceDetector, ParkingDetector,
    SpeedDetector,
};
pub use ring::{run_trace_batched, RingProducer, SACK_RING_PATH};
pub use sensors::SensorFrame;
pub use service::{standard_detectors, SdsReport, SdsService, SACK_EVENTS_PATH};
pub use tracefile::{from_csv, to_csv, ParseTraceError};
pub use traces::{city_drive, highway_crash, park_and_return, speed_oscillation, Trace};
