//! The offline policy simulator: answer "who can do what, in which
//! situation?" for a SACK policy without booting anything — the CI-side
//! counterpart of the in-kernel enforcement.
//!
//! Run with: `cargo run --example policy_simulator`

use std::error::Error;

use sack_apparmor::profile::FilePerms;
use sack_core::simulate::{AccessQuery, PolicySimulator, Step};
use sack_vehicle::policies::VEHICLE_SACK_POLICY;

fn main() -> Result<(), Box<dyn Error>> {
    let sim = PolicySimulator::new(VEHICLE_SACK_POLICY)?;

    // 1. A scripted what-if timeline.
    println!("== timeline: crash during a drive ==");
    let script = vec![
        Step::Access(AccessQuery::from_exe(
            "/usr/bin/rescue_daemon",
            "/dev/car/door0",
            FilePerms::WRITE | FilePerms::IOCTL,
        )),
        Step::Event("start_driving".into()),
        Step::Access(AccessQuery::from_exe(
            "/usr/bin/media_app",
            "/dev/car/audio",
            FilePerms::WRITE,
        )),
        Step::Event("crash".into()),
        Step::Access(AccessQuery::from_exe(
            "/usr/bin/rescue_daemon",
            "/dev/car/door0",
            FilePerms::WRITE | FilePerms::IOCTL,
        )),
        Step::Event("emergency_resolved".into()),
    ];
    for result in sim.run(&script) {
        println!("  {result}");
    }

    // 2. Exhaustive per-state answers for the sensitive permission.
    println!("\n== door control across every reachable state ==");
    let door = AccessQuery::from_exe(
        "/usr/bin/rescue_daemon",
        "/dev/car/door0",
        FilePerms::WRITE | FilePerms::IOCTL,
    );
    for (state, allowed) in sim.query_all_reachable_states(&door) {
        println!("  {state:<24} {}", if allowed { "ALLOW" } else { "DENY" });
    }

    // 3. The machine itself, for documentation (paper Fig. 2).
    println!("\n== state machine (Graphviz) ==");
    let active = sack_core::Sack::independent(VEHICLE_SACK_POLICY)?.active();
    println!("{}", active.ssm.to_dot());
    Ok(())
}
