//! The KOFFEE-class command-injection attack (CVE-2020-8539), run against
//! three systems side by side:
//!
//! 1. a DAC-only kernel with the user-space permission framework — the
//!    attack bypasses the framework and every command lands;
//! 2. AppArmor with the stock vehicle profiles — blocked because profiles
//!    never grant device writes (but so is the legitimate rescue flow);
//! 3. independent SACK — blocked in normal situations, while the emergency
//!    break-the-glass path still works.
//!
//! Run with: `cargo run --example koffee_attack`

use std::error::Error;
use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_sds::service::{standard_detectors, SdsService};
use sack_vehicle::attack::koffee_injection;
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{AppManifest, IviPermission, IviSystem};
use sack_vehicle::policies::{VEHICLE_APPARMOR_PROFILES, VEHICLE_SACK_POLICY};

/// Installs hardware + a compromised media app, runs the injection, and
/// prints the outcome.
fn run_attack(label: &str, kernel: Arc<Kernel>) -> Result<usize, Box<dyn Error>> {
    let hw = CarHardware::install(&kernel, 2, 2)?;
    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    // The media app legitimately holds only SET_VOLUME in user space.
    let media = ivi.install_app(
        AppManifest::new("media_app", "/usr/bin/media_app", 1001).grant(IviPermission::SetVolume),
    )?;

    println!("--- {label} ---");
    // The attacker controls the media app's process and injects commands
    // directly at the kernel interface, skipping the IVI framework.
    let report = koffee_injection(media.process(), 2, 2);
    print!("{report}");
    println!(
        "physical state: doors locked={}, window0={}%, volume={}",
        hw.all_doors_locked(),
        hw.windows()[0].position(),
        hw.audio().volume()
    );
    println!();
    Ok(report.successes())
}

fn main() -> Result<(), Box<dyn Error>> {
    // 1. DAC-only: the framework is the only line of defence, and the
    //    attack never visits it.
    let landed = run_attack(
        "DAC only (user-space framework bypassed)",
        Kernel::boot_default(),
    )?;
    assert!(landed > 0);

    // 2. AppArmor with the stock vehicle profiles.
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES)?;
    let apparmor = AppArmor::new(db);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    let landed = run_attack("AppArmor (static profiles)", kernel)?;
    assert_eq!(landed, 0);

    // 3. Independent SACK with the situation-aware vehicle policy. The
    //    vehicle is *driving* when the attack hits — the highest-risk
    //    situation, in which the policy grants nothing but reads.
    let sack = Sack::independent(VEHICLE_SACK_POLICY)?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?;
    let sds = SdsService::spawn(&kernel, standard_detectors())?;
    sds.send_event("start_driving")?;
    let landed = run_attack(
        &format!(
            "independent SACK (situation: {})",
            sack.current_state_name()
        ),
        Arc::clone(&kernel),
    )?;
    assert_eq!(landed, 0);

    // ... and unlike the static-profile world, the emergency flow still
    // works: after a crash the rescue daemon can open the doors.
    sds.send_event("crash")?;
    println!(
        "after a crash the situation is `{}` — the rescue daemon's door \
         control now succeeds (see emergency_door_unlock example)",
        sack.current_state_name()
    );
    sds.shutdown();

    Ok(())
}
