//! SACK-enhanced AppArmor (the paper's second prototype): SACK performs no
//! per-access checks of its own — on every situation transition it patches
//! the AppArmor profiles, so the per-access cost is exactly AppArmor's.
//!
//! Run with: `cargo run --example enhanced_apparmor`

use std::error::Error;
use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use sack_sds::service::{standard_detectors, SdsService};
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{standard_manifests, IviSystem};
use sack_vehicle::policies::{VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY};

fn print_profile(apparmor: &AppArmor, name: &str) {
    let compiled = apparmor.policy().get(name).expect("profile loaded");
    println!(
        "  profile {name} ({} rules):",
        compiled.profile().path_rules.len()
    );
    for rule in &compiled.profile().path_rules {
        let origin = rule
            .origin
            .as_deref()
            .map(|o| format!("   [origin: {o}]"))
            .unwrap_or_default();
        println!("    {rule}{origin}");
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // Load the stock AppArmor vehicle profiles.
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES)?;
    let apparmor = AppArmor::new(db);

    // Build SACK in enhanced mode over that AppArmor instance, then boot
    // with the stacking order CONFIG_LSM="SACK,AppArmor".
    let sack = Sack::enhanced_apparmor(VEHICLE_ENHANCED_POLICY, Arc::clone(&apparmor))?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?;
    println!(
        "LSM stacking order: {:?} (SACK checks first, as in the paper)",
        kernel.lsm().module_names()
    );

    let hw = CarHardware::install(&kernel, 2, 2)?;
    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    let mut apps = Vec::new();
    for manifest in standard_manifests() {
        apps.push(ivi.install_app(manifest)?);
    }
    let rescue = &apps[2];
    println!(
        "rescue daemon confined under: {:?}",
        apparmor.current_profile(rescue.process().pid())
    );

    println!(
        "\nsituation: {} — rescue_daemon profile:",
        sack.current_state_name()
    );
    print_profile(&apparmor, "rescue_daemon");
    match rescue.unlock_door(0) {
        Ok(()) => println!("door unlock: ALLOWED (unexpected!)"),
        Err(e) => println!("door unlock: denied by AppArmor -> {e}"),
    }

    // Crash: SACK injects the CONTROL_CAR_DOORS rules into the profile.
    let sds = SdsService::spawn(&kernel, standard_detectors())?;
    sds.send_event("crash")?;
    println!(
        "\nsituation: {} — rescue_daemon profile after SACK patch:",
        sack.current_state_name()
    );
    print_profile(&apparmor, "rescue_daemon");
    rescue.unlock_door(0)?;
    println!(
        "door unlock: ALLOWED (door0 locked: {})",
        hw.doors()[0].is_locked()
    );
    assert!(!hw.doors()[0].is_locked());

    // Resolve: the injected rules are retracted wholesale by origin tag.
    sds.send_event("emergency_resolved")?;
    println!(
        "\nsituation: {} — profile after retraction:",
        sack.current_state_name()
    );
    print_profile(&apparmor, "rescue_daemon");
    match rescue.unlock_door(1) {
        Ok(()) => println!("door unlock: ALLOWED (unexpected!)"),
        Err(e) => println!("door unlock: denied again -> {e}"),
    }

    println!(
        "\nSACK performed {} access checks of its own (enhanced mode is pass-through)",
        sack.stats()
            .checks
            .load(std::sync::atomic::Ordering::Relaxed)
    );

    sds.shutdown();
    Ok(())
}
