//! The paper's §IV-C case study (Fig. 4): *allow unlock car door only in
//! emergencies* — end to end, with real device actuators, the IVI
//! emulator, the SDS consuming a crash trace, and independent SACK in the
//! kernel.
//!
//! Run with: `cargo run --example emergency_door_unlock`

use std::error::Error;
use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use sack_sds::service::{standard_detectors, SdsService};
use sack_sds::traces::highway_crash;
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{standard_manifests, IviSystem};
use sack_vehicle::policies::VEHICLE_SACK_POLICY;

fn main() -> Result<(), Box<dyn Error>> {
    // Boot: CONFIG_LSM="SACK", vehicle policy (Fig. 2 state machine).
    let sack = Sack::independent(VEHICLE_SACK_POLICY)?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?;

    // Car hardware and the IVI stack.
    let hw = CarHardware::install(&kernel, 4, 4)?;
    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    let mut apps = Vec::new();
    for manifest in standard_manifests() {
        apps.push(ivi.install_app(manifest)?);
    }
    let rescue = &apps[2]; // rescue_daemon: has CONTROL_CAR_DOORS in user space

    println!("situation: {}", sack.current_state_name());
    println!("doors locked: {}", hw.all_doors_locked());

    // Even the *privileged* rescue daemon cannot unlock doors in a normal
    // situation — its user-space permission is not enough, the kernel
    // denies the ioctl (principle of least privilege).
    println!("\n[normal] rescue daemon tries to unlock door 0:");
    match rescue.unlock_door(0) {
        Ok(()) => println!("  unlocked (unexpected!)"),
        Err(e) => println!("  denied in the kernel -> {e}"),
    }
    assert!(hw.doors()[0].is_locked());

    // The SDS watches the sensor stream; the vehicle drives, then crashes.
    let mut sds = SdsService::spawn(&kernel, standard_detectors())?;
    println!("\n[driving] replaying highway trace with a crash at t=10s ...");
    let report = sds.run_trace(&kernel, &highway_crash(10));
    println!(
        "  SDS transmitted events: {:?} (rejected: {:?})",
        report.events, report.rejected
    );
    println!("  situation: {}", sack.current_state_name());
    assert_eq!(sack.current_state_name(), "emergency");

    // Break-the-glass: the rescue daemon can now open doors and windows so
    // passengers can evacuate and rescuers can reach the cabin.
    println!("\n[emergency] rescue daemon unlocks doors and opens windows:");
    for i in 0..hw.doors().len() {
        rescue.unlock_door(i)?;
    }
    for i in 0..hw.windows().len() {
        rescue.open_window(i, 100)?;
    }
    println!("  all doors unlocked: {}", !hw.all_doors_locked());
    println!("  window 0 position: {}%", hw.windows()[0].position());
    assert!(!hw.all_doors_locked());

    // Media app still cannot touch the doors, emergency or not.
    println!("\n[emergency] media app tries the same:");
    match apps[0].unlock_door(1) {
        Ok(()) => println!("  unlocked (unexpected!)"),
        Err(e) => println!("  denied -> {e}"),
    }

    // The emergency is resolved; permissions snap back.
    sds.send_event("emergency_resolved")?;
    println!("\nsituation: {}", sack.current_state_name());
    match rescue.unlock_door(0) {
        Ok(()) => println!("rescue daemon door unlock: allowed (unexpected!)"),
        Err(e) => println!("rescue daemon door unlock: denied again -> {e}"),
    }

    sds.shutdown();
    Ok(())
}
