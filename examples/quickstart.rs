//! Quickstart: boot a simulated kernel with independent SACK, watch a
//! situation event change what a process may do.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;

const POLICY: &str = r#"
# Door control is an emergency-only permission.
states { normal = 0; emergency = 1; }
events { crash; rescue_done; }
transitions {
    normal -crash-> emergency;
    emergency -rescue_done-> normal;
}
initial normal;
permissions { NORMAL; CONTROL_CAR_DOORS; }
state_per {
    normal: NORMAL;
    emergency: NORMAL, CONTROL_CAR_DOORS;
}
per_rules {
    NORMAL: allow subject=* /dev/car/** r;
    CONTROL_CAR_DOORS: allow subject=* /dev/car/** wi;
}
"#;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Build the SACK module from policy text and boot a kernel with it
    //    stacked (CONFIG_LSM="SACK").
    let sack = Sack::independent(POLICY)?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?; // registers /sys/kernel/security/SACK/*

    // 2. Create the protected device file.
    kernel.vfs().mkdir_all(&"/dev/car".parse()?)?;
    kernel.vfs().create_file(
        &"/dev/car/door0".parse()?,
        sack_kernel::Mode(0o666),
        sack_kernel::Uid::ROOT,
        sack_kernel::Gid(0),
    )?;

    // 3. An application process (unprivileged).
    let app = kernel.spawn(Credentials::user(1000, 1000));
    // 4. The situation detection service: unprivileged + CAP_MAC_ADMIN.
    let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));

    println!("current situation: {}", sack.current_state_name());
    match app.open("/dev/car/door0", OpenFlags::write_only()) {
        Ok(_) => println!("  door write: ALLOWED (unexpected!)"),
        Err(e) => println!("  door write: denied -> {e}"),
    }

    // 5. A crash is detected; the SDS reports it through SACKfs.
    let fd = sds.open("/sys/kernel/security/SACK/events", OpenFlags::write_only())?;
    sds.write(fd, b"crash\n")?;
    println!(
        "SDS reported `crash`; situation: {}",
        sack.current_state_name()
    );

    match app.open("/dev/car/door0", OpenFlags::write_only()) {
        Ok(door) => {
            println!("  door write: ALLOWED — emergency grants CONTROL_CAR_DOORS");
            app.close(door)?;
        }
        Err(e) => println!("  door write: denied -> {e} (unexpected!)"),
    }

    // 6. Emergency over: the permission is retracted automatically.
    sds.write(fd, b"rescue_done\n")?;
    println!(
        "SDS reported `rescue_done`; situation: {}",
        sack.current_state_name()
    );
    match app.open("/dev/car/door0", OpenFlags::write_only()) {
        Ok(_) => println!("  door write: ALLOWED (unexpected!)"),
        Err(e) => println!("  door write: denied again -> {e}"),
    }

    Ok(())
}
