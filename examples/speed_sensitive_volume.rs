//! CVE-2023-6073 scenario from the paper's introduction: an attacker sets
//! the cabin volume to maximum. Dangerous while driving (distracts the
//! driver), harmless while parked — exactly the kind of *situation-
//! dependent* risk SACK expresses directly in policy.
//!
//! Run with: `cargo run --example speed_sensitive_volume`

use std::error::Error;
use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use sack_sds::sensors::SensorFrame;
use sack_sds::service::{standard_detectors, SdsService};
use sack_vehicle::attack::volume_max_attack;
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{AppManifest, IviPermission, IviSystem};
use sack_vehicle::policies::VEHICLE_SACK_POLICY;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    let sack = Sack::independent(VEHICLE_SACK_POLICY)?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?;
    let hw = CarHardware::install(&kernel, 2, 2)?;

    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    let media = ivi.install_app(
        AppManifest::new("media_app", "/usr/bin/media_app", 1001).grant(IviPermission::SetVolume),
    )?;
    let mut sds = SdsService::spawn(&kernel, standard_detectors())?;

    // Parked with the driver: volume changes are permitted
    // (SET_VOLUME_FREE is granted in parking_with_driver).
    println!("situation: {}", sack.current_state_name());
    let report = volume_max_attack(media.process());
    println!(
        "volume injection while parked: {} of 1 landed",
        report.successes()
    );
    println!("  cabin volume now: {}", hw.audio().volume());
    assert_eq!(report.successes(), 1);

    // Restore a sane volume, then start driving.
    media.set_volume(30)?;
    let driving = SensorFrame::parked(Duration::from_secs(10)).with_speed(50.0);
    sds.process_frame(&driving);
    println!("\nvehicle moving; situation: {}", sack.current_state_name());
    assert_eq!(sack.current_state_name(), "driving");

    // Same injection while driving: the write/ioctl on /dev/car/audio is
    // no longer mapped by any active permission — denied in the kernel.
    let report = volume_max_attack(media.process());
    println!(
        "volume injection while driving: {} of 1 landed",
        report.successes()
    );
    print!("{report}");
    println!("  cabin volume still: {}", hw.audio().volume());
    assert_eq!(report.successes(), 0);
    assert_eq!(hw.audio().volume(), 30);

    // Park again: the legitimate volume flow returns.
    for t in 11..18 {
        let frame = SensorFrame::parked(Duration::from_secs(t));
        sds.process_frame(&frame);
    }
    println!("\nparked again; situation: {}", sack.current_state_name());
    media.set_volume(45)?;
    println!(
        "media app set volume to {} through the framework",
        hw.audio().volume()
    );

    sds.shutdown();
    Ok(())
}
