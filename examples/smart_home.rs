//! Generality demo (paper §V: "SACK is a general solution ... applicable
//! to scenarios such as the smartphone, IoT and medical"): the same
//! framework, unmodified, enforcing *smart-home* situation policies —
//! optimistic access control à la Malkin et al. (cited by the paper):
//! restrictive by default, break-the-glass in emergencies.
//!
//! Situations: occupied / empty / fire_emergency.
//! * The cloud app may stream the indoor camera only while the home is
//!   empty (privacy while occupied).
//! * Door unlocking is local-panel-only — except during a fire, when the
//!   evacuation daemon may unlock everything.
//!
//! Run with: `cargo run --example smart_home`

use std::error::Error;
use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;

const HOME_POLICY: &str = r#"
states { occupied = 0; empty = 1; fire_emergency = 2; }
events { everyone_left; someone_home; smoke_detected; fire_cleared; }
transitions {
    occupied -everyone_left-> empty;
    empty -someone_home-> occupied;
    occupied -smoke_detected-> fire_emergency;
    empty -smoke_detected-> fire_emergency;
    fire_emergency -fire_cleared-> occupied;
}
initial occupied;
permissions {
    LOCAL_PANEL;
    CAMERA_STREAM;
    EVACUATE;
}
state_per {
    occupied: LOCAL_PANEL;
    empty: LOCAL_PANEL, CAMERA_STREAM;
    fire_emergency: LOCAL_PANEL, EVACUATE;
}
per_rules {
    LOCAL_PANEL: allow subject=/usr/bin/wall_panel /dev/home/** rwi;
    CAMERA_STREAM: allow subject=/usr/bin/cloud_agent /dev/home/camera r;
    EVACUATE: allow subject=/usr/bin/evac_daemon /dev/home/lock* wi;
}
"#;

fn main() -> Result<(), Box<dyn Error>> {
    let sack = Sack::independent(HOME_POLICY)?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?;

    // Home devices (plain files here; the vehicle crate shows the full
    // char-device treatment — the policy layer is identical).
    kernel.vfs().mkdir_all(&"/dev/home".parse()?)?;
    for node in ["lock_front", "lock_back", "camera", "thermostat"] {
        kernel.vfs().create_file(
            &format!("/dev/home/{node}").parse()?,
            sack_kernel::Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )?;
    }

    let spawn_app = |exe: &str, uid| -> Result<sack_kernel::UserContext, Box<dyn Error>> {
        kernel.vfs().create_file(
            &exe.parse()?,
            sack_kernel::Mode::EXEC,
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )?;
        let proc = kernel.spawn(Credentials::user(uid, uid));
        proc.exec(exe)?;
        Ok(proc)
    };
    let panel = spawn_app("/usr/bin/wall_panel", 100)?;
    let cloud = spawn_app("/usr/bin/cloud_agent", 200)?;
    let evac = spawn_app("/usr/bin/evac_daemon", 300)?;
    let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let events = sds.open("/sys/kernel/security/SACK/events", OpenFlags::write_only())?;

    let try_access =
        |who: &sack_kernel::UserContext, what: &str, flags: OpenFlags| -> &'static str {
            match who.open(what, flags) {
                Ok(fd) => {
                    who.close(fd).expect("close");
                    "ALLOW"
                }
                Err(_) => "deny",
            }
        };
    let report = |label: &str| {
        println!("[{label}] situation: {}", sack.current_state_name());
        println!(
            "  wall panel -> front lock (w):   {}",
            try_access(&panel, "/dev/home/lock_front", OpenFlags::write_only())
        );
        println!(
            "  cloud agent -> camera (r):      {}",
            try_access(&cloud, "/dev/home/camera", OpenFlags::read_only())
        );
        println!(
            "  evac daemon -> front lock (w):  {}",
            try_access(&evac, "/dev/home/lock_front", OpenFlags::write_only())
        );
    };

    report("family at home");
    assert_eq!(
        try_access(&cloud, "/dev/home/camera", OpenFlags::read_only()),
        "deny"
    );

    sds.write(events, b"everyone_left\n")?;
    report("everyone left");
    assert_eq!(
        try_access(&cloud, "/dev/home/camera", OpenFlags::read_only()),
        "ALLOW"
    );
    assert_eq!(
        try_access(&evac, "/dev/home/lock_front", OpenFlags::write_only()),
        "deny"
    );

    sds.write(events, b"smoke_detected\n")?;
    report("smoke detected");
    assert_eq!(
        try_access(&evac, "/dev/home/lock_front", OpenFlags::write_only()),
        "ALLOW"
    );
    assert_eq!(
        try_access(&cloud, "/dev/home/camera", OpenFlags::read_only()),
        "deny",
        "privacy holds even during the fire: only evacuation is break-the-glass"
    );

    sds.write(events, b"fire_cleared\n")?;
    report("fire cleared");
    println!("\nsame kernel, same module, same policy language — different domain.");
    Ok(())
}
