//! Regenerates the paper's evaluation tables as text:
//!
//! * **Table II** — LMBench under AppArmor (baseline), SACK-enhanced
//!   AppArmor, and independent SACK (plus the no-LSM reference);
//! * **Table III** — the same workload as the SACK rule count sweeps
//!   0/10/100/500/1000;
//! * **Fig. 3(a)** — mean overhead vs number of situation states;
//! * **Fig. 3(b)** — file-access overhead vs situation-transition period.
//!
//! Run with: `cargo run --release --example lmbench_report`
//! (set `LMBENCH_QUICK=1` for a fast, noisier pass).

use std::error::Error;
use std::time::Instant;

use sack_lmbench::report::{render_comparison, render_sweep};
use sack_lmbench::suite::{run_suite, Op, Scale};
use sack_lmbench::testbed::{LsmConfig, TestBed, TestBedOptions};

fn scale() -> Scale {
    if std::env::var_os("LMBENCH_QUICK").is_some() {
        Scale::quick()
    } else {
        Scale::standard()
    }
}

fn rounds() -> usize {
    if std::env::var_os("LMBENCH_QUICK").is_some() {
        2
    } else {
        3
    }
}

/// Runs the suite `rounds` times on each bed, interleaved (bed 1 round 1,
/// bed 2 round 1, ..., bed 1 round 2, ...) and min/max-combines per op —
/// the standard LMBench defence against drift between configurations.
fn run_interleaved<'a>(
    beds: &'a [(&'a str, TestBed)],
    scale: Scale,
    rounds: usize,
) -> Vec<(&'a str, sack_lmbench::suite::LmbenchResult)> {
    let mut results: Vec<(&str, sack_lmbench::suite::LmbenchResult)> = beds
        .iter()
        .map(|(label, _)| (*label, sack_lmbench::suite::LmbenchResult::default()))
        .collect();
    for round in 0..rounds {
        for (i, (label, bed)) in beds.iter().enumerate() {
            eprintln!("  round {}/{rounds}: {label}", round + 1);
            let run = run_suite(bed, scale);
            results[i].1.merge_best(&run);
        }
    }
    results
}

fn main() -> Result<(), Box<dyn Error>> {
    let scale = scale();
    let rounds = rounds();

    // ---------------- Table II ----------------
    // Paper methodology: "all by default policies" — the benchmark process
    // is not confined by any profile (as on stock Ubuntu), so what is
    // measured is the cost of the stacked hooks themselves.
    let unconfined = |config: LsmConfig| {
        let mut options = TestBedOptions::new(config);
        options.confined = false;
        TestBed::boot(&options)
    };
    eprintln!("Table II: booting testbeds (default policies, unconfined) ...");
    let beds: Vec<(&str, TestBed)> = vec![
        ("AppArmor (baseline)", unconfined(LsmConfig::AppArmor)),
        (
            "SACK-enhanced AppArmor",
            unconfined(LsmConfig::SackEnhancedAppArmor),
        ),
        ("Independent SACK", unconfined(LsmConfig::IndependentSack)),
        ("no LSM (reference)", unconfined(LsmConfig::NoLsm)),
    ];
    let results = run_interleaved(&beds, scale, rounds);
    let (base_label, baseline) = (&results[0].0, results[0].1.clone());
    let variants: Vec<(&str, &sack_lmbench::suite::LmbenchResult)> =
        results[1..].iter().map(|(l, r)| (*l, r)).collect();
    println!(
        "{}",
        render_comparison(
            "Table II: LMBench result of SACK (default policies)",
            (base_label, &baseline),
            &variants,
        )
    );
    for (label, result) in &results[1..=2] {
        println!(
            "mean overhead of {label} vs baseline: {:+.2}%",
            result.mean_overhead_vs(&baseline) * 100.0
        );
    }

    // Stress variant: the benchmark process confined under a real profile,
    // so AppArmor's per-access matching is on the measured path. This is
    // harsher than the paper's setup and shows where the costs live.
    eprintln!("Table II-b: booting testbeds (bench process confined) ...");
    let beds: Vec<(&str, TestBed)> = vec![
        (
            "AppArmor (baseline)",
            TestBed::boot(&TestBedOptions::new(LsmConfig::AppArmor)),
        ),
        (
            "SACK-enhanced AppArmor",
            TestBed::boot(&TestBedOptions::new(LsmConfig::SackEnhancedAppArmor)),
        ),
    ];
    let results = run_interleaved(&beds, scale, rounds);
    println!(
        "{}",
        render_comparison(
            "Table II-b (stress): bench process confined under the `bench` profile",
            (results[0].0, &results[0].1),
            &[(results[1].0, &results[1].1)],
        )
    );

    // ---------------- Table III ----------------
    println!();
    eprintln!("Table III: booting rule-count sweep ...");
    let labels = [
        "0 rules",
        "10 rules",
        "100 rules",
        "500 rules",
        "1000 rules",
    ];
    let rule_beds: Vec<(&str, TestBed)> = [0usize, 10, 100, 500, 1000]
        .into_iter()
        .zip(labels)
        .map(|(rules, label)| {
            (
                label,
                TestBed::boot(
                    &TestBedOptions::new(LsmConfig::SackEnhancedAppArmor).with_sack_rules(rules),
                ),
            )
        })
        .collect();
    let rule_results = run_interleaved(&rule_beds, scale, rounds);
    let rule_variants: Vec<(&str, &sack_lmbench::suite::LmbenchResult)> =
        rule_results[1..].iter().map(|(l, r)| (*l, r)).collect();
    println!(
        "{}",
        render_comparison(
            "Table III: LMBench vs number of SACK rules (SACK-enhanced AppArmor)",
            ("0 rules (baseline)", &rule_results[0].1),
            &rule_variants,
        )
    );

    // ---------------- Fig. 3(a) ----------------
    eprintln!("Fig. 3(a): booting state-count sweep ...");
    let state_labels = ["no-lsm", "2", "5", "10", "25", "50", "100"];
    let mut state_beds: Vec<(&str, TestBed)> = vec![(
        "no-lsm",
        TestBed::boot(&TestBedOptions::new(LsmConfig::NoLsm)),
    )];
    for (states, label) in [2usize, 5, 10, 25, 50, 100]
        .into_iter()
        .zip(&state_labels[1..])
    {
        state_beds.push((
            label,
            TestBed::boot(
                &TestBedOptions::new(LsmConfig::IndependentSack).with_sack_states(states),
            ),
        ));
    }
    let state_results = run_interleaved(&state_beds, scale, rounds);
    let no_lsm = &state_results[0].1;
    let mut points = Vec::new();
    for (label, result) in &state_results[1..] {
        // The paper reports file-operation overhead; average the file rows.
        let mut sum = 0.0;
        let mut n = 0;
        for op in [
            Op::OpenClose,
            Op::FileCreate0k,
            Op::FileDelete0k,
            Op::FileCreate10k,
            Op::FileDelete10k,
            Op::Io,
        ] {
            if let Some(o) = result.overhead_vs(no_lsm, op) {
                sum += o;
                n += 1;
            }
        }
        points.push((label.to_string(), sum / n.max(1) as f64));
    }
    println!(
        "{}",
        render_sweep(
            "Fig. 3(a): file-operation overhead vs number of situation states (independent SACK vs no-LSM)",
            "states",
            &points,
        )
    );

    // ---------------- Fig. 3(b) ----------------
    eprintln!("running Fig. 3(b) transition-frequency sweep ...");
    let iters = if std::env::var_os("LMBENCH_QUICK").is_some() {
        50_000u64
    } else {
        400_000
    };
    // The paper's sweep (1–1000 ms) plus two faster points.
    const PERIODS: [(&str, u64); 6] = [
        ("0.01ms", 10),
        ("0.1ms", 100),
        ("1ms", 1_000),
        ("10ms", 10_000),
        ("100ms", 100_000),
        ("1000ms", 1_000_000),
    ];

    fn sweep<R, T>(rounds: usize, iters: u64, read: R, toggle: T) -> Vec<(String, f64)>
    where
        R: Fn(),
        T: Fn(),
    {
        let measure = |accesses_per_toggle: u64| -> f64 {
            let start = Instant::now();
            for i in 0..iters {
                if accesses_per_toggle != u64::MAX && i % accesses_per_toggle == 0 {
                    toggle();
                }
                read();
            }
            start.elapsed().as_secs_f64() / iters as f64
        };
        // Interleaved min-of-rounds, same as the table methodology.
        let mut baseline = f64::INFINITY;
        let mut best = [f64::INFINITY; PERIODS.len()];
        for _ in 0..rounds {
            baseline = baseline.min(measure(u64::MAX));
            for (i, (_, toggle)) in PERIODS.iter().enumerate() {
                best[i] = best[i].min(measure(*toggle));
            }
        }
        PERIODS
            .iter()
            .zip(best)
            .map(|((label, _), per)| (label.to_string(), (per - baseline) / baseline))
            .collect()
    }

    // Independent SACK: a transition is an atomic rule-set swap, so the
    // curve should be flat (stronger than the paper's result).
    let bed = sack_bench::TransitionBed::boot();
    let points = sweep(rounds, iters, || bed.read_critical(), || bed.toggle_speed());
    println!(
        "{}",
        render_sweep(
            "Fig. 3(b), independent SACK: file-access overhead vs transition period (~1µs per access)",
            "period",
            &points,
        )
    );

    // SACK-enhanced AppArmor: each transition patches profiles, so the
    // overhead grows as the period shrinks — the paper's curve.
    let bed = sack_bench::EnhancedTransitionBed::boot();
    let points = sweep(rounds, iters, || bed.read_critical(), || bed.toggle_speed());
    println!(
        "{}",
        render_sweep(
            "Fig. 3(b), SACK-enhanced AppArmor: file-access overhead vs transition period",
            "period",
            &points,
        )
    );

    Ok(())
}
