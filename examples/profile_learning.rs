//! Authoring a baseline AppArmor profile for a new IVI application with
//! complain-mode learning (the `aa-logprof` workflow): run the app's real
//! behaviour under a `complain` profile, distill the audit log into rules,
//! apply them, switch to `enforce`.
//!
//! Run with: `cargo run --example profile_learning`

use std::error::Error;
use std::sync::Arc;

use sack_apparmor::logprof;
use sack_apparmor::{AppArmor, PolicyDb, Profile, ProfileMode};
use sack_kernel::cred::Credentials;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::{SecurityModule, SocketFamily};

fn main() -> Result<(), Box<dyn Error>> {
    let db = Arc::new(PolicyDb::new());
    db.load(Profile::new("climate_app").complain());
    let apparmor = AppArmor::new(Arc::clone(&db));
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();

    // A service the app talks to.
    let svc = kernel.spawn(Credentials::root());
    let listener = svc.listen(SocketFamily::Unix, "/run/climate.sock")?;

    // Run the app's normal behaviour under complain mode.
    let app = kernel.spawn(Credentials::user(1200, 1200));
    apparmor.set_profile(app.pid(), "climate_app")?;
    println!("phase 1: exercising the app under complain mode ...");
    app.write_file("/tmp/climate.cache", b"22.5C")?;
    app.read_to_vec("/tmp/climate.cache")?;
    let sock = app.connect(SocketFamily::Unix, "/run/climate.sock")?;
    app.write(sock, b"get-temp")?;
    let _server_side = svc.accept(&listener)?;
    app.close(sock)?;

    // Learn from the log.
    let log = apparmor.take_audit_log();
    println!("phase 2: {} audit events collected", log.len());
    let suggestions = logprof::suggest(&log);
    println!("suggested profile additions:\n{}", suggestions.render());
    let applied = logprof::apply(&db, &suggestions)?;
    println!("applied {applied} rules; switching to enforce mode\n");
    db.patch("climate_app", |p| p.mode = ProfileMode::Enforce)?;
    apparmor.refresh_confinement();

    // Enforce: learned behaviour passes, novel behaviour is denied.
    println!("phase 3: enforcing");
    println!(
        "  cache read:        {}",
        verdict(app.read_to_vec("/tmp/climate.cache").map(|_| ()))
    );
    println!(
        "  socket connect:    {}",
        verdict(
            app.connect(SocketFamily::Unix, "/run/climate.sock")
                .map(|_| ())
        )
    );
    println!(
        "  novel file write:  {}",
        // DAC would allow /tmp/hijack (mode 1777); only the learned
        // profile stands in the way.
        verdict(app.write_file("/tmp/hijack", b"x").map(|_| ()))
    );
    println!(
        "\nfinal profile:\n{}",
        db.get("climate_app").unwrap().profile()
    );
    Ok(())
}

fn verdict(r: Result<(), sack_kernel::KernelError>) -> String {
    match r {
        Ok(()) => "allowed".to_string(),
        Err(e) => format!("denied ({e})"),
    }
}
