//! The raw-CAN variant of the KOFFEE attack: a single `write(2)` on
//! `/dev/can0` carrying unlock/open/volume frames for the body ECU —
//! exactly the injection path of CVE-2020-8539, where the compromised IVI
//! writes frames the micom daemon forwards to the vehicle bus.
//!
//! Run with: `cargo run --example can_injection`

use std::error::Error;
use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::cred::Credentials;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_sds::service::{standard_detectors, SdsService};
use sack_vehicle::attack::koffee_can_injection;
use sack_vehicle::car::CarHardware;
use sack_vehicle::policies::VEHICLE_SACK_POLICY;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Without in-kernel mediation -----------------------------------
    println!("--- DAC-only kernel ---");
    let kernel = Kernel::boot_default();
    let hw = CarHardware::install(&kernel, 2, 2)?;
    let bus = hw.install_can(&kernel)?;
    let attacker = kernel.spawn(Credentials::user(1001, 1001));
    let report = koffee_can_injection(&attacker, 2, 2);
    print!("{report}");
    println!("frames on the bus:");
    for frame in bus.trace() {
        println!("  {frame}");
    }
    println!(
        "doors locked: {}, window0: {}%, volume: {}",
        hw.all_doors_locked(),
        hw.windows()[0].position(),
        hw.audio().volume()
    );
    assert!(!hw.all_doors_locked());

    // --- With SACK -------------------------------------------------------
    println!("\n--- independent SACK, driving situation ---");
    let sack = Sack::independent(VEHICLE_SACK_POLICY)?;
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel)?;
    let hw = CarHardware::install(&kernel, 2, 2)?;
    let bus = hw.install_can(&kernel)?;
    let sds = SdsService::spawn(&kernel, standard_detectors())?;
    sds.send_event("start_driving")?;

    let attacker = kernel.spawn(Credentials::user(1001, 1001));
    let report = koffee_can_injection(&attacker, 2, 2);
    print!("{report}");
    println!(
        "frames on the bus: {} (doors locked: {})",
        bus.trace().len(),
        hw.all_doors_locked()
    );
    assert!(report.fully_contained());
    assert!(bus.trace().is_empty());

    // The audit log tells the operator exactly what was tried, and in
    // which situation.
    println!("\nSACK audit log:");
    for record in sack.audit().records() {
        println!("  {record}");
    }

    sds.shutdown();
    Ok(())
}
