//! SACK's policy-checking tools (paper §III-D: "Our policy-checking tools
//! also handle errors and conflicts"): parse a policy, run the checker,
//! and print every error and warning with explanations.
//!
//! Run with: `cargo run --example policy_tools`

use std::error::Error;

use sack_core::policy::{check_policy, IssueSeverity};
use sack_core::SackPolicy;

const BROKEN_POLICY: &str = r#"
# A policy with several kinds of problems.
states {
    normal = 0;
    emergency = 1;
    limp_home = 1;       # duplicate encoding
    lonely = 3;          # unreachable
}
events { crash; crash; recover; }   # duplicate event
transitions {
    normal -crash-> emergency;
    normal -crash-> limp_home;      # nondeterministic
    emergency -recover-> normal;
    emergency -meteor-> normal;     # undefined event
}
initial normal;
permissions { P; P; UNUSED; }       # duplicate permission
state_per {
    emergency: P, GHOST;            # undefined permission
}
per_rules {
    P: allow subject=* /dev/car/** wi;
       deny  subject=* /dev/car/** wi;   # contradicts the allow
}
"#;

const FIXED_POLICY: &str = r#"
states { normal = 0; emergency = 1; }
events { crash; recover; }
transitions { normal -crash-> emergency; emergency -recover-> normal; }
initial normal;
permissions { P; }
state_per { normal: P; emergency: P; }
per_rules { P: allow subject=* /dev/car/** r; }
"#;

fn main() -> Result<(), Box<dyn Error>> {
    println!("== checking a broken policy ==");
    let ast = SackPolicy::parse(BROKEN_POLICY)?;
    let issues = check_policy(&ast);
    let errors = issues
        .iter()
        .filter(|i| i.severity == IssueSeverity::Error)
        .count();
    let warnings = issues.len() - errors;
    println!("{errors} errors, {warnings} warnings:");
    for issue in &issues {
        println!("  {issue}");
    }
    assert!(ast.compile().is_err(), "a policy with errors must not load");

    println!("\n== syntax errors carry line numbers ==");
    match SackPolicy::parse("states {\n  ok = 0;\n  broken here\n}") {
        Err(e) => println!("  {e}"),
        Ok(_) => unreachable!("parse must fail"),
    }

    println!("\n== the fixed policy loads cleanly ==");
    let compiled = SackPolicy::parse(FIXED_POLICY)?
        .compile()
        .map_err(|issues| format!("unexpected issues: {issues:?}"))?;
    println!(
        "  {} states, {} events, {} permissions, {} MAC rules, {} warnings",
        compiled.space().state_count(),
        compiled.space().event_count(),
        compiled.permissions().len(),
        compiled.rule_count(),
        compiled.warnings().len()
    );
    Ok(())
}
