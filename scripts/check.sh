#!/usr/bin/env bash
# One-shot CI gate: everything that must be green before a change ships.
#
#   1. cargo fmt --check          — formatting is canonical
#   2. cargo clippy -D warnings   — lint-clean across every target
#   3. cargo build --release      — the tier-1 build
#   4. cargo test -q              — the full test suite (unit, integration,
#                                   property, interleaving exhaustion,
#                                   schedule-executor, observer-effect
#                                   differential)
#   5. sack-analyze sync-lint     — no direct std::sync/std::thread use in
#                                   the protocol sources outside the
#                                   sync::shim seam (keeps the executor's
#                                   coverage from rotting)
#   6. sack-analyze sched --smoke — bounded deterministic-schedule
#                                   exploration of the real Rcu/cache code:
#                                   core scenarios pass, every planted
#                                   mutation is caught with a printed
#                                   counterexample, model conformance holds
#   7. sack-analyze trace --self-check
#                                 — boots a traced kernel and proves every
#                                   tracepoint fires, the flight recorder
#                                   replays a denial, and the metrics node
#                                   is valid Prometheus
#   8. contended sweep smoke      — the SMP sweep runner at 2 threads,
#                                   proving the contended path executes
#   9. sds sweep smoke            — the event-plane sweep runner on a
#                                   reduced grid, proving both ingestion
#                                   paths and the warm probe execute
#  10. profile-compile smoke      — a 2-worker parallel bulk load plus a
#                                   lazy load with one forced first-touch
#                                   compile, proving both pipeline paths
#                                   execute even where the benchmark
#                                   gate's parallel floor is exempt
#  11. fleet smoke                — boots 64 instances across 4 cohorts,
#                                   runs mixed traffic with a canary
#                                   denial spike mid-rollout, and asserts
#                                   the rollback fires and the aggregated
#                                   p99 matches a serial fold
#  12. sack-analyze fleet --self-check
#                                 — 3-cohort promote + rollback rollouts
#                                   with alert lints and a validated
#                                   fleet Prometheus endpoint
#  13. scripts/bench_gate.sh      — the hook-latency performance gate,
#                                   including the ≤MAX_TRACE_OVERHEAD
#                                   disabled-tracepoint observer gate, the
#                                   ≥MIN_SMP_EFFICIENCY scaling gate, the
#                                   ≥MIN_SDS_SPEEDUP batched-ingestion
#                                   gate, the ≤MAX_FLEET_WARM_IMPACT
#                                   scrape-impact gate and the
#                                   parallel-compile / cold-attach reload
#                                   gates
#  14. validate_bench_json.py     — BENCH_hook_latency.json schema check
#                                   (all gate keys present, ratios finite)
#
# Usage: scripts/check.sh [--no-bench] [--sanitize]
#   --no-bench  skip the benchmark gate (useful on loaded machines where
#               timing gates are noisy; the functional gates still run).
#   --sanitize  additionally run the sync/cache/smp tests under
#               ThreadSanitizer (requires a nightly toolchain with
#               rust-src; skipped with a notice when unavailable).
#
# Division of labour between the executor and TSan: the schedule executor
# (step 6) serialises every shim operation, so it proves *protocol logic*
# under sequential consistency — every interleaving at that granularity,
# deterministically. It cannot see weak-memory bugs (a wrong Ordering on a
# real atomic). The TSan lane runs the same tests on raw hardware
# concurrency where the compiler/CPU may actually reorder, covering the
# memory-model side the executor abstracts away. Neither subsumes the
# other; CI wants both.

set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=1
RUN_SANITIZE=0
for arg in "$@"; do
    case "$arg" in
        --no-bench) RUN_BENCH=0 ;;
        --sanitize) RUN_SANITIZE=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo test -q"
cargo test -q

step "sack-analyze sync-lint"
./target/release/sack-analyze sync-lint

step "sack-analyze sched --smoke"
./target/release/sack-analyze sched --smoke

step "sack-analyze trace --self-check"
./target/release/sack-analyze trace --self-check

step "contended sweep smoke (2 threads)"
cargo run --release --offline -p sack-lmbench --example contended_sweep -- \
    --threads 1,2 --iters 1000

step "sds event-plane sweep smoke"
cargo run --release --offline -p sack-lmbench --example sds_sweep -- \
    --rates 10000,100000 --events 2000

step "profile-compile pipeline smoke (2-worker bulk + lazy first touch)"
cargo run --release --offline -p sack-lmbench --example profile_compile_smoke

step "fleet_smoke (64 instances, canary denial spike, rollback + serial-fold p99)"
cargo run --release --offline -p sack-lmbench --example fleet_sweep -- --smoke

step "sack-analyze fleet --self-check"
./target/release/sack-analyze fleet --self-check

if [[ "$RUN_SANITIZE" == 1 ]]; then
    step "ThreadSanitizer lane (sync/cache/smp tests)"
    if rustup run nightly rustc --version >/dev/null 2>&1 \
        && rustup component list --toolchain nightly 2>/dev/null \
            | grep -q "rust-src.*(installed)"; then
        TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std --target "$TSAN_TARGET" \
            -p sack-kernel --lib sync:: smp:: -- --test-threads=1
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std --target "$TSAN_TARGET" \
            -p sack-core --lib cache:: -- --test-threads=1
    else
        echo "tsan lane skipped: nightly toolchain with rust-src not available"
    fi
else
    step "sanitizer lane skipped (pass --sanitize to enable)"
fi

if [[ "$RUN_BENCH" == 1 ]]; then
    step "scripts/bench_gate.sh"
    scripts/bench_gate.sh
else
    step "bench gate skipped (--no-bench)"
fi

step "validate BENCH_hook_latency.json schema"
python3 scripts/validate_bench_json.py BENCH_hook_latency.json

echo
echo "check.sh: all gates green"
