#!/usr/bin/env bash
# One-shot CI gate: everything that must be green before a change ships.
#
#   1. cargo fmt --check          — formatting is canonical
#   2. cargo clippy -D warnings   — lint-clean across every target
#   3. cargo build --release      — the tier-1 build
#   4. cargo test -q              — the full test suite (unit, integration,
#                                   property, interleaving exhaustion,
#                                   observer-effect differential)
#   5. sack-analyze trace --self-check
#                                 — boots a traced kernel and proves every
#                                   tracepoint fires, the flight recorder
#                                   replays a denial, and the metrics node
#                                   is valid Prometheus
#   6. contended sweep smoke      — the SMP sweep runner at 2 threads,
#                                   proving the contended path executes
#   7. scripts/bench_gate.sh      — the hook-latency performance gate,
#                                   including the ≤MAX_TRACE_OVERHEAD
#                                   disabled-tracepoint observer gate and
#                                   the ≥MIN_SMP_EFFICIENCY scaling gate
#   8. validate_bench_json.py     — BENCH_hook_latency.json schema check
#                                   (all gate keys present, ratios finite)
#
# Usage: scripts/check.sh [--no-bench]
#   --no-bench  skip the benchmark gate (useful on loaded machines where
#               timing gates are noisy; the functional gates still run).

set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=1
if [[ "${1:-}" == "--no-bench" ]]; then
    RUN_BENCH=0
fi

step() {
    echo
    echo "==> $*"
}

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo test -q"
cargo test -q

step "sack-analyze trace --self-check"
./target/release/sack-analyze trace --self-check

step "contended sweep smoke (2 threads)"
cargo run --release --offline -p sack-lmbench --example contended_sweep -- \
    --threads 1,2 --iters 1000

if [[ "$RUN_BENCH" == 1 ]]; then
    step "scripts/bench_gate.sh"
    scripts/bench_gate.sh
else
    step "bench gate skipped (--no-bench)"
fi

step "validate BENCH_hook_latency.json schema"
python3 scripts/validate_bench_json.py BENCH_hook_latency.json

echo
echo "check.sh: all gates green"
