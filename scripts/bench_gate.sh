#!/usr/bin/env bash
# Benchmark gate for the hook hot path (DESIGN.md §5.3, §7).
#
# Runs the decision-cache ablation in quick mode, extracts the warm-cache,
# uncached-DFA, and uncached-scan medians plus the steady-state cache hit
# rate and the 100/1k/10k rule-count sweep, writes them to
# BENCH_hook_latency.json at the repo root, and fails if:
#   * the warm cache is not at least MIN_SPEEDUP x faster than the
#     uncached scan on the 100-rule policy (epoch-tagged decision cache);
#   * the uncached DFA walk is not at least MIN_DFA_SPEEDUP x faster than
#     the uncached scan on the 1k-rule policy (unified per-state DFA);
#   * the DFA cold path degrades by more than MAX_DFA_DEGRADATION x
#     between the 100-rule and 10k-rule policies (O(|path|) flatness).
#
# Also runs the AppArmor profile-table bench and fails if:
#   * the compiled profile DFA is not at least MIN_AA_DFA_SPEEDUP x
#     faster than the legacy scan on a 1000-rule profile;
#   * an incremental single-profile recompile is not at least
#     MIN_INCR_RECOMPILE_SPEEDUP x faster than a full 100-profile
#     table rebuild.
#
# Also runs the observer-effect bench (DESIGN.md §8) and fails if:
#   * attached-but-disabled tracepoints cost more than
#     MAX_TRACE_OVERHEAD x the never-attached baseline on the warm
#     hook path (the "free when off" contract).
#
# Also runs the profile-compile reload sweep (DESIGN.md §12) and fails if:
#   * the parallel bulk compile of 1000 distinct profiles is not at least
#     min(MIN_PARALLEL_COMPILE_SPEEDUP, 0.7 x cores) x faster than the
#     1-worker serial baseline (single-core runners are exempt: there is
#     no parallelism to buy, so the check is skipped with a notice);
#   * the lazy cold-attach path (lazy reload of 1000 profiles plus one
#     first-touch compile) costs more than MAX_COLD_ATTACH_FRACTION of
#     the full serial rebuild at the same size.
#
# Also runs the contended SMP sweep (DESIGN.md §9) and fails if:
#   * warm-cache throughput at the highest thread count scales below
#     MIN_SMP_EFFICIENCY x linear, normalised to
#     min(threads, available_parallelism).
#
# Also runs the SDS event-plane sweep (DESIGN.md §11) and fails if:
#   * batched ring ingestion is not at least MIN_SDS_SPEEDUP x the
#     synchronous per-event path's throughput at 100k events/sec;
#   * an active plane draining non-matching batches inflates the warm
#     hook p50 beyond MAX_SDS_WARM_IMPACT x the planeless baseline
#     (coalesced drains must not invalidate the decision cache).
#
# Also runs the fleet aggregation-cost sweep (DESIGN.md §13) and fails if:
#   * an aggregator scraping the fleet Prometheus endpoint in a loop
#     inflates a member kernel's warm-hook p50 beyond
#     MAX_FLEET_WARM_IMPACT x the unscraped baseline (snapshot capture
#     must stay off the hook hot path).
#
# Before rewriting BENCH_hook_latency.json the script cross-checks the
# gate block recorded in the committed file against the thresholds it
# actually enforces, and fails loudly on any disagreement — a recorded
# threshold that drifts from the enforced one silently misdocuments the
# gate (this happened: max_trace_overhead was committed as 0.5 while the
# script enforced 1.05). The corrected file is still written, so the
# next run is consistent again.
#
# Usage: scripts/bench_gate.sh [--full]
#   --full  drop --quick and use criterion's full sample counts.

set -euo pipefail

cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
MIN_HIT_RATE="${MIN_HIT_RATE:-0.95}"
MIN_DFA_SPEEDUP="${MIN_DFA_SPEEDUP:-3.0}"
MAX_DFA_DEGRADATION="${MAX_DFA_DEGRADATION:-1.5}"
MIN_AA_DFA_SPEEDUP="${MIN_AA_DFA_SPEEDUP:-3.0}"
MIN_INCR_RECOMPILE_SPEEDUP="${MIN_INCR_RECOMPILE_SPEEDUP:-10.0}"
MIN_PARALLEL_COMPILE_SPEEDUP="${MIN_PARALLEL_COMPILE_SPEEDUP:-2.0}"
MAX_COLD_ATTACH_FRACTION="${MAX_COLD_ATTACH_FRACTION:-0.25}"
MAX_TRACE_OVERHEAD="${MAX_TRACE_OVERHEAD:-1.05}"
MIN_SMP_EFFICIENCY="${MIN_SMP_EFFICIENCY:-0.7}"
SMP_THREADS="${SMP_THREADS:-1,2,4,8}"
MIN_SDS_SPEEDUP="${MIN_SDS_SPEEDUP:-5.0}"
MAX_SDS_WARM_IMPACT="${MAX_SDS_WARM_IMPACT:-1.5}"
SDS_RATES="${SDS_RATES:-10000,100000,1000000}"
SDS_EVENTS="${SDS_EVENTS:-20000}"
MAX_FLEET_WARM_IMPACT="${MAX_FLEET_WARM_IMPACT:-1.05}"
FLEET_INSTANCES="${FLEET_INSTANCES:-64,256,1024}"
OUT_JSON="${OUT_JSON:-BENCH_hook_latency.json}"

QUICK="--quick"
SMP_ITERS_DEFAULT=5000
if [[ "${1:-}" == "--full" ]]; then
    QUICK=""
    SMP_ITERS_DEFAULT=20000
fi
SMP_ITERS="${SMP_ITERS:-$SMP_ITERS_DEFAULT}"

TMP_JSON="$(mktemp)"
TMP_LOG="$(mktemp)"
TMP_JSON_PT="$(mktemp)"
TMP_JSON_PC="$(mktemp)"
TMP_JSON_OBS="$(mktemp)"
TMP_SMP_JSON="$(mktemp)"
TMP_SMP_LOG="$(mktemp)"
TMP_SDS_JSON="$(mktemp)"
TMP_SDS_LOG="$(mktemp)"
TMP_FLEET_JSON="$(mktemp)"
TMP_FLEET_LOG="$(mktemp)"
trap 'rm -f "$TMP_JSON" "$TMP_LOG" "$TMP_JSON_PT" "$TMP_JSON_PC" "$TMP_JSON_OBS" "$TMP_SMP_JSON" "$TMP_SMP_LOG" "$TMP_SDS_JSON" "$TMP_SDS_LOG" "$TMP_FLEET_JSON" "$TMP_FLEET_LOG"' EXIT

# --- Recorded-vs-enforced gate consistency -------------------------------
# The committed JSON documents the thresholds it was gated with; if those
# drift from the constants above, the record is lying about the gate.
GATE_MISMATCH=0
check_recorded_gate() {
    local key="$1" enforced="$2" recorded
    recorded="$(sed -n 's/.*"'"$key"'": \([0-9.]*\).*/\1/p' "$OUT_JSON" | head -1)"
    if [[ -z "$recorded" ]]; then
        echo "bench_gate: recorded gate.$key missing from $OUT_JSON (will be written)" >&2
        GATE_MISMATCH=1
    elif awk -v r="$recorded" -v e="$enforced" 'BEGIN { exit !(r + 0 != e + 0) }'; then
        echo "bench_gate: FAIL — recorded gate.$key = $recorded disagrees with enforced $enforced" >&2
        GATE_MISMATCH=1
    fi
}
if [[ -f "$OUT_JSON" ]]; then
    check_recorded_gate min_speedup "$MIN_SPEEDUP"
    check_recorded_gate min_hit_rate "$MIN_HIT_RATE"
    check_recorded_gate min_dfa_speedup_1k "$MIN_DFA_SPEEDUP"
    check_recorded_gate max_dfa_degradation "$MAX_DFA_DEGRADATION"
    check_recorded_gate min_aa_dfa_speedup "$MIN_AA_DFA_SPEEDUP"
    check_recorded_gate min_incr_recompile_speedup "$MIN_INCR_RECOMPILE_SPEEDUP"
    check_recorded_gate min_parallel_compile_speedup "$MIN_PARALLEL_COMPILE_SPEEDUP"
    check_recorded_gate max_cold_attach_fraction "$MAX_COLD_ATTACH_FRACTION"
    check_recorded_gate max_trace_overhead "$MAX_TRACE_OVERHEAD"
    check_recorded_gate min_smp_efficiency "$MIN_SMP_EFFICIENCY"
    check_recorded_gate min_sds_speedup "$MIN_SDS_SPEEDUP"
    check_recorded_gate max_sds_warm_impact "$MAX_SDS_WARM_IMPACT"
    check_recorded_gate max_fleet_warm_impact "$MAX_FLEET_WARM_IMPACT"
fi

echo "== bench_gate: running ablation_decision_cache ${QUICK:+(quick mode)}" >&2
BENCH_JSON_OUT="$TMP_JSON" \
    cargo bench --offline -p sack-bench --bench ablation_decision_cache -- $QUICK \
    | tee "$TMP_LOG"

median_of() {
    # Pull "median_ns" for the record whose name contains $1.
    grep -F "$1" "$TMP_JSON" | sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' | head -1
}

WARM_SINGLE="$(median_of '100rules_single/warm-cache')"
DFA_SINGLE="$(median_of '100rules_single/uncached-dfa')"
SCAN_SINGLE="$(median_of '100rules_single/uncached-scan')"
WARM_WSET="$(median_of '100rules_wset64/warm-cache')"
SCAN_WSET="$(median_of '100rules_wset64/uncached-scan')"
HIT_RATE="$(sed -n 's/^cache_hit_rate \([0-9.]*\)$/\1/p' "$TMP_LOG" | head -1)"
DFA_100="$(median_of 'sweep100rules/uncached-dfa')"
SCAN_100="$(median_of 'sweep100rules/uncached-scan')"
DFA_1K="$(median_of 'sweep1000rules/uncached-dfa')"
SCAN_1K="$(median_of 'sweep1000rules/uncached-scan')"
DFA_10K="$(median_of 'sweep10000rules/uncached-dfa')"
SCAN_10K="$(median_of 'sweep10000rules/uncached-scan')"

# The shim truncates BENCH_JSON_OUT per run, so the profile-table bench
# gets its own capture file.
echo "== bench_gate: running apparmor_profile_table ${QUICK:+(quick mode)}" >&2
BENCH_JSON_OUT="$TMP_JSON_PT" \
    cargo bench --offline -p sack-bench --bench apparmor_profile_table -- $QUICK

median_of_pt() {
    grep -F "$1" "$TMP_JSON_PT" | sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' | head -1
}

AA_DFA="$(median_of_pt 'profile_table_1000rules/dfa')"
AA_SCAN="$(median_of_pt 'profile_table_1000rules/scan')"
RECOMPILE_INCR="$(median_of_pt 'recompile_100profiles/incremental')"
RECOMPILE_FULL="$(median_of_pt 'recompile_100profiles/full')"

echo "== bench_gate: running profile_compile ${QUICK:+(quick mode)}" >&2
BENCH_JSON_OUT="$TMP_JSON_PC" \
    cargo bench --offline -p sack-bench --bench profile_compile -- $QUICK

median_of_pc() {
    grep -F "$1" "$TMP_JSON_PC" | sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' | head -1
}

PC_SERIAL_100="$(median_of_pc 'bulk_compile_100/serial')"
PC_PARALLEL_100="$(median_of_pc 'bulk_compile_100/parallel')"
PC_SERIAL_1K="$(median_of_pc 'bulk_compile_1000/serial')"
PC_PARALLEL_1K="$(median_of_pc 'bulk_compile_1000/parallel')"
PC_SERIAL_10K="$(median_of_pc 'bulk_compile_10000/serial')"
PC_PARALLEL_10K="$(median_of_pc 'bulk_compile_10000/parallel')"
PC_LAZY_LOAD_1K="$(median_of_pc 'lazy_reload_1000/load')"
PC_COLD_ATTACH_1K="$(median_of_pc 'lazy_reload_1000/cold_attach')"

echo "== bench_gate: running observer_effect ${QUICK:+(quick mode)}" >&2
BENCH_JSON_OUT="$TMP_JSON_OBS" \
    cargo bench --offline -p sack-bench --bench observer_effect -- $QUICK

median_of_obs() {
    grep -F "$1" "$TMP_JSON_OBS" | sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' | head -1
}

TRACE_BASELINE="$(median_of_obs 'warm_hook/baseline')"
TRACE_DISABLED="$(median_of_obs 'warm_hook/tracing-disabled')"
TRACE_ENABLED="$(median_of_obs 'warm_hook/tracing-enabled')"
TRACE_FLIGHT="$(median_of_obs 'flight_saturated/tracing-enabled')"

echo "== bench_gate: running contended_sweep (threads $SMP_THREADS, $SMP_ITERS hooks/thread)" >&2
cargo run --release --offline -p sack-lmbench --example contended_sweep -- \
    --threads "$SMP_THREADS" --iters "$SMP_ITERS" --json "$TMP_SMP_JSON" \
    | tee "$TMP_SMP_LOG" >&2

SMP_MAX_THREADS="${SMP_THREADS##*,}"
SMP_EFF_WARM="$(sed -n 's/^smp_efficiency scenario=warm-cache threads='"$SMP_MAX_THREADS"' value=\([0-9.]*\)$/\1/p' "$TMP_SMP_LOG" | head -1)"
SMP_PARALLELISM="$(sed -n 's/^smp_meta available_parallelism=\([0-9]*\).*$/\1/p' "$TMP_SMP_LOG" | head -1)"

echo "== bench_gate: running sds_sweep (rates $SDS_RATES, $SDS_EVENTS events/point)" >&2
cargo run --release --offline -p sack-lmbench --example sds_sweep -- \
    --rates "$SDS_RATES" --events "$SDS_EVENTS" --json "$TMP_SDS_JSON" \
    | tee "$TMP_SDS_LOG" >&2

SDS_SPEEDUP_100K="$(sed -n 's/^sds_speedup_at_100k value=\([0-9.]*\)$/\1/p' "$TMP_SDS_LOG" | head -1)"
SDS_WARM_IMPACT="$(sed -n 's/^sds_warm_impact value=\([0-9.]*\)$/\1/p' "$TMP_SDS_LOG" | head -1)"

echo "== bench_gate: running fleet_sweep (instances $FLEET_INSTANCES)" >&2
cargo run --release --offline -p sack-lmbench --example fleet_sweep -- \
    --instances "$FLEET_INSTANCES" --json "$TMP_FLEET_JSON" \
    | tee "$TMP_FLEET_LOG" >&2

FLEET_WARM_IMPACT="$(sed -n 's/^fleet_warm_impact value=\([0-9.]*\)$/\1/p' "$TMP_FLEET_LOG" | head -1)"

for v in WARM_SINGLE DFA_SINGLE SCAN_SINGLE WARM_WSET SCAN_WSET HIT_RATE \
         DFA_100 SCAN_100 DFA_1K SCAN_1K DFA_10K SCAN_10K \
         AA_DFA AA_SCAN RECOMPILE_INCR RECOMPILE_FULL \
         PC_SERIAL_100 PC_PARALLEL_100 PC_SERIAL_1K PC_PARALLEL_1K \
         PC_SERIAL_10K PC_PARALLEL_10K PC_LAZY_LOAD_1K PC_COLD_ATTACH_1K \
         TRACE_BASELINE TRACE_DISABLED TRACE_ENABLED TRACE_FLIGHT \
         SMP_EFF_WARM SMP_PARALLELISM SDS_SPEEDUP_100K SDS_WARM_IMPACT \
         FLEET_WARM_IMPACT; do
    if [[ -z "${!v}" ]]; then
        echo "bench_gate: FAILED to extract $v from benchmark output" >&2
        exit 1
    fi
done

SPEEDUP_SINGLE="$(awk -v a="$SCAN_SINGLE" -v b="$WARM_SINGLE" 'BEGIN { printf "%.2f", a / b }')"
SPEEDUP_WSET="$(awk -v a="$SCAN_WSET" -v b="$WARM_WSET" 'BEGIN { printf "%.2f", a / b }')"
DFA_SPEEDUP_1K="$(awk -v a="$SCAN_1K" -v b="$DFA_1K" 'BEGIN { printf "%.2f", a / b }')"
DFA_DEGRADATION="$(awk -v a="$DFA_10K" -v b="$DFA_100" 'BEGIN { printf "%.2f", a / b }')"
AA_DFA_SPEEDUP="$(awk -v a="$AA_SCAN" -v b="$AA_DFA" 'BEGIN { printf "%.2f", a / b }')"
INCR_SPEEDUP="$(awk -v a="$RECOMPILE_FULL" -v b="$RECOMPILE_INCR" 'BEGIN { printf "%.2f", a / b }')"
PC_SPEEDUP_1K="$(awk -v a="$PC_SERIAL_1K" -v b="$PC_PARALLEL_1K" 'BEGIN { printf "%.2f", a / b }')"
PC_COLD_FRACTION="$(awk -v a="$PC_COLD_ATTACH_1K" -v b="$PC_SERIAL_1K" 'BEGIN { printf "%.3f", a / b }')"
# The parallel floor is normalised to the host: min(configured, 0.7 x cores).
# A single-core runner has no parallelism to buy, so the check is skipped
# and the enforced floor recorded as 0.
PC_CORES="$(nproc 2>/dev/null || echo 1)"
if [[ "$PC_CORES" -le 1 ]]; then
    PC_ENFORCED_SPEEDUP="0"
else
    PC_ENFORCED_SPEEDUP="$(awk -v m="$MIN_PARALLEL_COMPILE_SPEEDUP" -v c="$PC_CORES" \
        'BEGIN { f = 0.7 * c; printf "%.2f", (m < f) ? m : f }')"
fi
TRACE_OVERHEAD_DISABLED="$(awk -v a="$TRACE_DISABLED" -v b="$TRACE_BASELINE" 'BEGIN { printf "%.3f", a / b }')"
TRACE_OVERHEAD_ENABLED="$(awk -v a="$TRACE_ENABLED" -v b="$TRACE_BASELINE" 'BEGIN { printf "%.3f", a / b }')"

cat > "$OUT_JSON" <<EOF
{
  "bench": "ablation_decision_cache",
  "policy_rules": 100,
  "single_path": {
    "warm_cache_median_ns": $WARM_SINGLE,
    "uncached_dfa_median_ns": $DFA_SINGLE,
    "uncached_scan_median_ns": $SCAN_SINGLE,
    "speedup": $SPEEDUP_SINGLE
  },
  "working_set_64": {
    "warm_cache_median_ns": $WARM_WSET,
    "uncached_scan_median_ns": $SCAN_WSET,
    "speedup": $SPEEDUP_WSET,
    "cache_hit_rate": $HIT_RATE
  },
  "rule_sweep": {
    "rules_100": { "uncached_dfa_median_ns": $DFA_100, "uncached_scan_median_ns": $SCAN_100 },
    "rules_1000": { "uncached_dfa_median_ns": $DFA_1K, "uncached_scan_median_ns": $SCAN_1K },
    "rules_10000": { "uncached_dfa_median_ns": $DFA_10K, "uncached_scan_median_ns": $SCAN_10K },
    "dfa_speedup_1k": $DFA_SPEEDUP_1K,
    "dfa_degradation_100_to_10k": $DFA_DEGRADATION
  },
  "apparmor_profile_table": {
    "profile_rules": 1000,
    "dfa_median_ns": $AA_DFA,
    "scan_median_ns": $AA_SCAN,
    "dfa_speedup": $AA_DFA_SPEEDUP,
    "table_profiles": 100,
    "incremental_recompile_median_ns": $RECOMPILE_INCR,
    "full_rebuild_median_ns": $RECOMPILE_FULL,
    "incremental_speedup": $INCR_SPEEDUP
  },
  "profile_compile": {
    "rules_per_profile": 4,
    "bulk_serial_100_median_ns": $PC_SERIAL_100,
    "bulk_parallel_100_median_ns": $PC_PARALLEL_100,
    "bulk_serial_1000_median_ns": $PC_SERIAL_1K,
    "bulk_parallel_1000_median_ns": $PC_PARALLEL_1K,
    "bulk_serial_10000_median_ns": $PC_SERIAL_10K,
    "bulk_parallel_10000_median_ns": $PC_PARALLEL_10K,
    "parallel_speedup_1k": $PC_SPEEDUP_1K,
    "cores": $PC_CORES,
    "enforced_min_parallel_speedup": $PC_ENFORCED_SPEEDUP,
    "lazy_load_1000_median_ns": $PC_LAZY_LOAD_1K,
    "cold_attach_1000_median_ns": $PC_COLD_ATTACH_1K,
    "cold_attach_fraction": $PC_COLD_FRACTION
  },
  "tracing": {
    "warm_hook_baseline_median_ns": $TRACE_BASELINE,
    "warm_hook_tracing_disabled_median_ns": $TRACE_DISABLED,
    "warm_hook_tracing_enabled_median_ns": $TRACE_ENABLED,
    "flight_saturated_median_ns": $TRACE_FLIGHT,
    "disabled_overhead_ratio": $TRACE_OVERHEAD_DISABLED,
    "enabled_overhead_ratio": $TRACE_OVERHEAD_ENABLED
  },
  "smp": $(cat "$TMP_SMP_JSON"),
  "sds": $(cat "$TMP_SDS_JSON"),
  "fleet": $(cat "$TMP_FLEET_JSON"),
  "gate": {
    "min_speedup": $MIN_SPEEDUP,
    "min_hit_rate": $MIN_HIT_RATE,
    "min_dfa_speedup_1k": $MIN_DFA_SPEEDUP,
    "max_dfa_degradation": $MAX_DFA_DEGRADATION,
    "min_aa_dfa_speedup": $MIN_AA_DFA_SPEEDUP,
    "min_incr_recompile_speedup": $MIN_INCR_RECOMPILE_SPEEDUP,
    "min_parallel_compile_speedup": $MIN_PARALLEL_COMPILE_SPEEDUP,
    "max_cold_attach_fraction": $MAX_COLD_ATTACH_FRACTION,
    "max_trace_overhead": $MAX_TRACE_OVERHEAD,
    "min_smp_efficiency": $MIN_SMP_EFFICIENCY,
    "min_sds_speedup": $MIN_SDS_SPEEDUP,
    "max_sds_warm_impact": $MAX_SDS_WARM_IMPACT,
    "max_fleet_warm_impact": $MAX_FLEET_WARM_IMPACT
  }
}
EOF

echo "== bench_gate: wrote $OUT_JSON" >&2
echo "   single-path speedup:  ${SPEEDUP_SINGLE}x (warm $WARM_SINGLE ns vs scan $SCAN_SINGLE ns)" >&2
echo "   working-set speedup:  ${SPEEDUP_WSET}x (warm $WARM_WSET ns vs scan $SCAN_WSET ns)" >&2
echo "   working-set hit rate: $HIT_RATE" >&2
echo "   DFA vs scan @1k:      ${DFA_SPEEDUP_1K}x (dfa $DFA_1K ns vs scan $SCAN_1K ns)" >&2
echo "   DFA 100 -> 10k:       ${DFA_DEGRADATION}x (dfa $DFA_100 ns -> $DFA_10K ns)" >&2
echo "   profile DFA @1k:      ${AA_DFA_SPEEDUP}x (dfa $AA_DFA ns vs scan $AA_SCAN ns)" >&2
echo "   incr recompile @100:  ${INCR_SPEEDUP}x (incr $RECOMPILE_INCR ns vs full $RECOMPILE_FULL ns)" >&2
echo "   bulk compile @1k:     ${PC_SPEEDUP_1K}x parallel over serial (serial $PC_SERIAL_1K ns, parallel $PC_PARALLEL_1K ns, $PC_CORES cores)" >&2
echo "   lazy cold attach @1k: ${PC_COLD_FRACTION}x of the serial rebuild (lazy load $PC_LAZY_LOAD_1K ns, cold attach $PC_COLD_ATTACH_1K ns)" >&2
echo "   trace off overhead:   ${TRACE_OVERHEAD_DISABLED}x (disabled $TRACE_DISABLED ns vs baseline $TRACE_BASELINE ns)" >&2
echo "   trace on overhead:    ${TRACE_OVERHEAD_ENABLED}x (enabled $TRACE_ENABLED ns, flight-saturated $TRACE_FLIGHT ns)" >&2
echo "   smp warm efficiency:  ${SMP_EFF_WARM}x linear at $SMP_MAX_THREADS threads ($SMP_PARALLELISM-way parallel host)" >&2
echo "   sds batched @100k:    ${SDS_SPEEDUP_100K}x sync event throughput" >&2
echo "   sds warm impact:      ${SDS_WARM_IMPACT}x warm-hook p50 with the plane active" >&2
echo "   fleet warm impact:    ${FLEET_WARM_IMPACT}x warm-hook p50 under active scraping" >&2

fail=0
if [[ "$GATE_MISMATCH" -ne 0 ]]; then
    echo "bench_gate: FAIL — $OUT_JSON recorded gate thresholds that disagree with the enforced constants (corrected file written; commit it)" >&2
    fail=1
fi
if awk -v s="$SPEEDUP_SINGLE" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — single-path speedup ${SPEEDUP_SINGLE}x < required ${MIN_SPEEDUP}x" >&2
    fail=1
fi
if awk -v s="$SPEEDUP_WSET" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — working-set speedup ${SPEEDUP_WSET}x < required ${MIN_SPEEDUP}x" >&2
    fail=1
fi
if awk -v h="$HIT_RATE" -v m="$MIN_HIT_RATE" 'BEGIN { exit !(h < m) }'; then
    echo "bench_gate: FAIL — working-set hit rate $HIT_RATE < required $MIN_HIT_RATE" >&2
    fail=1
fi
if awk -v s="$DFA_SPEEDUP_1K" -v m="$MIN_DFA_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — DFA speedup at 1k rules ${DFA_SPEEDUP_1K}x < required ${MIN_DFA_SPEEDUP}x" >&2
    fail=1
fi
if awk -v d="$DFA_DEGRADATION" -v m="$MAX_DFA_DEGRADATION" 'BEGIN { exit !(d > m) }'; then
    echo "bench_gate: FAIL — DFA cold path degrades ${DFA_DEGRADATION}x from 100 to 10k rules (max ${MAX_DFA_DEGRADATION}x)" >&2
    fail=1
fi
if awk -v s="$AA_DFA_SPEEDUP" -v m="$MIN_AA_DFA_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — profile DFA speedup ${AA_DFA_SPEEDUP}x < required ${MIN_AA_DFA_SPEEDUP}x at 1k rules" >&2
    fail=1
fi
if awk -v s="$INCR_SPEEDUP" -v m="$MIN_INCR_RECOMPILE_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — incremental recompile speedup ${INCR_SPEEDUP}x < required ${MIN_INCR_RECOMPILE_SPEEDUP}x on a 100-profile table" >&2
    fail=1
fi
if [[ "$PC_CORES" -le 1 ]]; then
    echo "bench_gate: NOTICE — single-core host, parallel-compile floor not enforced (enforced_min_parallel_speedup recorded as 0)" >&2
elif awk -v s="$PC_SPEEDUP_1K" -v m="$PC_ENFORCED_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — parallel bulk compile ${PC_SPEEDUP_1K}x < required ${PC_ENFORCED_SPEEDUP}x at 1k profiles on $PC_CORES cores" >&2
    fail=1
fi
if awk -v f="$PC_COLD_FRACTION" -v m="$MAX_COLD_ATTACH_FRACTION" 'BEGIN { exit !(f > m) }'; then
    echo "bench_gate: FAIL — lazy cold attach costs ${PC_COLD_FRACTION}x of the serial 1k rebuild (max ${MAX_COLD_ATTACH_FRACTION}x)" >&2
    fail=1
fi
if awk -v r="$TRACE_OVERHEAD_DISABLED" -v m="$MAX_TRACE_OVERHEAD" 'BEGIN { exit !(r > m) }'; then
    echo "bench_gate: FAIL — disabled tracepoints cost ${TRACE_OVERHEAD_DISABLED}x on the warm hook path (max ${MAX_TRACE_OVERHEAD}x)" >&2
    fail=1
fi
if awk -v e="$SMP_EFF_WARM" -v m="$MIN_SMP_EFFICIENCY" 'BEGIN { exit !(e < m) }'; then
    echo "bench_gate: FAIL — warm-cache scaling efficiency ${SMP_EFF_WARM}x < required ${MIN_SMP_EFFICIENCY}x linear at $SMP_MAX_THREADS threads" >&2
    fail=1
fi
if awk -v s="$SDS_SPEEDUP_100K" -v m="$MIN_SDS_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — batched sds ingestion ${SDS_SPEEDUP_100K}x < required ${MIN_SDS_SPEEDUP}x sync throughput at 100k events/sec" >&2
    fail=1
fi
if awk -v r="$SDS_WARM_IMPACT" -v m="$MAX_SDS_WARM_IMPACT" 'BEGIN { exit !(r > m) }'; then
    echo "bench_gate: FAIL — active event plane inflates warm-hook p50 by ${SDS_WARM_IMPACT}x (max ${MAX_SDS_WARM_IMPACT}x)" >&2
    fail=1
fi
if awk -v r="$FLEET_WARM_IMPACT" -v m="$MAX_FLEET_WARM_IMPACT" 'BEGIN { exit !(r > m) }'; then
    echo "bench_gate: FAIL — active fleet scraping inflates warm-hook p50 by ${FLEET_WARM_IMPACT}x (max ${MAX_FLEET_WARM_IMPACT}x)" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "== bench_gate: PASS" >&2
