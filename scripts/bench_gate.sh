#!/usr/bin/env bash
# Benchmark gate for the hook hot path (DESIGN.md §5.3, §7).
#
# Runs the decision-cache ablation in quick mode, extracts the warm-cache,
# uncached-DFA, and uncached-scan medians plus the steady-state cache hit
# rate and the 100/1k/10k rule-count sweep, writes them to
# BENCH_hook_latency.json at the repo root, and fails if:
#   * the warm cache is not at least MIN_SPEEDUP x faster than the
#     uncached scan on the 100-rule policy (epoch-tagged decision cache);
#   * the uncached DFA walk is not at least MIN_DFA_SPEEDUP x faster than
#     the uncached scan on the 1k-rule policy (unified per-state DFA);
#   * the DFA cold path degrades by more than MAX_DFA_DEGRADATION x
#     between the 100-rule and 10k-rule policies (O(|path|) flatness).
#
# Usage: scripts/bench_gate.sh [--full]
#   --full  drop --quick and use criterion's full sample counts.

set -euo pipefail

cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
MIN_HIT_RATE="${MIN_HIT_RATE:-0.95}"
MIN_DFA_SPEEDUP="${MIN_DFA_SPEEDUP:-3.0}"
MAX_DFA_DEGRADATION="${MAX_DFA_DEGRADATION:-1.5}"
OUT_JSON="${OUT_JSON:-BENCH_hook_latency.json}"

QUICK="--quick"
if [[ "${1:-}" == "--full" ]]; then
    QUICK=""
fi

TMP_JSON="$(mktemp)"
TMP_LOG="$(mktemp)"
trap 'rm -f "$TMP_JSON" "$TMP_LOG"' EXIT

echo "== bench_gate: running ablation_decision_cache ${QUICK:+(quick mode)}" >&2
BENCH_JSON_OUT="$TMP_JSON" \
    cargo bench --offline -p sack-bench --bench ablation_decision_cache -- $QUICK \
    | tee "$TMP_LOG"

median_of() {
    # Pull "median_ns" for the record whose name contains $1.
    grep -F "$1" "$TMP_JSON" | sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' | head -1
}

WARM_SINGLE="$(median_of '100rules_single/warm-cache')"
DFA_SINGLE="$(median_of '100rules_single/uncached-dfa')"
SCAN_SINGLE="$(median_of '100rules_single/uncached-scan')"
WARM_WSET="$(median_of '100rules_wset64/warm-cache')"
SCAN_WSET="$(median_of '100rules_wset64/uncached-scan')"
HIT_RATE="$(sed -n 's/^cache_hit_rate \([0-9.]*\)$/\1/p' "$TMP_LOG" | head -1)"
DFA_100="$(median_of 'sweep100rules/uncached-dfa')"
SCAN_100="$(median_of 'sweep100rules/uncached-scan')"
DFA_1K="$(median_of 'sweep1000rules/uncached-dfa')"
SCAN_1K="$(median_of 'sweep1000rules/uncached-scan')"
DFA_10K="$(median_of 'sweep10000rules/uncached-dfa')"
SCAN_10K="$(median_of 'sweep10000rules/uncached-scan')"

for v in WARM_SINGLE DFA_SINGLE SCAN_SINGLE WARM_WSET SCAN_WSET HIT_RATE \
         DFA_100 SCAN_100 DFA_1K SCAN_1K DFA_10K SCAN_10K; do
    if [[ -z "${!v}" ]]; then
        echo "bench_gate: FAILED to extract $v from benchmark output" >&2
        exit 1
    fi
done

SPEEDUP_SINGLE="$(awk -v a="$SCAN_SINGLE" -v b="$WARM_SINGLE" 'BEGIN { printf "%.2f", a / b }')"
SPEEDUP_WSET="$(awk -v a="$SCAN_WSET" -v b="$WARM_WSET" 'BEGIN { printf "%.2f", a / b }')"
DFA_SPEEDUP_1K="$(awk -v a="$SCAN_1K" -v b="$DFA_1K" 'BEGIN { printf "%.2f", a / b }')"
DFA_DEGRADATION="$(awk -v a="$DFA_10K" -v b="$DFA_100" 'BEGIN { printf "%.2f", a / b }')"

cat > "$OUT_JSON" <<EOF
{
  "bench": "ablation_decision_cache",
  "policy_rules": 100,
  "single_path": {
    "warm_cache_median_ns": $WARM_SINGLE,
    "uncached_dfa_median_ns": $DFA_SINGLE,
    "uncached_scan_median_ns": $SCAN_SINGLE,
    "speedup": $SPEEDUP_SINGLE
  },
  "working_set_64": {
    "warm_cache_median_ns": $WARM_WSET,
    "uncached_scan_median_ns": $SCAN_WSET,
    "speedup": $SPEEDUP_WSET,
    "cache_hit_rate": $HIT_RATE
  },
  "rule_sweep": {
    "rules_100": { "uncached_dfa_median_ns": $DFA_100, "uncached_scan_median_ns": $SCAN_100 },
    "rules_1000": { "uncached_dfa_median_ns": $DFA_1K, "uncached_scan_median_ns": $SCAN_1K },
    "rules_10000": { "uncached_dfa_median_ns": $DFA_10K, "uncached_scan_median_ns": $SCAN_10K },
    "dfa_speedup_1k": $DFA_SPEEDUP_1K,
    "dfa_degradation_100_to_10k": $DFA_DEGRADATION
  },
  "gate": {
    "min_speedup": $MIN_SPEEDUP,
    "min_hit_rate": $MIN_HIT_RATE,
    "min_dfa_speedup_1k": $MIN_DFA_SPEEDUP,
    "max_dfa_degradation": $MAX_DFA_DEGRADATION
  }
}
EOF

echo "== bench_gate: wrote $OUT_JSON" >&2
echo "   single-path speedup:  ${SPEEDUP_SINGLE}x (warm $WARM_SINGLE ns vs scan $SCAN_SINGLE ns)" >&2
echo "   working-set speedup:  ${SPEEDUP_WSET}x (warm $WARM_WSET ns vs scan $SCAN_WSET ns)" >&2
echo "   working-set hit rate: $HIT_RATE" >&2
echo "   DFA vs scan @1k:      ${DFA_SPEEDUP_1K}x (dfa $DFA_1K ns vs scan $SCAN_1K ns)" >&2
echo "   DFA 100 -> 10k:       ${DFA_DEGRADATION}x (dfa $DFA_100 ns -> $DFA_10K ns)" >&2

fail=0
if awk -v s="$SPEEDUP_SINGLE" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — single-path speedup ${SPEEDUP_SINGLE}x < required ${MIN_SPEEDUP}x" >&2
    fail=1
fi
if awk -v s="$SPEEDUP_WSET" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — working-set speedup ${SPEEDUP_WSET}x < required ${MIN_SPEEDUP}x" >&2
    fail=1
fi
if awk -v h="$HIT_RATE" -v m="$MIN_HIT_RATE" 'BEGIN { exit !(h < m) }'; then
    echo "bench_gate: FAIL — working-set hit rate $HIT_RATE < required $MIN_HIT_RATE" >&2
    fail=1
fi
if awk -v s="$DFA_SPEEDUP_1K" -v m="$MIN_DFA_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — DFA speedup at 1k rules ${DFA_SPEEDUP_1K}x < required ${MIN_DFA_SPEEDUP}x" >&2
    fail=1
fi
if awk -v d="$DFA_DEGRADATION" -v m="$MAX_DFA_DEGRADATION" 'BEGIN { exit !(d > m) }'; then
    echo "bench_gate: FAIL — DFA cold path degrades ${DFA_DEGRADATION}x from 100 to 10k rules (max ${MAX_DFA_DEGRADATION}x)" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "== bench_gate: PASS" >&2
