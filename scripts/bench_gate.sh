#!/usr/bin/env bash
# Benchmark gate for the hook hot path (DESIGN.md §5.3).
#
# Runs the decision-cache ablation in quick mode, extracts the warm-cache
# and uncached-scan medians plus the steady-state cache hit rate, writes
# them to BENCH_hook_latency.json at the repo root, and fails if the
# warm-cache hook is not at least MIN_SPEEDUP× faster than the uncached
# scan on the 100-rule policy (the acceptance bar for the epoch-tagged
# decision cache).
#
# Usage: scripts/bench_gate.sh [--full]
#   --full  drop --quick and use criterion's full sample counts.

set -euo pipefail

cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
MIN_HIT_RATE="${MIN_HIT_RATE:-0.95}"
OUT_JSON="${OUT_JSON:-BENCH_hook_latency.json}"

QUICK="--quick"
if [[ "${1:-}" == "--full" ]]; then
    QUICK=""
fi

TMP_JSON="$(mktemp)"
TMP_LOG="$(mktemp)"
trap 'rm -f "$TMP_JSON" "$TMP_LOG"' EXIT

echo "== bench_gate: running ablation_decision_cache ${QUICK:+(quick mode)}" >&2
BENCH_JSON_OUT="$TMP_JSON" \
    cargo bench --offline -p sack-bench --bench ablation_decision_cache -- $QUICK \
    | tee "$TMP_LOG"

median_of() {
    # Pull "median_ns" for the record whose name contains $1.
    grep -F "$1" "$TMP_JSON" | sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' | head -1
}

WARM_SINGLE="$(median_of '100rules_single/warm-cache')"
SCAN_SINGLE="$(median_of '100rules_single/uncached-scan')"
WARM_WSET="$(median_of '100rules_wset64/warm-cache')"
SCAN_WSET="$(median_of '100rules_wset64/uncached-scan')"
HIT_RATE="$(sed -n 's/^cache_hit_rate \([0-9.]*\)$/\1/p' "$TMP_LOG" | head -1)"

for v in WARM_SINGLE SCAN_SINGLE WARM_WSET SCAN_WSET HIT_RATE; do
    if [[ -z "${!v}" ]]; then
        echo "bench_gate: FAILED to extract $v from benchmark output" >&2
        exit 1
    fi
done

SPEEDUP_SINGLE="$(awk -v a="$SCAN_SINGLE" -v b="$WARM_SINGLE" 'BEGIN { printf "%.2f", a / b }')"
SPEEDUP_WSET="$(awk -v a="$SCAN_WSET" -v b="$WARM_WSET" 'BEGIN { printf "%.2f", a / b }')"

cat > "$OUT_JSON" <<EOF
{
  "bench": "ablation_decision_cache",
  "policy_rules": 100,
  "single_path": {
    "warm_cache_median_ns": $WARM_SINGLE,
    "uncached_scan_median_ns": $SCAN_SINGLE,
    "speedup": $SPEEDUP_SINGLE
  },
  "working_set_64": {
    "warm_cache_median_ns": $WARM_WSET,
    "uncached_scan_median_ns": $SCAN_WSET,
    "speedup": $SPEEDUP_WSET,
    "cache_hit_rate": $HIT_RATE
  },
  "gate": {
    "min_speedup": $MIN_SPEEDUP,
    "min_hit_rate": $MIN_HIT_RATE
  }
}
EOF

echo "== bench_gate: wrote $OUT_JSON" >&2
echo "   single-path speedup:  ${SPEEDUP_SINGLE}x (warm $WARM_SINGLE ns vs scan $SCAN_SINGLE ns)" >&2
echo "   working-set speedup:  ${SPEEDUP_WSET}x (warm $WARM_WSET ns vs scan $SCAN_WSET ns)" >&2
echo "   working-set hit rate: $HIT_RATE" >&2

fail=0
if awk -v s="$SPEEDUP_SINGLE" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — single-path speedup ${SPEEDUP_SINGLE}x < required ${MIN_SPEEDUP}x" >&2
    fail=1
fi
if awk -v s="$SPEEDUP_WSET" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
    echo "bench_gate: FAIL — working-set speedup ${SPEEDUP_WSET}x < required ${MIN_SPEEDUP}x" >&2
    fail=1
fi
if awk -v h="$HIT_RATE" -v m="$MIN_HIT_RATE" 'BEGIN { exit !(h < m) }'; then
    echo "bench_gate: FAIL — working-set hit rate $HIT_RATE < required $MIN_HIT_RATE" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "== bench_gate: PASS" >&2
