#!/usr/bin/env python3
"""Schema validation for BENCH_hook_latency.json.

The benchmark gate hand-renders this file from shell and Rust (the repo
vendors no serde/JSON library), so this validator is the only thing that
catches a malformed splice before it is committed. Checks:

  * the file parses as JSON;
  * every section the gate writes is present;
  * the gate block records every threshold the gate script enforces;
  * the smp block has every scenario with per-thread-count percentiles
    and a scaling_efficiency;
  * the sds block has a point per swept rate plus the two values the
    gate checks (speedup_at_100k, warm_impact), and each recorded value
    satisfies the threshold the gate block records for it;
  * the fleet block has a fold-cost point per swept instance count plus
    the scraped/idle warm-hook pair, and the recorded warm_impact
    satisfies the gate's max_fleet_warm_impact;
  * the profile_compile block has every bulk/lazy median plus the
    normalised parallel floor, and the recorded speedup and cold-attach
    fraction satisfy the thresholds recorded for them;
  * every numeric leaf in the whole document is finite (a NaN/Infinity
    ratio means a benchmark div-by-zero went unnoticed).

Usage: python3 scripts/validate_bench_json.py [BENCH_hook_latency.json]
Exits non-zero with one line per problem.
"""

import json
import math
import sys

TOP_LEVEL_KEYS = [
    "bench",
    "policy_rules",
    "single_path",
    "working_set_64",
    "rule_sweep",
    "apparmor_profile_table",
    "profile_compile",
    "tracing",
    "smp",
    "sds",
    "fleet",
    "gate",
]

# Must match the thresholds scripts/bench_gate.sh enforces.
GATE_KEYS = [
    "min_speedup",
    "min_hit_rate",
    "min_dfa_speedup_1k",
    "max_dfa_degradation",
    "min_aa_dfa_speedup",
    "min_incr_recompile_speedup",
    "min_parallel_compile_speedup",
    "max_cold_attach_fraction",
    "max_trace_overhead",
    "min_smp_efficiency",
    "min_sds_speedup",
    "max_sds_warm_impact",
    "max_fleet_warm_impact",
]

SMP_SCENARIOS = ["warm_cache", "dfa_cold", "reload_racing"]
SMP_POINT_KEYS = ["p50_ns", "p90_ns", "p99_ns", "ops_per_sec"]

SDS_POINT_KEYS = ["batch", "sync_eps", "batched_eps", "speedup"]

FLEET_POINT_KEYS = ["fold_ns", "fold_per_instance_ns"]

PROFILE_COMPILE_KEYS = [
    "rules_per_profile",
    "bulk_serial_100_median_ns",
    "bulk_parallel_100_median_ns",
    "bulk_serial_1000_median_ns",
    "bulk_parallel_1000_median_ns",
    "bulk_serial_10000_median_ns",
    "bulk_parallel_10000_median_ns",
    "parallel_speedup_1k",
    "cores",
    "enforced_min_parallel_speedup",
    "lazy_load_1000_median_ns",
    "cold_attach_1000_median_ns",
    "cold_attach_fraction",
]


def walk_numbers(node, path, problems):
    """Recursively checks every numeric leaf for finiteness."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            problems.append(f"{path}: non-finite value {node!r}")
    elif isinstance(node, dict):
        for key, value in node.items():
            walk_numbers(value, f"{path}.{key}", problems)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk_numbers(value, f"{path}[{i}]", problems)


def validate(doc):
    problems = []
    for key in TOP_LEVEL_KEYS:
        if key not in doc:
            problems.append(f"missing top-level section {key!r}")

    gate = doc.get("gate", {})
    for key in GATE_KEYS:
        if key not in gate:
            problems.append(f"gate block missing threshold {key!r}")

    smp = doc.get("smp", {})
    if smp:
        for key in ["available_parallelism", "thread_counts", "iters_per_thread", "max_threads"]:
            if key not in smp:
                problems.append(f"smp block missing {key!r}")
        threads = smp.get("thread_counts", [])
        if not threads:
            problems.append("smp.thread_counts is empty")
        scenarios = smp.get("scenarios", {})
        for name in SMP_SCENARIOS:
            block = scenarios.get(name)
            if block is None:
                problems.append(f"smp.scenarios missing {name!r}")
                continue
            if "scaling_efficiency" not in block:
                problems.append(f"smp.scenarios.{name} missing scaling_efficiency")
            for t in threads:
                point = block.get(f"t{t}")
                if point is None:
                    problems.append(f"smp.scenarios.{name} missing t{t}")
                    continue
                for key in SMP_POINT_KEYS:
                    if key not in point:
                        problems.append(f"smp.scenarios.{name}.t{t} missing {key!r}")

    pc = doc.get("profile_compile", {})
    if pc:
        for key in PROFILE_COMPILE_KEYS:
            if key not in pc:
                problems.append(f"profile_compile block missing {key!r}")
        # Recorded measurements must satisfy the thresholds the gate block
        # records (the gate exempts single-core hosts from the parallel
        # floor by recording enforced_min_parallel_speedup = 0).
        speedup = pc.get("parallel_speedup_1k")
        enforced = pc.get("enforced_min_parallel_speedup")
        if isinstance(speedup, (int, float)) and isinstance(enforced, (int, float)):
            if speedup < enforced:
                problems.append(
                    f"profile_compile.parallel_speedup_1k {speedup} violates "
                    f"enforced_min_parallel_speedup {enforced}"
                )
        configured = gate.get("min_parallel_compile_speedup")
        if isinstance(enforced, (int, float)) and isinstance(configured, (int, float)):
            if enforced > configured:
                problems.append(
                    f"profile_compile.enforced_min_parallel_speedup {enforced} exceeds "
                    f"gate.min_parallel_compile_speedup {configured}"
                )
        fraction = pc.get("cold_attach_fraction")
        max_fraction = gate.get("max_cold_attach_fraction")
        if isinstance(fraction, (int, float)) and isinstance(max_fraction, (int, float)):
            if fraction > max_fraction:
                problems.append(
                    f"profile_compile.cold_attach_fraction {fraction} violates "
                    f"gate.max_cold_attach_fraction {max_fraction}"
                )

    sds = doc.get("sds", {})
    if sds:
        for key in [
            "events_per_point",
            "rates",
            "points",
            "speedup_at_100k",
            "warm_base_p50_ns",
            "warm_plane_p50_ns",
            "warm_impact",
        ]:
            if key not in sds:
                problems.append(f"sds block missing {key!r}")
        rates = sds.get("rates", [])
        if not rates:
            problems.append("sds.rates is empty")
        if 100000 not in rates:
            problems.append("sds.rates does not include the gated 100000 events/sec point")
        points = sds.get("points", {})
        for rate in rates:
            point = points.get(f"r{rate}")
            if point is None:
                problems.append(f"sds.points missing r{rate}")
                continue
            for key in SDS_POINT_KEYS:
                if key not in point:
                    problems.append(f"sds.points.r{rate} missing {key!r}")
        # The recorded measurements must satisfy the thresholds the gate
        # block itself records — a committed file that fails its own gate
        # means the gate script did not actually run.
        speedup = sds.get("speedup_at_100k")
        min_speedup = gate.get("min_sds_speedup")
        if isinstance(speedup, (int, float)) and isinstance(min_speedup, (int, float)):
            if speedup < min_speedup:
                problems.append(
                    f"sds.speedup_at_100k {speedup} violates gate.min_sds_speedup {min_speedup}"
                )
        impact = sds.get("warm_impact")
        max_impact = gate.get("max_sds_warm_impact")
        if isinstance(impact, (int, float)) and isinstance(max_impact, (int, float)):
            if impact > max_impact:
                problems.append(
                    f"sds.warm_impact {impact} violates gate.max_sds_warm_impact {max_impact}"
                )

    fleet = doc.get("fleet", {})
    if fleet:
        for key in [
            "instance_counts",
            "points",
            "warm_base_p50_ns",
            "warm_scraped_p50_ns",
            "warm_impact",
        ]:
            if key not in fleet:
                problems.append(f"fleet block missing {key!r}")
        counts = fleet.get("instance_counts", [])
        if not counts:
            problems.append("fleet.instance_counts is empty")
        points = fleet.get("points", {})
        for count in counts:
            point = points.get(f"i{count}")
            if point is None:
                problems.append(f"fleet.points missing i{count}")
                continue
            for key in FLEET_POINT_KEYS:
                if key not in point:
                    problems.append(f"fleet.points.i{count} missing {key!r}")
        impact = fleet.get("warm_impact")
        max_impact = gate.get("max_fleet_warm_impact")
        if isinstance(impact, (int, float)) and isinstance(max_impact, (int, float)):
            if impact > max_impact:
                problems.append(
                    f"fleet.warm_impact {impact} violates gate.max_fleet_warm_impact {max_impact}"
                )

    walk_numbers(doc, "$", problems)
    return problems


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_hook_latency.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"validate_bench_json: {path}: {e}", file=sys.stderr)
        return 1
    problems = validate(doc)
    for problem in problems:
        print(f"validate_bench_json: {path}: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"validate_bench_json: {path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
